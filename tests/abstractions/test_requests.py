"""Tenant request types: validation, derived baselines, sorting."""

import pytest

from repro.abstractions import (
    DeterministicVC,
    HeterogeneousSVC,
    HomogeneousSVC,
    VirtualClusterRequest,
)
from repro.stochastic import Normal


class TestDeterministicVC:
    def test_basic(self):
        request = DeterministicVC(n_vms=10, bandwidth=100.0)
        assert request.is_deterministic
        assert request.is_homogeneous
        assert request.vm_demand == Normal.deterministic(100.0)

    def test_rejects_zero_vms(self):
        with pytest.raises(ValueError):
            DeterministicVC(n_vms=0, bandwidth=10.0)

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ValueError):
            DeterministicVC(n_vms=1, bandwidth=-1.0)

    def test_zero_bandwidth_is_allowed(self):
        # A compute-only tenant reserves no bandwidth.
        request = DeterministicVC(n_vms=3, bandwidth=0.0)
        assert request.vm_demand.mean == 0.0

    def test_hashable_value_type(self):
        assert DeterministicVC(3, 5.0) == DeterministicVC(3, 5.0)
        assert hash(DeterministicVC(3, 5.0)) == hash(DeterministicVC(3, 5.0))


class TestHomogeneousSVC:
    def test_basic(self):
        request = HomogeneousSVC(n_vms=8, mean=200.0, std=50.0)
        assert not request.is_deterministic
        assert request.is_homogeneous
        assert request.vm_demand == Normal(200.0, 50.0)

    def test_zero_std_still_statistically_shared(self):
        # sigma = 0 degrades the semantics but not the sharing class.
        request = HomogeneousSVC(n_vms=2, mean=100.0, std=0.0)
        assert not request.is_deterministic

    def test_to_mean_vc(self):
        svc = HomogeneousSVC(n_vms=8, mean=200.0, std=50.0)
        vc = svc.to_mean_vc()
        assert isinstance(vc, DeterministicVC)
        assert vc.bandwidth == 200.0
        assert vc.n_vms == 8

    def test_to_percentile_vc_default_95(self):
        svc = HomogeneousSVC(n_vms=8, mean=200.0, std=50.0)
        vc = svc.to_percentile_vc()
        assert vc.bandwidth == pytest.approx(200.0 + 1.6449 * 50.0, abs=0.1)

    def test_to_percentile_vc_custom(self):
        svc = HomogeneousSVC(n_vms=8, mean=200.0, std=50.0)
        assert svc.to_percentile_vc(50.0).bandwidth == pytest.approx(200.0)

    def test_rejects_negative_params(self):
        with pytest.raises(ValueError):
            HomogeneousSVC(n_vms=2, mean=-1.0, std=0.0)
        with pytest.raises(ValueError):
            HomogeneousSVC(n_vms=2, mean=1.0, std=-1.0)


class TestHeterogeneousSVC:
    def test_basic(self, heterogeneous_request):
        assert not heterogeneous_request.is_deterministic
        assert not heterogeneous_request.is_homogeneous
        assert len(heterogeneous_request.demands) == 6

    def test_demand_count_must_match(self):
        with pytest.raises(ValueError):
            HeterogeneousSVC(n_vms=3, demands=(Normal(1.0, 0.0),))

    def test_rejects_negative_mean(self):
        with pytest.raises(ValueError):
            HeterogeneousSVC(n_vms=1, demands=(Normal(-5.0, 1.0),))

    def test_sorted_order_ascending_percentile(self, heterogeneous_request):
        order = heterogeneous_request.sorted_order()
        percentiles = [heterogeneous_request.demands[i].percentile(95) for i in order]
        assert percentiles == sorted(percentiles)

    def test_sorted_order_is_permutation(self, heterogeneous_request):
        order = heterogeneous_request.sorted_order()
        assert sorted(order) == list(range(6))

    def test_sorted_order_tie_break_by_index(self):
        request = HeterogeneousSVC.uniform(4, mean=100.0, std=10.0)
        assert request.sorted_order() == (0, 1, 2, 3)

    def test_uniform_constructor(self):
        request = HeterogeneousSVC.uniform(5, mean=100.0, std=10.0)
        assert request.n_vms == 5
        assert all(d == Normal(100.0, 10.0) for d in request.demands)

    def test_sort_percentile_parameter_matters(self):
        # Low mean/high variance vs high mean/low variance flip order with p.
        request = HeterogeneousSVC(
            n_vms=2, demands=(Normal(100.0, 100.0), Normal(200.0, 1.0))
        )
        assert request.sorted_order(50.0) == (0, 1)
        assert request.sorted_order(99.9) == (1, 0)


class TestBaseClass:
    def test_base_is_abstractish(self):
        request = VirtualClusterRequest(n_vms=1)
        with pytest.raises(NotImplementedError):
            _ = request.is_deterministic
        with pytest.raises(NotImplementedError):
            _ = request.is_homogeneous
