"""Occupancy-accounting regressions of the heterogeneous allocators.

Two bugs shared by the substring heuristic and the exact subset DP:

* an **empty child segment/subset** was charged the child's *existing*
  uplink occupancy — and inherited ``inf`` once the uplink sat at
  ``_FEASIBLE_LIMIT`` — so a request that merely needed to *skip* a
  saturated sibling was rejected outright (the min-max objective of the
  paper is defined over links that actually carry the request's demand);
* a **zero-capacity uplink** was divided by without a guard, yielding NaN
  occupancies (``0/0`` for zero-demand segments) that silently survive both
  the ``>= _FEASIBLE_LIMIT`` mask and every ``<`` comparison — or, in the
  exact allocator, a raw ``ZeroDivisionError``.

These tests fail on the pre-fix implementations and pin the fixed
semantics: skipping a child costs exactly 0 and is always feasible; a
zero-capacity uplink admits nothing (``inf``, never NaN, never a crash).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstractions import HeterogeneousSVC
from repro.allocation import (
    SVCHeterogeneousAllocator,
    SVCHeterogeneousExactAllocator,
)
from repro.allocation.demand_model import segment_demand_table
from repro.network import NetworkState
from repro.network.link_state import LinkState
from repro.topology.nodes import Link
from repro.stochastic import Normal
from tests.conftest import build_star_tree


def _machine_ids(tree):
    return sorted(node.node_id for node in tree.nodes if node.is_machine)


def _saturate_uplink(state: NetworkState, machine_id: int) -> None:
    """Fill the machine's uplink to occupancy exactly 1.0 (external tenant)."""
    link = state.links[machine_id]
    link.add_deterministic(10_000, link.capacity)


def _zero_capacity_link_state(child: int, parent: int) -> LinkState:
    """A real LinkState over a capacity-0 link (Link validation bypassed —
    the constructor rightly refuses capacity <= 0, but the allocators must
    still behave if such a state ever materializes, e.g. via link failure
    models that drain capacity)."""
    link = object.__new__(Link)
    object.__setattr__(link, "link_id", child)
    object.__setattr__(link, "child", child)
    object.__setattr__(link, "parent", parent)
    object.__setattr__(link, "capacity", 0.0)
    return LinkState(link)


def _small_request(n: int) -> HeterogeneousSVC:
    return HeterogeneousSVC(
        n_vms=n, demands=tuple(Normal(40.0 + 5.0 * i, 8.0) for i in range(n))
    )


class TestEmptySegmentSemantics:
    """Skipping a full/saturated child must cost 0 and never be infeasible."""

    def _saturated_sibling_state(self):
        tree = build_star_tree(slots=(2, 2, 2), capacities=(1000.0, 1000.0, 1000.0))
        state = NetworkState(tree, epsilon=0.05)
        m0, m1, m2 = _machine_ids(tree)
        _saturate_uplink(state, m0)
        return state, (m0, m1, m2)

    @pytest.mark.parametrize(
        "make_allocator",
        [
            lambda: SVCHeterogeneousAllocator(),
            lambda: SVCHeterogeneousAllocator(fast=False),
            lambda: SVCHeterogeneousExactAllocator(),
        ],
        ids=["heuristic-fast", "heuristic-reference", "exact"],
    )
    def test_admit_flips_with_near_saturated_sibling(self, make_allocator):
        # 3 machines x 2 slots; m0's uplink is saturated by an external
        # reservation.  A 4-VM request fits on m1+m2 and must be admitted by
        # skipping m0 — the pre-fix code charged the empty segment m0's
        # existing occupancy (inf at the limit) and rejected the request.
        state, (m0, _m1, _m2) = self._saturated_sibling_state()
        allocation = make_allocator().allocate(state, _small_request(4), 1)
        assert allocation is not None, "skipping a saturated sibling must be feasible"
        assert m0 not in allocation.machine_vms
        # The saturated uplink carries none of this request's demand, so it
        # must not contribute to the reported min-max occupancy either.
        assert allocation.max_occupancy < 0.5

    @pytest.mark.parametrize(
        "make_allocator",
        [
            lambda: SVCHeterogeneousAllocator(),
            lambda: SVCHeterogeneousAllocator(fast=False),
            lambda: SVCHeterogeneousExactAllocator(),
        ],
        ids=["heuristic-fast", "heuristic-reference", "exact"],
    )
    def test_committed_placement_respects_eq1(self, make_allocator):
        state, _machines = self._saturated_sibling_state()
        allocation = make_allocator().allocate(state, _small_request(4), 1)
        state.commit(allocation)
        risk_c = state.risk_c
        for link_id in allocation.link_demands:
            assert state.links[link_id].occupancy(risk_c) < 1.0
        state.release(allocation)

    def test_empty_segment_costs_zero_in_effective_matrix(self):
        # Directly pin the matrix semantics: the diagonal (empty segments)
        # of the effective child matrix is 0 regardless of existing load.
        state, (m0, _m1, _m2) = self._saturated_sibling_state()
        request = _small_request(4)
        allocator = SVCHeterogeneousAllocator(fast=False)
        segments = segment_demand_table(request)
        tables = {m0: allocator._build_vertex(state, m0, 4, segments, {})}
        effective = allocator._child_effective(state, m0, 4, segments, tables)
        assert np.all(np.diagonal(effective) == 0.0)
        # Nonzero segments through the saturated uplink stay infeasible.
        assert np.isinf(effective[0, 4])


class TestZeroCapacityGuard:
    """Zero-capacity uplinks yield inf occupancy — never NaN, never a crash."""

    def _state_with_dead_uplink(self, slots=(2, 2, 2)):
        tree = build_star_tree(slots=slots, capacities=(1000.0,) * len(slots))
        state = NetworkState(tree, epsilon=0.05)
        machines = _machine_ids(tree)
        m0 = machines[0]
        parent = state.links[m0].link.parent
        state.links[m0] = _zero_capacity_link_state(m0, parent)
        return state, machines

    def test_heuristic_effective_matrix_is_nan_free(self):
        state, machines = self._state_with_dead_uplink()
        m0 = machines[0]
        request = _small_request(4)
        allocator = SVCHeterogeneousAllocator(fast=False)
        segments = segment_demand_table(request)
        tables = {m0: allocator._build_vertex(state, m0, 4, segments, {})}
        effective = allocator._child_effective(state, m0, 4, segments, tables)
        assert not np.isnan(effective).any(), "NaN slips through every mask"
        assert np.all(np.diagonal(effective) == 0.0)
        off_diagonal = ~np.eye(5, dtype=bool)
        assert np.all(np.isinf(effective[off_diagonal]))

    @pytest.mark.parametrize(
        "make_allocator",
        [
            lambda: SVCHeterogeneousAllocator(),
            lambda: SVCHeterogeneousAllocator(fast=False),
            lambda: SVCHeterogeneousExactAllocator(),
        ],
        ids=["heuristic-fast", "heuristic-reference", "exact"],
    )
    def test_allocate_survives_and_avoids_dead_subtree(self, make_allocator):
        # 4 VMs over 3x2 slots: some split is unavoidable, and any split
        # touching m0 must route demand over the dead uplink — so a valid
        # placement uses m1+m2 only.  The pre-fix exact allocator crashed
        # with ZeroDivisionError here; the heuristic produced NaN tables.
        state, machines = self._state_with_dead_uplink()
        allocation = make_allocator().allocate(state, _small_request(4), 1)
        assert allocation is not None
        assert machines[0] not in allocation.machine_vms
        assert np.isfinite(allocation.max_occupancy)

    @pytest.mark.parametrize(
        "make_allocator",
        [
            lambda: SVCHeterogeneousAllocator(),
            lambda: SVCHeterogeneousAllocator(fast=False),
            lambda: SVCHeterogeneousExactAllocator(),
        ],
        ids=["heuristic-fast", "heuristic-reference", "exact"],
    )
    def test_reject_when_dead_uplink_is_unavoidable(self, make_allocator):
        # Two machines only: a 3-VM request must split across both, so the
        # dead uplink is unavoidable and the request is cleanly rejected.
        state, _machines = self._state_with_dead_uplink(slots=(2, 2))
        assert make_allocator().allocate(state, _small_request(3), 1) is None

    @settings(max_examples=25, deadline=None)
    @given(
        n_vms=st.integers(min_value=3, max_value=4),
        mean=st.floats(min_value=0.0, max_value=500.0),
        rho=st.floats(min_value=0.0, max_value=1.0),
        fast=st.booleans(),
    )
    def test_hypothesis_never_nan_never_crash(self, n_vms, mean, rho, fast):
        # Mirrors the zero-capacity hypothesis cases tests/simulation has
        # for maxmin.py: arbitrary demands (including exactly-zero ones,
        # the 0/0 path) over a dead uplink.
        state, machines = self._state_with_dead_uplink()
        request = HeterogeneousSVC(
            n_vms=n_vms,
            demands=tuple(Normal(mean + i, rho * (mean + i)) for i in range(n_vms)),
        )
        allocation = SVCHeterogeneousAllocator(fast=fast).allocate(state, request, 1)
        if allocation is not None:
            assert machines[0] not in allocation.machine_vms
            assert np.isfinite(allocation.max_occupancy)
