"""Plain first-fit baseline: validity, greediness, comparisons."""

import pytest

from repro.abstractions import HeterogeneousSVC, HomogeneousSVC
from repro.allocation import FirstFitAllocator, SVCHeterogeneousAllocator
from repro.network import NetworkState
from repro.stochastic import Normal
from tests.conftest import build_star_tree


class TestFirstFit:
    def test_valid_and_complete(self, tiny_tree, heterogeneous_request):
        state = NetworkState(tiny_tree)
        allocation = FirstFitAllocator().allocate(state, heterogeneous_request, 1)
        assert allocation is not None
        placed = sorted(vm for vms in allocation.machine_vms.values() for vm in vms)
        assert placed == list(range(heterogeneous_request.n_vms))

    def test_commit_release_roundtrip(self, tiny_tree, heterogeneous_request):
        state = NetworkState(tiny_tree)
        allocation = FirstFitAllocator().allocate(state, heterogeneous_request, 1)
        state.commit(allocation)
        assert state.max_occupancy() < 1.0
        state.release(allocation)
        assert state.is_pristine()

    def test_packs_first_machines(self, tiny_tree):
        # Light demands: FF should fill machines in tree order.
        state = NetworkState(tiny_tree)
        request = HeterogeneousSVC.uniform(8, mean=50.0, std=5.0)
        allocation = FirstFitAllocator().allocate(state, request, 1)
        used = sorted(allocation.machine_counts)
        first_machines = sorted(tiny_tree.machine_ids)[: len(used)]
        assert used == first_machines
        assert all(count == 4 for count in allocation.machine_counts.values())

    def test_sorted_sequence_is_respected(self, tiny_tree, heterogeneous_request):
        state = NetworkState(tiny_tree)
        allocation = FirstFitAllocator().allocate(state, heterogeneous_request, 1)
        order = heterogeneous_request.sorted_order()
        position = {vm: idx for idx, vm in enumerate(order)}
        # Machines in tree order hold increasing, contiguous sorted positions.
        cursor = 0
        for machine_id in sorted(allocation.machine_vms):
            indices = sorted(position[vm] for vm in allocation.machine_vms[machine_id])
            assert indices[0] == cursor
            assert indices == list(range(cursor, cursor + len(indices)))
            cursor += len(indices)

    def test_never_better_than_heuristic_objective(self, tiny_tree):
        # The heuristic optimizes the same substring space FF draws from.
        request = HeterogeneousSVC(
            n_vms=8, demands=tuple(Normal(100.0 + 40.0 * k, 30.0) for k in range(8))
        )
        ff = FirstFitAllocator().allocate(NetworkState(tiny_tree), request, 1)
        heuristic = SVCHeterogeneousAllocator().allocate(NetworkState(tiny_tree), request, 1)
        assert ff is not None and heuristic is not None
        assert heuristic.max_occupancy <= ff.max_occupancy + 1e-9

    def test_infeasible_returns_none(self):
        tree = build_star_tree(slots=(1, 1), capacities=(100.0, 100.0))
        state = NetworkState(tree, epsilon=0.05)
        request = HeterogeneousSVC.uniform(3, mean=10.0, std=1.0)
        assert FirstFitAllocator().allocate(state, request, 1) is None

    def test_bandwidth_infeasible_returns_none(self):
        tree = build_star_tree(slots=(4, 4), capacities=(100.0, 100.0))
        state = NetworkState(tree, epsilon=0.05)
        request = HeterogeneousSVC.uniform(8, mean=90.0, std=20.0)
        assert FirstFitAllocator().allocate(state, request, 1) is None

    def test_rejects_homogeneous_type(self, tiny_tree):
        state = NetworkState(tiny_tree)
        with pytest.raises(TypeError):
            FirstFitAllocator().allocate(state, HomogeneousSVC(n_vms=2, mean=1.0, std=0.0), 1)

    def test_skips_full_machines(self, tiny_tree):
        state = NetworkState(tiny_tree)
        first_machine = tiny_tree.machine_ids[0]
        state._occupy(first_machine, 4)  # fill machine 0 out of band
        request = HeterogeneousSVC.uniform(4, mean=50.0, std=5.0)
        allocation = FirstFitAllocator().allocate(state, request, 1)
        assert first_machine not in allocation.machine_counts

    def test_host_is_lca_of_used_machines(self, tiny_tree, heterogeneous_request):
        state = NetworkState(tiny_tree)
        allocation = FirstFitAllocator().allocate(state, heterogeneous_request, 1)
        machines = set(allocation.machine_counts)
        host_machines = set(tiny_tree.machines_under(allocation.host_node))
        assert machines <= host_machines
