"""The admission fast path must be *decision-identical* to the seed DP.

The optimized Algorithm 1 (subtree free-slot pruning, batched uplink
occupancy, shared machine/vertex tables, broadcast (min, max)-convolution)
claims bit-for-bit equality with the seed implementation, not statistical
equivalence.  These tests drive both implementations over the same recorded
request traces — admissions *and* releases — and compare every decision:
host node, per-machine placement, and the reported ``max_occupancy``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.abstractions import DeterministicVC, HomogeneousSVC
from repro.allocation.svc_homogeneous import (
    AdaptedTIVCAllocator,
    SVCHomogeneousAllocator,
)
from repro.network import NetworkState
from repro.stochastic.aggregate import risk_quantile
from repro.topology import DatacenterSpec, build_datacenter


def _record_trace(seed: int, steps: int, max_n: int):
    """A reproducible request/release trace: (kind, request, release-ratio)."""
    rng = np.random.default_rng(seed)
    trace = []
    for _ in range(steps):
        n = int(np.clip(round(rng.exponential(max_n / 4)), 2, max_n))
        if rng.random() < 0.3:
            request = DeterministicVC(n_vms=n, bandwidth=float(rng.choice([100.0, 200.0, 300.0])))
        else:
            request = HomogeneousSVC(
                n_vms=n,
                mean=float(rng.choice([100.0, 200.0, 300.0, 400.0, 500.0])),
                std=float(rng.uniform(0.0, 1.0)) * 100.0,
            )
        trace.append((request, float(rng.random())))
    return trace


def _replay(trace, tree, make_fast, make_seed, epsilon=0.05):
    """Run the trace through both allocators, asserting identical decisions."""
    fast_state = NetworkState(tree, epsilon=epsilon)
    seed_state = NetworkState(tree, epsilon=epsilon)
    fast, seed = make_fast(), make_seed()
    active = []
    decisions = 0
    for request_id, (request, release_draw) in enumerate(trace, start=1):
        fast_alloc = fast.allocate(fast_state, request, request_id)
        seed_alloc = seed.allocate(seed_state, request, request_id)
        assert (fast_alloc is None) == (seed_alloc is None), (
            f"request {request_id}: fast={fast_alloc is not None} "
            f"seed={seed_alloc is not None}"
        )
        if fast_alloc is not None:
            assert fast_alloc.host_node == seed_alloc.host_node
            assert fast_alloc.machine_counts == seed_alloc.machine_counts
            # Bit-identical, not approximately equal:
            assert fast_alloc.max_occupancy == seed_alloc.max_occupancy
            fast_state.commit(fast_alloc)
            seed_state.commit(seed_alloc)
            active.append((fast_alloc, seed_alloc))
            decisions += 1
        if active and release_draw < 0.3:
            index = int(release_draw * 1e6) % len(active)
            fast_alloc, seed_alloc = active.pop(index)
            fast_state.release(fast_alloc)
            seed_state.release(seed_alloc)
    # Link states stay bit-identical too.
    for link_id, fast_link in fast_state.links.items():
        seed_link = seed_state.links[link_id]
        assert fast_link.mean_total == seed_link.mean_total
        assert fast_link.var_total == seed_link.var_total
        assert fast_link.deterministic_total == seed_link.deterministic_total
    return decisions


class TestRecordedTraceEquivalence:
    def test_svc_dp_identical_on_recorded_trace(self, tiny_tree):
        trace = _record_trace(seed=7, steps=120, max_n=24)
        placed = _replay(
            trace,
            tiny_tree,
            lambda: SVCHomogeneousAllocator(),
            lambda: SVCHomogeneousAllocator(fast=False),
        )
        assert placed > 10  # the trace must actually exercise placements

    def test_tivc_identical_on_recorded_trace(self, tiny_tree):
        trace = _record_trace(seed=11, steps=120, max_n=24)
        placed = _replay(
            trace,
            tiny_tree,
            lambda: AdaptedTIVCAllocator(),
            lambda: AdaptedTIVCAllocator(fast=False),
        )
        assert placed > 10

    def test_svc_dp_identical_on_larger_tree(self):
        tree = build_datacenter(DatacenterSpec(machines_per_rack=8, racks_per_pod=3, pods=3))
        trace = _record_trace(seed=3, steps=80, max_n=48)
        placed = _replay(
            trace,
            tree,
            lambda: SVCHomogeneousAllocator(),
            lambda: SVCHomogeneousAllocator(fast=False),
        )
        assert placed > 10

    def test_seed_allocator_reports_its_name(self):
        assert SVCHomogeneousAllocator().name == "svc-dp"
        assert SVCHomogeneousAllocator(fast=False).name == "svc-dp-seed"


class TestRandomTreeAgreement:
    """Hypothesis: pruned and seed DP agree on allocability for random trees."""

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        machines_per_rack=st.integers(min_value=1, max_value=4),
        racks=st.integers(min_value=1, max_value=3),
        pods=st.integers(min_value=1, max_value=2),
        n_vms=st.integers(min_value=2, max_value=20),
        mean=st.sampled_from([50.0, 150.0, 400.0]),
        rho=st.floats(min_value=0.0, max_value=1.0),
        oversub=st.sampled_from([1.0, 2.0, 4.0]),
    )
    def test_allocability_agrees(self, machines_per_rack, racks, pods, n_vms, mean, rho, oversub):
        spec = DatacenterSpec(
            machines_per_rack=machines_per_rack,
            slots_per_machine=2,
            racks_per_pod=racks,
            pods=pods,
            machine_link_mbps=500.0,
            oversubscription=oversub,
        )
        tree = build_datacenter(spec)
        request = HomogeneousSVC(n_vms=n_vms, mean=mean, std=rho * mean)
        fast = SVCHomogeneousAllocator().allocate(NetworkState(tree), request, 1)
        seed = SVCHomogeneousAllocator(fast=False).allocate(NetworkState(tree), request, 1)
        assert (fast is None) == (seed is None)
        if fast is not None:
            assert fast.host_node == seed.host_node
            assert fast.machine_counts == seed.machine_counts
            assert fast.max_occupancy == seed.max_occupancy


class TestRiskQuantileConsistency:
    """The cached quantile must stay consistent with the network state."""

    @settings(max_examples=50, deadline=None)
    @given(epsilon=st.floats(min_value=1e-6, max_value=0.5))
    def test_state_risk_c_matches_cached_quantile(self, tiny_tree, epsilon):
        state = NetworkState(tiny_tree, epsilon=epsilon)
        assert state.risk_c == risk_quantile(state.epsilon)
        # Repeated lookups return the identical cached value.
        assert risk_quantile(epsilon) == risk_quantile(epsilon)

    def test_invalid_epsilon_still_rejected(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                risk_quantile(bad)


class TestSubtreeFreeSlotTotals:
    """NetworkState's incremental per-subtree totals match a fresh recount."""

    def _assert_totals_consistent(self, state):
        tree = state.tree
        for node in tree.nodes:
            expected = sum(
                state.free_slots(machine) for machine in tree.machines_under(node.node_id)
            )
            assert state.free_slots_under(node.node_id) == expected

    def test_totals_track_commit_and_release(self, tiny_tree):
        state = NetworkState(tiny_tree, epsilon=0.05)
        allocator = SVCHomogeneousAllocator()
        self._assert_totals_consistent(state)
        committed = []
        for request_id in range(1, 9):
            allocation = allocator.allocate(
                state, HomogeneousSVC(n_vms=6, mean=100.0, std=30.0), request_id
            )
            if allocation is None:
                break
            state.commit(allocation)
            committed.append(allocation)
            self._assert_totals_consistent(state)
        assert committed
        for allocation in committed:
            state.release(allocation)
            self._assert_totals_consistent(state)
        assert state.is_pristine()
        assert state.free_slots_under(tiny_tree.root_id) == tiny_tree.total_slots
