"""Substring heuristic allocator: validity, contiguity, quality."""

import numpy as np
import pytest

from repro.abstractions import HeterogeneousSVC, HomogeneousSVC
from repro.allocation import (
    SVCHeterogeneousAllocator,
    SVCHeterogeneousExactAllocator,
    SVCHomogeneousAllocator,
)
from repro.network import NetworkState
from repro.stochastic import Normal
from tests.conftest import build_star_tree


def assert_contiguous_segments(request, allocation):
    """Every machine must hold a contiguous substring of the sorted order."""
    order = list(request.sorted_order())
    position = {vm: idx for idx, vm in enumerate(order)}
    for machine_id, vms in allocation.machine_vms.items():
        indices = sorted(position[vm] for vm in vms)
        assert indices == list(range(indices[0], indices[0] + len(indices))), (
            f"machine {machine_id} holds a non-contiguous substring: {indices}"
        )


class TestHeuristicAllocator:
    def test_valid_and_complete(self, tiny_tree, heterogeneous_request):
        state = NetworkState(tiny_tree)
        allocation = SVCHeterogeneousAllocator().allocate(state, heterogeneous_request, 1)
        assert allocation is not None
        placed = sorted(vm for vms in allocation.machine_vms.values() for vm in vms)
        assert placed == list(range(heterogeneous_request.n_vms))

    def test_substring_structure(self, tiny_tree, heterogeneous_request):
        state = NetworkState(tiny_tree)
        allocation = SVCHeterogeneousAllocator().allocate(state, heterogeneous_request, 1)
        assert_contiguous_segments(heterogeneous_request, allocation)

    def test_commit_release_roundtrip(self, tiny_tree, heterogeneous_request):
        state = NetworkState(tiny_tree)
        allocation = SVCHeterogeneousAllocator().allocate(state, heterogeneous_request, 1)
        state.commit(allocation)
        assert state.max_occupancy() < 1.0
        state.release(allocation)
        assert state.is_pristine()

    def test_objective_not_better_than_exact(self, heterogeneous_request):
        # The heuristic searches a subset of placements, so its min-max
        # occupancy is >= the exact optimum (and usually equal on easy inputs).
        tree = build_star_tree(slots=(2, 2, 2), capacities=(900.0, 900.0, 900.0))
        state = NetworkState(tree, epsilon=0.05)
        exact = SVCHeterogeneousExactAllocator().allocate(state, heterogeneous_request, 1)
        heuristic = SVCHeterogeneousAllocator().allocate(state, heterogeneous_request, 2)
        assert exact is not None and heuristic is not None
        assert heuristic.max_occupancy >= exact.max_occupancy - 1e-9

    def test_uniform_het_matches_homogeneous_objective(self):
        # With identical per-VM demands the substring structure is no
        # restriction at all: the heuristic must reach the homogeneous
        # DP's optimum.
        tree = build_star_tree(slots=(3, 3, 3), capacities=(1000.0,) * 3)
        state = NetworkState(tree, epsilon=0.05)
        het = HeterogeneousSVC.uniform(7, mean=150.0, std=50.0)
        homo = HomogeneousSVC(n_vms=7, mean=150.0, std=50.0)
        het_alloc = SVCHeterogeneousAllocator().allocate(state, het, 1)
        homo_alloc = SVCHomogeneousAllocator().allocate(state, homo, 2)
        assert het_alloc.max_occupancy == pytest.approx(
            homo_alloc.max_occupancy, abs=1e-9
        )

    def test_infeasible_returns_none(self):
        tree = build_star_tree(slots=(1, 1), capacities=(100.0, 100.0))
        state = NetworkState(tree, epsilon=0.05)
        request = HeterogeneousSVC.uniform(2, mean=200.0, std=50.0)
        assert SVCHeterogeneousAllocator().allocate(state, request, 1) is None

    def test_single_machine_job_no_links(self, tiny_tree):
        state = NetworkState(tiny_tree)
        request = HeterogeneousSVC(
            n_vms=3, demands=(Normal(50.0, 5.0), Normal(60.0, 6.0), Normal(70.0, 7.0))
        )
        allocation = SVCHeterogeneousAllocator().allocate(state, request, 1)
        assert allocation.num_machines == 1
        assert allocation.link_demands == {}

    def test_rejects_homogeneous_type(self, tiny_tree):
        state = NetworkState(tiny_tree)
        with pytest.raises(TypeError):
            SVCHeterogeneousAllocator().allocate(
                state, HomogeneousSVC(n_vms=2, mean=1.0, std=0.0), 1
            )

    def test_link_demands_match_segments(self, tiny_tree, heterogeneous_request):
        from repro.allocation.demand_model import subset_split_demand

        state = NetworkState(tiny_tree)
        allocation = SVCHeterogeneousAllocator().allocate(state, heterogeneous_request, 1)
        # Recompute each recorded link demand from the VMs actually below it.
        for link_id, recorded in allocation.link_demands.items():
            below = [
                vm
                for machine_id, vms in allocation.machine_vms.items()
                if machine_id in tiny_tree.machines_under(link_id)
                for vm in vms
            ]
            expected = subset_split_demand(heterogeneous_request, below)
            assert recorded.mean == pytest.approx(expected.mean, abs=1e-6)
            assert recorded.variance == pytest.approx(expected.variance, rel=1e-6, abs=1e-6)

    def test_sequential_fill_until_rejection(self, tiny_tree):
        state = NetworkState(tiny_tree)
        allocator = SVCHeterogeneousAllocator()
        admitted = []
        for index in range(60):
            request = HeterogeneousSVC(
                n_vms=4,
                demands=tuple(Normal(150.0 + 50.0 * k, 60.0) for k in range(4)),
            )
            allocation = allocator.allocate(state, request, index + 1)
            if allocation is None:
                break
            state.commit(allocation)
            admitted.append(allocation)
        assert admitted
        assert state.max_occupancy() < 1.0
        for allocation in admitted:
            state.release(allocation)
        assert state.is_pristine()


class TestTinyTreeOptimality:
    """Exhaustive small-instance cross-check against the exact subset DP.

    The substring heuristic searches a strict subset of the exact DP's
    placements, so on every instance it either rejects or reports a min-max
    occupancy >= the exact optimum — and whatever either admits must respect
    the Eq. 1 validity condition (O_L < 1 on every loaded link).
    """

    def _random_instance(self, rng):
        n = int(rng.integers(2, 7))  # N <= 6: exact stays exhaustive and cheap
        machines = int(rng.integers(2, 4))
        slots = tuple(int(rng.integers(1, 4)) for _ in range(machines))
        capacities = tuple(
            float(rng.choice([400.0, 800.0, 1500.0])) for _ in range(machines)
        )
        request = HeterogeneousSVC(
            n_vms=n,
            demands=tuple(
                Normal(
                    float(rng.choice([100.0, 200.0, 300.0])),
                    float(rng.uniform(0.0, 1.0)) * 100.0,
                )
                for _ in range(n)
            ),
        )
        return build_star_tree(slots=slots, capacities=capacities), request

    def _assert_valid_commit(self, tree, allocation):
        state = NetworkState(tree, epsilon=0.05)
        state.commit(allocation)
        for link_id in allocation.link_demands:
            assert state.links[link_id].occupancy(state.risk_c) < 1.0
        state.release(allocation)
        assert state.is_pristine()

    def test_heuristic_never_beats_exact_and_both_respect_eq1(self):
        rng = np.random.default_rng(2024)
        comparable = 0
        for trial in range(40):
            tree, request = self._random_instance(rng)
            exact = SVCHeterogeneousExactAllocator().allocate(
                NetworkState(tree, epsilon=0.05), request, 1
            )
            for fast in (True, False):
                heuristic = SVCHeterogeneousAllocator(fast=fast).allocate(
                    NetworkState(tree, epsilon=0.05), request, 1
                )
                if heuristic is not None:
                    # Whatever the restricted search admits, the exhaustive
                    # search admits too — and at least as cheaply.
                    assert exact is not None, f"trial {trial}: exact rejected"
                    assert heuristic.max_occupancy >= exact.max_occupancy - 1e-9
                    self._assert_valid_commit(tree, heuristic)
                    comparable += 1
            if exact is not None:
                self._assert_valid_commit(tree, exact)
        assert comparable > 20  # the sweep must actually exercise admissions
