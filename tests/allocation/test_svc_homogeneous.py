"""Algorithm 1 (homogeneous SVC DP): correctness, optimality, invariants."""

import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.allocation import SVCHomogeneousAllocator
from repro.network import NetworkState
from repro.topology import build_two_machine_example
from tests.allocation.helpers import (
    assert_allocation_valid,
    assert_link_demands_consistent,
    brute_force_best_split,
)
from tests.conftest import build_star_tree


@pytest.fixture()
def allocator() -> SVCHomogeneousAllocator:
    return SVCHomogeneousAllocator()


class TestFig3WorkedExample:
    def test_optimal_occupancy_on_fig3_topology(self, allocator):
        # Fig. 3: <N=6, B=10> on two 5-slot machines, C=50.  The paper
        # contrasts 2+4 (occupancy 20/50) with 3+3 (30/50); the true optimum
        # is 1+5 with min(1,5)*10 = 10 on both links.
        tree = build_two_machine_example()
        state = NetworkState(tree, epsilon=0.05)
        allocation = allocator.allocate(state, DeterministicVC(n_vms=6, bandwidth=10.0), 1)
        assert allocation is not None
        assert allocation.max_occupancy == pytest.approx(0.2)
        assert sorted(allocation.machine_counts.values()) == [1, 5]

    def test_beats_balanced_split(self, allocator):
        tree = build_two_machine_example()
        state = NetworkState(tree, epsilon=0.05)
        allocation = allocator.allocate(state, DeterministicVC(n_vms=6, bandwidth=10.0), 1)
        balanced_occupancy = 10.0 * min(3, 3) / 50.0  # 0.6
        assert allocation.max_occupancy < balanced_occupancy


class TestBasicPlacement:
    def test_single_machine_job_has_no_link_demands(self, allocator, tiny_tree):
        state = NetworkState(tiny_tree)
        allocation = allocator.allocate(state, HomogeneousSVC(n_vms=3, mean=100.0, std=30.0), 1)
        assert allocation is not None
        assert allocation.num_machines == 1
        assert allocation.link_demands == {}
        assert allocation.max_occupancy == 0.0
        assert tiny_tree.node(allocation.host_node).is_machine

    def test_places_all_vms(self, allocator, tiny_tree, homogeneous_request):
        state = NetworkState(tiny_tree)
        allocation = allocator.allocate(state, homogeneous_request, 1)
        assert sum(allocation.machine_counts.values()) == homogeneous_request.n_vms

    def test_candidate_is_valid(self, allocator, tiny_tree, homogeneous_request):
        state = NetworkState(tiny_tree)
        allocation = allocator.allocate(state, homogeneous_request, 1)
        assert_allocation_valid(state, allocation)
        assert_link_demands_consistent(tiny_tree, allocation)

    def test_lowest_level_host_preferred(self, allocator, tiny_tree):
        # 8 VMs fit inside one rack (4 machines x 4 slots) of the tiny DC.
        state = NetworkState(tiny_tree)
        allocation = allocator.allocate(state, HomogeneousSVC(n_vms=8, mean=50.0, std=10.0), 1)
        assert tiny_tree.node(allocation.host_node).level <= 1

    def test_rejects_more_vms_than_slots(self, allocator, tiny_tree):
        state = NetworkState(tiny_tree)
        too_big = HomogeneousSVC(n_vms=tiny_tree.total_slots + 1, mean=1.0, std=0.1)
        assert allocator.allocate(state, too_big, 1) is None

    def test_rejects_bandwidth_infeasible(self, allocator, tiny_tree):
        # A demand whose single-VM effective bandwidth exceeds the NIC can
        # never satisfy O_L < 1 on any machine uplink once the job is too
        # big for one machine (co-located VMs use no links, so N must
        # exceed the 4 slots of a tiny-DC machine to force crossing).
        state = NetworkState(tiny_tree)
        impossible = HomogeneousSVC(n_vms=8, mean=900.0, std=200.0)
        assert allocator.allocate(state, impossible, 1) is None

    def test_supports_homogeneous_and_deterministic(self, allocator):
        assert allocator.supports(HomogeneousSVC(n_vms=1, mean=1.0, std=0.0))
        assert allocator.supports(DeterministicVC(n_vms=1, bandwidth=1.0))
        assert not allocator.supports(HeterogeneousSVC.uniform(2, mean=1.0, std=0.0))

    def test_type_error_on_heterogeneous(self, allocator, tiny_tree):
        state = NetworkState(tiny_tree)
        with pytest.raises(TypeError):
            allocator.allocate(state, HeterogeneousSVC.uniform(2, mean=1.0, std=0.0), 1)


class TestOptimality:
    @pytest.mark.parametrize(
        "request_obj",
        [
            DeterministicVC(n_vms=6, bandwidth=10.0),
            DeterministicVC(n_vms=7, bandwidth=13.0),
            HomogeneousSVC(n_vms=6, mean=10.0, std=4.0),
            HomogeneousSVC(n_vms=9, mean=8.0, std=8.0),
        ],
    )
    def test_matches_brute_force_on_star(self, allocator, request_obj):
        tree = build_star_tree(slots=(5, 5, 5), capacities=(50.0, 50.0, 50.0))
        state = NetworkState(tree, epsilon=0.05)
        allocation = allocator.allocate(state, request_obj, 1)
        best = brute_force_best_split(state, request_obj, host=tree.root_id)
        assert allocation is not None and best is not None
        assert allocation.max_occupancy == pytest.approx(best, abs=1e-9)

    def test_matches_brute_force_with_existing_load(self, allocator):
        tree = build_star_tree(slots=(5, 5, 5), capacities=(50.0, 50.0, 50.0))
        state = NetworkState(tree, epsilon=0.05)
        first = allocator.allocate(state, HomogeneousSVC(n_vms=5, mean=6.0, std=3.0), 1)
        state.commit(first)
        request = HomogeneousSVC(n_vms=6, mean=5.0, std=2.0)
        allocation = allocator.allocate(state, request, 2)
        best = brute_force_best_split(state, request, host=tree.root_id)
        assert allocation is not None and best is not None
        assert allocation.max_occupancy == pytest.approx(best, abs=1e-9)

    def test_asymmetric_capacities(self, allocator):
        # The DP must prefer placing the bigger group behind the fat link.
        tree = build_star_tree(slots=(8, 8), capacities=(20.0, 200.0))
        state = NetworkState(tree, epsilon=0.05)
        request = DeterministicVC(n_vms=8, bandwidth=5.0)
        allocation = allocator.allocate(state, request, 1)
        best = brute_force_best_split(state, request, host=tree.root_id)
        assert allocation.max_occupancy == pytest.approx(best, abs=1e-9)

    def test_matches_brute_force_on_two_level_tree(self, allocator):
        from repro.topology.tree import Tree

        tree = Tree()
        core = tree.add_switch("core", level=2)
        for rack in range(2):
            tor = tree.add_switch(f"tor{rack}", level=1)
            tree.attach(tor, core, 60.0)
            for m in range(2):
                machine = tree.add_machine(f"m{rack}.{m}", slot_capacity=3)
                tree.attach(machine, tor, 40.0)
        tree.freeze()
        state = NetworkState(tree, epsilon=0.05)
        request = HomogeneousSVC(n_vms=9, mean=6.0, std=3.0)
        allocation = allocator.allocate(state, request, 1)
        assert allocation is not None
        assert allocation.host_node == tree.root_id  # 9 VMs need both racks
        best = brute_force_best_split(state, request, host=tree.root_id)
        assert allocation.max_occupancy == pytest.approx(best, abs=1e-9)


class TestStatefulBehaviour:
    def test_sequential_fill_until_rejection(self, allocator, tiny_tree):
        state = NetworkState(tiny_tree)
        admitted = 0
        committed = []
        while True:
            request = HomogeneousSVC(n_vms=4, mean=300.0, std=120.0)
            allocation = allocator.allocate(state, request, admitted + 1)
            if allocation is None:
                break
            assert_allocation_valid(state, allocation)
            state.commit(allocation)
            committed.append(allocation)
            admitted += 1
            assert admitted < 100, "allocator failed to converge to rejection"
        assert admitted >= 1
        # After rejection, all committed links still satisfy the guarantee.
        assert state.max_occupancy() < 1.0
        for allocation in committed:
            state.release(allocation)
        assert state.is_pristine()

    def test_allocation_avoids_hot_rack(self, allocator, tiny_tree):
        # Load one rack heavily; the next job should land elsewhere.
        state = NetworkState(tiny_tree)
        first = allocator.allocate(state, HomogeneousSVC(n_vms=12, mean=200.0, std=80.0), 1)
        state.commit(first)
        hot_machines = set(first.machine_counts)
        second = allocator.allocate(state, HomogeneousSVC(n_vms=4, mean=200.0, std=80.0), 2)
        assert second is not None
        assert_allocation_valid(state, second)

    def test_deterministic_vc_reserves_not_shares(self, allocator, tiny_tree):
        state = NetworkState(tiny_tree)
        request = DeterministicVC(n_vms=8, bandwidth=100.0)
        allocation = allocator.allocate(state, request, 1)
        state.commit(allocation)
        for link_id in allocation.link_demands:
            link = state.links[link_id]
            assert link.deterministic_total > 0.0
            assert link.num_stochastic_demands == 0

    def test_max_occupancy_metric_matches_state(self, allocator, tiny_tree):
        state = NetworkState(tiny_tree)
        request = HomogeneousSVC(n_vms=10, mean=300.0, std=100.0)
        allocation = allocator.allocate(state, request, 1)
        state.commit(allocation)
        # Committed network-wide max equals the reported objective because
        # the rest of the network is empty.
        assert state.max_occupancy() == pytest.approx(allocation.max_occupancy, abs=1e-9)
