"""Demand-model tables vs. the scalar Lemma-1 ground truth."""

import itertools

import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.allocation.demand_model import (
    SegmentDemandTable,
    homogeneous_split_moments,
    link_demand_homogeneous,
    subset_split_demand,
)
from repro.stochastic.minimum import min_of_normals
from repro.stochastic.normal import sum_iid


class TestHomogeneousSplitMoments:
    def test_vectorized_matches_scalar(self):
        request = HomogeneousSVC(n_vms=12, mean=150.0, std=60.0)
        mu, var = homogeneous_split_moments(request)
        for m in range(13):
            scalar = link_demand_homogeneous(request, m)
            assert mu[m] == pytest.approx(scalar.mean, abs=1e-9)
            assert var[m] == pytest.approx(scalar.variance, rel=1e-9, abs=1e-9)

    def test_boundary_splits_zero(self):
        request = HomogeneousSVC(n_vms=7, mean=100.0, std=40.0)
        mu, var = homogeneous_split_moments(request)
        assert mu[0] == mu[7] == 0.0
        assert var[0] == var[7] == 0.0

    def test_symmetry_in_split(self):
        request = HomogeneousSVC(n_vms=10, mean=100.0, std=40.0)
        mu, var = homogeneous_split_moments(request)
        for m in range(11):
            assert mu[m] == pytest.approx(mu[10 - m])
            assert var[m] == pytest.approx(var[10 - m])

    def test_deterministic_request_classic_formula(self):
        request = DeterministicVC(n_vms=6, bandwidth=10.0)
        mu, var = homogeneous_split_moments(request)
        assert list(mu) == [10.0 * min(m, 6 - m) for m in range(7)]
        assert not var.any()

    def test_scalar_matches_direct_lemma1(self):
        request = HomogeneousSVC(n_vms=9, mean=100.0, std=40.0)
        demand = request.vm_demand
        for m in (1, 4, 8):
            expected = min_of_normals(sum_iid(demand, m), sum_iid(demand, 9 - m))
            actual = link_demand_homogeneous(request, m)
            assert actual.mean == pytest.approx(expected.mean)
            assert actual.variance == pytest.approx(expected.variance)

    def test_scalar_rejects_out_of_range(self):
        request = HomogeneousSVC(n_vms=5, mean=10.0, std=1.0)
        with pytest.raises(ValueError):
            link_demand_homogeneous(request, 6)

    def test_mean_nonnegative_everywhere(self):
        # Even with sigma >> mu the clamp keeps demands physical.
        request = HomogeneousSVC(n_vms=20, mean=10.0, std=100.0)
        mu, _ = homogeneous_split_moments(request)
        assert (mu >= 0.0).all()

    def test_rejects_heterogeneous(self):
        request = HeterogeneousSVC.uniform(3, mean=10.0, std=1.0)
        with pytest.raises(TypeError):
            homogeneous_split_moments(request)


class TestSubsetSplitDemand:
    def test_empty_and_full_are_zero(self, heterogeneous_request):
        assert subset_split_demand(heterogeneous_request, []).mean == 0.0
        assert subset_split_demand(heterogeneous_request, range(6)).mean == 0.0

    def test_matches_manual_lemma1(self, heterogeneous_request):
        subset = [0, 2]
        inside = heterogeneous_request.demands[0] + heterogeneous_request.demands[2]
        outside = (
            heterogeneous_request.demands[1]
            + heterogeneous_request.demands[3]
            + heterogeneous_request.demands[4]
            + heterogeneous_request.demands[5]
        )
        expected = min_of_normals(inside, outside)
        actual = subset_split_demand(heterogeneous_request, subset)
        assert actual.mean == pytest.approx(expected.mean)
        assert actual.variance == pytest.approx(expected.variance)

    def test_complement_symmetry(self, heterogeneous_request):
        subset = [1, 3, 5]
        complement = [0, 2, 4]
        a = subset_split_demand(heterogeneous_request, subset)
        b = subset_split_demand(heterogeneous_request, complement)
        assert a.mean == pytest.approx(b.mean)
        assert a.variance == pytest.approx(b.variance)

    def test_rejects_out_of_range(self, heterogeneous_request):
        with pytest.raises(ValueError):
            subset_split_demand(heterogeneous_request, [99])


class TestSegmentDemandTable:
    def test_segments_match_subset_ground_truth(self, heterogeneous_request):
        table = SegmentDemandTable(heterogeneous_request)
        n = heterogeneous_request.n_vms
        for start, end in itertools.combinations(range(n + 1), 2):
            subset = table.segment_vms(start, end)
            expected = subset_split_demand(heterogeneous_request, subset)
            actual = table.segment_demand(start, end)
            assert actual.mean == pytest.approx(expected.mean, abs=1e-6)
            assert actual.variance == pytest.approx(expected.variance, rel=1e-6, abs=1e-6)

    def test_empty_and_full_segments_zero(self, heterogeneous_request):
        table = SegmentDemandTable(heterogeneous_request)
        n = heterogeneous_request.n_vms
        for s in range(n + 1):
            assert table.segment_demand(s, s).mean == 0.0
        assert table.segment_demand(0, n).mean == 0.0

    def test_order_is_percentile_sorted(self, heterogeneous_request):
        table = SegmentDemandTable(heterogeneous_request)
        assert table.order == heterogeneous_request.sorted_order()

    def test_segment_vms_slices_sorted_order(self, heterogeneous_request):
        table = SegmentDemandTable(heterogeneous_request)
        assert table.segment_vms(1, 4) == table.order[1:4]

    def test_invalid_segment_rejected(self, heterogeneous_request):
        table = SegmentDemandTable(heterogeneous_request)
        with pytest.raises(ValueError):
            table.segment_demand(4, 2)

    def test_demand_mean_matrix_nonnegative(self, heterogeneous_request):
        table = SegmentDemandTable(heterogeneous_request)
        assert (table.demand_mean >= 0.0).all()
        assert (table.demand_var >= 0.0).all()

    def test_uniform_het_matches_homogeneous_splits(self):
        n = 8
        het = HeterogeneousSVC.uniform(n, mean=100.0, std=40.0)
        homo = HomogeneousSVC(n_vms=n, mean=100.0, std=40.0)
        table = SegmentDemandTable(het)
        mu, var = homogeneous_split_moments(homo)
        for size in range(n + 1):
            seg = table.segment_demand(0, size)
            assert seg.mean == pytest.approx(mu[size], abs=1e-6)
            assert seg.variance == pytest.approx(var[size], abs=1e-6)
