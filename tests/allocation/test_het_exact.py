"""Exact heterogeneous DP: validity, optimality, guard rails."""

import itertools

import pytest

from repro.abstractions import HeterogeneousSVC, HomogeneousSVC
from repro.allocation import SVCHeterogeneousExactAllocator
from repro.allocation.demand_model import subset_split_demand
from repro.allocation.svc_het_exact import MAX_EXACT_VMS, _mask_split_demands
from repro.network import NetworkState
from repro.stochastic import Normal
from tests.conftest import build_star_tree


def brute_force_het(state, request):
    """Reference: enumerate all VM-to-machine assignments on a star tree."""
    tree = state.tree
    machines = list(tree.machine_ids)
    n = request.n_vms
    best = None
    for assignment in itertools.product(range(len(machines)), repeat=n):
        counts = {}
        for vm, slot in enumerate(assignment):
            counts.setdefault(machines[slot], []).append(vm)
        if any(len(vms) > state.free_slots(m) for m, vms in counts.items()):
            continue
        worst = 0.0
        feasible = True
        for machine_id, vms in counts.items():
            demand = subset_split_demand(request, vms)
            occ = state.links[machine_id].occupancy_with(
                state.risk_c, extra_mean=demand.mean, extra_var=demand.variance
            )
            if occ >= 1.0:
                feasible = False
                break
            worst = max(worst, occ)
        if feasible and (best is None or worst < best):
            best = worst
    return best


class TestMaskDemands:
    def test_matches_subset_ground_truth(self, heterogeneous_request):
        mu, var = _mask_split_demands(heterogeneous_request)
        n = heterogeneous_request.n_vms
        for mask in range(1 << n):
            subset = [bit for bit in range(n) if mask & (1 << bit)]
            expected = subset_split_demand(heterogeneous_request, subset)
            assert mu[mask] == pytest.approx(expected.mean, abs=1e-6)
            assert var[mask] == pytest.approx(expected.variance, rel=1e-6, abs=1e-6)

    def test_empty_and_full_masks_zero(self, heterogeneous_request):
        mu, var = _mask_split_demands(heterogeneous_request)
        full = (1 << heterogeneous_request.n_vms) - 1
        assert mu[0] == var[0] == 0.0
        assert mu[full] == var[full] == 0.0


class TestExactAllocator:
    def test_valid_allocation(self, tiny_tree, heterogeneous_request):
        state = NetworkState(tiny_tree)
        allocation = SVCHeterogeneousExactAllocator().allocate(
            state, heterogeneous_request, 1
        )
        assert allocation is not None
        assert sum(allocation.machine_counts.values()) == heterogeneous_request.n_vms
        placed = sorted(
            vm for vms in allocation.machine_vms.values() for vm in vms
        )
        assert placed == list(range(heterogeneous_request.n_vms))

    def test_commit_release_roundtrip(self, tiny_tree, heterogeneous_request):
        state = NetworkState(tiny_tree)
        allocation = SVCHeterogeneousExactAllocator().allocate(
            state, heterogeneous_request, 1
        )
        state.commit(allocation)
        assert state.max_occupancy() < 1.0
        state.release(allocation)
        assert state.is_pristine()

    def test_optimal_on_star(self):
        tree = build_star_tree(slots=(2, 2, 2), capacities=(800.0, 800.0, 800.0))
        state = NetworkState(tree, epsilon=0.05)
        request = HeterogeneousSVC(
            n_vms=5,
            demands=(
                Normal(100.0, 30.0),
                Normal(200.0, 60.0),
                Normal(300.0, 90.0),
                Normal(150.0, 10.0),
                Normal(250.0, 40.0),
            ),
        )
        allocation = SVCHeterogeneousExactAllocator().allocate(state, request, 1)
        best = brute_force_het(state, request)
        assert allocation is not None and best is not None
        assert allocation.max_occupancy == pytest.approx(best, abs=1e-9)

    def test_optimal_with_existing_load(self):
        tree = build_star_tree(slots=(3, 3), capacities=(500.0, 500.0))
        state = NetworkState(tree, epsilon=0.05)
        state.links[tree.machine_ids[0]].add_stochastic(99, Normal(150.0, 40.0))
        request = HeterogeneousSVC(
            n_vms=3,
            demands=(Normal(100.0, 20.0), Normal(120.0, 30.0), Normal(80.0, 10.0)),
        )
        allocation = SVCHeterogeneousExactAllocator().allocate(state, request, 1)
        best = brute_force_het(state, request)
        assert allocation.max_occupancy == pytest.approx(best, abs=1e-9)

    def test_rejects_oversized_n(self, tiny_tree):
        state = NetworkState(tiny_tree)
        big = HeterogeneousSVC.uniform(MAX_EXACT_VMS + 1, mean=10.0, std=1.0)
        with pytest.raises(ValueError):
            SVCHeterogeneousExactAllocator().allocate(state, big, 1)

    def test_rejects_homogeneous_type(self, tiny_tree):
        state = NetworkState(tiny_tree)
        with pytest.raises(TypeError):
            SVCHeterogeneousExactAllocator().allocate(
                state, HomogeneousSVC(n_vms=2, mean=1.0, std=0.0), 1
            )

    def test_infeasible_returns_none(self):
        tree = build_star_tree(slots=(1, 1), capacities=(100.0, 100.0))
        state = NetworkState(tree, epsilon=0.05)
        request = HeterogeneousSVC.uniform(2, mean=200.0, std=50.0)
        assert SVCHeterogeneousExactAllocator().allocate(state, request, 1) is None

    def test_constructor_guards(self):
        with pytest.raises(ValueError):
            SVCHeterogeneousExactAllocator(max_vms=0)
        with pytest.raises(ValueError):
            SVCHeterogeneousExactAllocator(max_vms=MAX_EXACT_VMS + 5)
