"""Adapted-TIVC and Oktopus baselines: feasibility-correct, occupancy-blind."""

import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.allocation import (
    AdaptedTIVCAllocator,
    OktopusAllocator,
    SVCHomogeneousAllocator,
)
from repro.network import NetworkState
from tests.allocation.helpers import (
    assert_allocation_valid,
    assert_link_demands_consistent,
    brute_force_best_split,
)
from tests.conftest import build_star_tree


class TestAdaptedTIVC:
    def test_produces_valid_allocation(self, tiny_tree, homogeneous_request):
        state = NetworkState(tiny_tree)
        allocation = AdaptedTIVCAllocator().allocate(state, homogeneous_request, 1)
        assert allocation is not None
        assert_allocation_valid(state, allocation)
        assert_link_demands_consistent(tiny_tree, allocation)

    def test_same_feasibility_as_dp(self, tiny_tree):
        # The two algorithms share the validity condition (Eq. 4); they must
        # agree on accept/reject for a fresh datacenter.
        for n_vms, mean, std in [(4, 100, 50), (16, 300, 100), (8, 900, 200), (70, 10, 1)]:
            request = HomogeneousSVC(n_vms=n_vms, mean=float(mean), std=float(std))
            dp = SVCHomogeneousAllocator().allocate(NetworkState(tiny_tree), request, 1)
            tivc = AdaptedTIVCAllocator().allocate(NetworkState(tiny_tree), request, 1)
            assert (dp is None) == (tivc is None)

    def test_never_beats_dp_objective(self, tiny_tree):
        # On identical state, TIVC's realized max occupancy is >= the DP's
        # (mean=400/std=200 is genuinely infeasible for both: machines can
        # carry one such VM but ToR/agg links cannot carry the splits).
        compared = 0
        for seed_mean in (100.0, 250.0, 400.0):
            request = HomogeneousSVC(n_vms=10, mean=seed_mean, std=seed_mean / 2)
            dp = SVCHomogeneousAllocator().allocate(NetworkState(tiny_tree), request, 1)
            tivc = AdaptedTIVCAllocator().allocate(NetworkState(tiny_tree), request, 1)
            assert (dp is None) == (tivc is None)
            if dp is not None:
                assert dp.max_occupancy <= tivc.max_occupancy + 1e-9
                compared += 1
        assert compared >= 2

    def test_suboptimal_case_exists(self):
        # Certify the motivating claim of Section IV-C: there are inputs
        # where the feasibility-only search returns a worse occupancy.
        # Asymmetric capacities: first fit leaves 5 VMs behind the thin
        # 30-unit link (occ 1/3) where the optimum is 0.2.
        tree = build_star_tree(slots=(5, 5, 5), capacities=(30.0, 50.0, 200.0))
        state = NetworkState(tree, epsilon=0.05)
        request = DeterministicVC(n_vms=6, bandwidth=10.0)
        tivc = AdaptedTIVCAllocator().allocate(state, request, 1)
        best = brute_force_best_split(state, request, host=tree.root_id)
        assert best == pytest.approx(0.2)
        assert tivc.max_occupancy > best + 0.05  # picks a non-optimal split

    def test_handles_deterministic_requests(self, tiny_tree):
        state = NetworkState(tiny_tree)
        allocation = AdaptedTIVCAllocator().allocate(
            state, DeterministicVC(n_vms=10, bandwidth=100.0), 1
        )
        assert allocation is not None
        assert_allocation_valid(state, allocation)

    def test_rejects_heterogeneous(self, tiny_tree):
        state = NetworkState(tiny_tree)
        with pytest.raises(TypeError):
            AdaptedTIVCAllocator().allocate(state, HeterogeneousSVC.uniform(2, 1.0, 0.0), 1)


class TestOktopus:
    def test_supports_only_deterministic(self):
        allocator = OktopusAllocator()
        assert allocator.supports(DeterministicVC(n_vms=1, bandwidth=1.0))
        assert not allocator.supports(HomogeneousSVC(n_vms=1, mean=1.0, std=0.0))

    def test_allocates_virtual_cluster(self, tiny_tree):
        state = NetworkState(tiny_tree)
        allocation = OktopusAllocator().allocate(
            state, DeterministicVC(n_vms=12, bandwidth=150.0), 1
        )
        assert allocation is not None
        assert_allocation_valid(state, allocation)
        assert sum(allocation.machine_counts.values()) == 12

    def test_reservation_sums_respect_capacity(self, tiny_tree):
        # Fill with VC tenants; total deterministic reservation per link must
        # stay below capacity (classical Oktopus invariant).
        state = NetworkState(tiny_tree)
        allocator = OktopusAllocator()
        count = 0
        while count < 60:
            allocation = allocator.allocate(
                state, DeterministicVC(n_vms=6, bandwidth=220.0), count + 1
            )
            if allocation is None:
                break
            state.commit(allocation)
            count += 1
        assert count >= 2
        for link_state in state.links.values():
            assert link_state.deterministic_total < link_state.capacity
