"""GlobalMinMaxAllocator (locality ablation) behaviour."""

import pytest

from repro.abstractions import DeterministicVC, HomogeneousSVC
from repro.allocation import GlobalMinMaxAllocator, SVCHomogeneousAllocator
from repro.network import NetworkState
from tests.allocation.helpers import assert_allocation_valid, brute_force_best_split
from tests.conftest import build_star_tree


class TestGlobalMinMax:
    def test_hosts_at_root(self, tiny_tree):
        state = NetworkState(tiny_tree)
        allocation = GlobalMinMaxAllocator().allocate(
            state, HomogeneousSVC(n_vms=4, mean=100.0, std=30.0), 1
        )
        assert allocation.host_node == tiny_tree.root_id

    def test_valid_allocation(self, tiny_tree, homogeneous_request):
        state = NetworkState(tiny_tree)
        allocation = GlobalMinMaxAllocator().allocate(state, homogeneous_request, 1)
        assert allocation is not None
        assert_allocation_valid(state, allocation)

    def test_matches_global_brute_force(self):
        tree = build_star_tree(slots=(5, 5, 5), capacities=(30.0, 50.0, 200.0))
        state = NetworkState(tree, epsilon=0.05)
        request = DeterministicVC(n_vms=6, bandwidth=10.0)
        allocation = GlobalMinMaxAllocator().allocate(state, request, 1)
        best = brute_force_best_split(state, request, host=tree.root_id)
        assert allocation.max_occupancy == pytest.approx(best, abs=1e-9)

    def test_objective_never_above_localized(self, tiny_tree):
        # Dropping the locality constraint can only improve (or tie) the
        # immediate min-max objective — that is exactly the trade-off.
        for mean in (100.0, 250.0):
            request = HomogeneousSVC(n_vms=10, mean=mean, std=mean / 3)
            localized = SVCHomogeneousAllocator().allocate(
                NetworkState(tiny_tree), request, 1
            )
            global_alloc = GlobalMinMaxAllocator().allocate(
                NetworkState(tiny_tree), request, 1
            )
            assert global_alloc.max_occupancy <= localized.max_occupancy + 1e-9

    def test_same_feasibility_as_localized(self, tiny_tree):
        for n_vms, mean in ((70, 10.0), (8, 900.0), (16, 300.0)):
            request = HomogeneousSVC(n_vms=n_vms, mean=mean, std=mean / 2)
            localized = SVCHomogeneousAllocator().allocate(
                NetworkState(tiny_tree), request, 1
            )
            global_alloc = GlobalMinMaxAllocator().allocate(
                NetworkState(tiny_tree), request, 1
            )
            assert (localized is None) == (global_alloc is None)

    def test_spreads_more_than_localized(self, tiny_tree):
        # A job the localized DP squeezes into one rack gets spread wider by
        # the global variant whenever that flattens occupancy.
        request = HomogeneousSVC(n_vms=12, mean=300.0, std=100.0)
        localized = SVCHomogeneousAllocator().allocate(NetworkState(tiny_tree), request, 1)
        global_alloc = GlobalMinMaxAllocator().allocate(NetworkState(tiny_tree), request, 1)
        level = tiny_tree.node(localized.host_node).level
        assert level <= tiny_tree.node(global_alloc.host_node).level
