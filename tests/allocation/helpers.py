"""Shared verification helpers for the allocator test modules."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.abstractions import VirtualClusterRequest
from repro.allocation.base import Allocation
from repro.allocation.demand_model import homogeneous_split_moments
from repro.network import NetworkState
from repro.topology.tree import Tree


def assert_allocation_valid(state: NetworkState, allocation: Allocation) -> None:
    """Check the two validity constraints of Section IV-B on a *candidate*.

    (1) Every machine has enough empty slots; (2) every link keeps
    ``O_L < 1`` after adding the allocation's demand.  The allocation must
    not be committed yet.
    """
    for machine_id, count in allocation.machine_counts.items():
        free = state.free_slots(machine_id)
        assert count <= free, f"machine {machine_id}: {count} VMs > {free} free slots"
    for link_id, demand in allocation.link_demands.items():
        link_state = state.links[link_id]
        if allocation.deterministic:
            occ = link_state.occupancy_with(state.risk_c, extra_deterministic=demand.mean)
        else:
            occ = link_state.occupancy_with(
                state.risk_c, extra_mean=demand.mean, extra_var=demand.variance
            )
        assert occ < 1.0, f"link {link_id} would reach occupancy {occ:.4f}"


def assert_link_demands_consistent(
    tree: Tree, allocation: Allocation
) -> None:
    """The recorded per-link demands must match the committed placement.

    For homogeneous requests, recompute each crossed link's split size from
    ``machine_counts`` and compare against the Lemma-1 moments.
    """
    request = allocation.request
    if not request.is_homogeneous:
        return
    mu, var = homogeneous_split_moments(request)
    n = request.n_vms
    below: Dict[int, int] = {}
    for machine_id, count in allocation.machine_counts.items():
        node_id = machine_id
        while node_id != allocation.host_node:
            below[node_id] = below.get(node_id, 0) + count
            node_id = tree.node(node_id).parent
    expected_links = {node for node, count in below.items() if 0 < count < n}
    assert expected_links == set(allocation.link_demands)
    for node_id in expected_links:
        demand = allocation.link_demands[node_id]
        count = below[node_id]
        assert abs(demand.mean - mu[count]) < 1e-6
        assert abs(demand.variance - var[count]) < 1e-6


def brute_force_best_split(
    state: NetworkState,
    request: VirtualClusterRequest,
    host: Optional[int] = None,
) -> Optional[float]:
    """Optimal min-max occupancy over machine-count placements.

    Exhaustive reference for small trees: enumerates every composition of
    ``N`` over the machines (bounded by free slots), evaluates the maximum
    post-allocation occupancy, and returns the minimum over valid placements
    (None when no placement is valid).  With ``host`` given, placements are
    restricted to machines under that subtree and the objective to its links
    — the exact domain of ``Opt(T_host, N)`` in Algorithm 1.

    Only feasible for a handful of machines; used to certify the DP.
    """
    tree = state.tree
    if host is None:
        host = tree.root_id
    machines = list(tree.machines_under(host))
    links = [link.link_id for link in tree.links_under(host)]
    mu, var = homogeneous_split_moments(request)
    n = request.n_vms
    limits = [min(state.free_slots(m), n) for m in machines]
    best: Optional[float] = None
    for counts in _compositions(n, limits):
        placement = {m: c for m, c in zip(machines, counts) if c > 0}
        occ = _max_occupancy_of_placement(
            state, placement, mu, var, n, request.is_deterministic, host, links
        )
        if occ is None:
            continue
        if best is None or occ < best:
            best = occ
    return best


def _compositions(total: int, limits) -> Iterable[Tuple[int, ...]]:
    if not limits:
        if total == 0:
            yield ()
        return
    head, rest = limits[0], limits[1:]
    for take in range(min(head, total) + 1):
        for tail in _compositions(total - take, rest):
            yield (take,) + tail


def _max_occupancy_of_placement(
    state: NetworkState, placement, mu, var, n, deterministic, host, links
) -> Optional[float]:
    """Max post-allocation occupancy over the host's links; None if any >= 1."""
    tree = state.tree
    below: Dict[int, int] = {}
    for machine_id, count in placement.items():
        node_id = machine_id
        while node_id != host:
            below[node_id] = below.get(node_id, 0) + count
            node_id = tree.node(node_id).parent
    worst = 0.0
    for link_id in links:
        count = below.get(link_id, 0)
        link_state = state.links[link_id]
        extra_mean = float(mu[count]) if 0 < count < n else 0.0
        extra_var = float(var[count]) if 0 < count < n else 0.0
        if deterministic:
            occ = link_state.occupancy_with(state.risk_c, extra_deterministic=extra_mean)
        else:
            occ = link_state.occupancy_with(
                state.risk_c, extra_mean=extra_mean, extra_var=extra_var
            )
        if occ >= 1.0:
            return None
        if occ > worst:
            worst = occ
    return worst
