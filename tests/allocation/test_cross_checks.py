"""Cross-algorithm consistency checks on randomized small instances."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.abstractions import HeterogeneousSVC, HomogeneousSVC
from repro.allocation import (
    SVCHeterogeneousAllocator,
    SVCHeterogeneousExactAllocator,
    SVCHomogeneousAllocator,
)
from repro.network import NetworkState
from repro.stochastic import Normal
from tests.allocation.helpers import brute_force_best_split
from tests.conftest import build_star_tree

slow_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def small_het_requests(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    demands = tuple(
        Normal(
            draw(st.floats(min_value=10.0, max_value=400.0)),
            draw(st.floats(min_value=0.0, max_value=120.0)),
        )
        for _ in range(n)
    )
    return HeterogeneousSVC(n_vms=n, demands=demands)


@st.composite
def star_states(draw):
    machines = draw(st.integers(min_value=2, max_value=3))
    slots = draw(st.integers(min_value=2, max_value=4))
    capacity = draw(st.floats(min_value=300.0, max_value=2000.0))
    tree = build_star_tree(slots=(slots,) * machines, capacities=(capacity,) * machines)
    return NetworkState(tree, epsilon=0.05)


class TestExactVsHeuristic:
    @given(state=star_states(), request=small_het_requests())
    @slow_settings
    def test_heuristic_never_beats_exact(self, state, request):
        exact = SVCHeterogeneousExactAllocator().allocate(state, request, 1)
        heuristic = SVCHeterogeneousAllocator().allocate(state, request, 2)
        if heuristic is not None:
            # Anything the substring space can do, the subset space can too.
            assert exact is not None
            if state.tree.node(heuristic.host_node).level >= state.tree.node(
                exact.host_node
            ).level:
                assert exact.max_occupancy <= heuristic.max_occupancy + 1e-9

    @given(state=star_states(), request=small_het_requests())
    @slow_settings
    def test_exact_feasibility_dominates(self, state, request):
        exact = SVCHeterogeneousExactAllocator().allocate(state, request, 1)
        heuristic = SVCHeterogeneousAllocator().allocate(state, request, 2)
        if exact is None:
            assert heuristic is None


class TestHomogeneousEmbedding:
    @given(
        n=st.integers(min_value=2, max_value=8),
        mean=st.floats(min_value=10.0, max_value=300.0),
        rel_std=st.floats(min_value=0.0, max_value=1.0),
    )
    @slow_settings
    def test_uniform_het_equals_homogeneous_objective(self, n, mean, rel_std):
        # A heterogeneous request with identical demands is semantically the
        # homogeneous request; the exact DP must reach the homogeneous DP's
        # optimum (both search all placements on a star).
        tree = build_star_tree(slots=(4, 4, 4), capacities=(1500.0,) * 3)
        state = NetworkState(tree, epsilon=0.05)
        het = HeterogeneousSVC.uniform(n, mean=mean, std=rel_std * mean)
        homo = HomogeneousSVC(n_vms=n, mean=mean, std=rel_std * mean)
        exact = SVCHeterogeneousExactAllocator().allocate(state, het, 1)
        dp = SVCHomogeneousAllocator().allocate(state, homo, 2)
        assert (exact is None) == (dp is None)
        if exact is not None:
            if state.tree.node(exact.host_node).level == state.tree.node(dp.host_node).level:
                assert exact.max_occupancy == pytest.approx(dp.max_occupancy, abs=1e-9)

    @given(
        n=st.integers(min_value=2, max_value=7),
        mean=st.floats(min_value=5.0, max_value=40.0),
        rel_std=st.floats(min_value=0.0, max_value=1.0),
    )
    @slow_settings
    def test_dp_equals_brute_force_randomized(self, n, mean, rel_std):
        tree = build_star_tree(slots=(3, 3, 3), capacities=(100.0, 150.0, 200.0))
        state = NetworkState(tree, epsilon=0.05)
        request = HomogeneousSVC(n_vms=n, mean=mean, std=rel_std * mean)
        allocation = SVCHomogeneousAllocator().allocate(state, request, 1)
        if allocation is None or not state.tree.node(allocation.host_node).is_root:
            return  # single-machine hosts trivially optimal; root case is the test
        best = brute_force_best_split(state, request, host=tree.root_id)
        assert best is not None
        assert allocation.max_occupancy == pytest.approx(best, abs=1e-9)
