"""Allocation record validation and placement expansion."""

import pytest

from repro.abstractions import HeterogeneousSVC, HomogeneousSVC
from repro.allocation.base import Allocation, expand_vm_placement


def homogeneous_allocation(counts, n=None):
    n = n if n is not None else sum(counts.values())
    return Allocation(
        request=HomogeneousSVC(n_vms=n, mean=10.0, std=1.0),
        request_id=1,
        host_node=99,
        machine_counts=counts,
        link_demands={},
    )


class TestAllocationValidation:
    def test_counts_must_cover_request(self):
        with pytest.raises(ValueError):
            homogeneous_allocation({1: 2}, n=5)

    def test_counts_must_be_positive(self):
        with pytest.raises(ValueError):
            Allocation(
                request=HomogeneousSVC(n_vms=2, mean=1.0, std=0.0),
                request_id=1,
                host_node=0,
                machine_counts={1: 2, 2: 0},
                link_demands={},
            )

    def test_vm_identities_must_match_counts(self):
        request = HeterogeneousSVC.uniform(3, mean=1.0, std=0.0)
        with pytest.raises(ValueError):
            Allocation(
                request=request,
                request_id=1,
                host_node=0,
                machine_counts={1: 2, 2: 1},
                machine_vms={1: (0,), 2: (1, 2)},  # count mismatch on machine 1
                link_demands={},
            )

    def test_deterministic_flag_follows_request(self):
        from repro.abstractions import DeterministicVC

        alloc = Allocation(
            request=DeterministicVC(n_vms=1, bandwidth=5.0),
            request_id=1,
            host_node=0,
            machine_counts={3: 1},
            link_demands={},
        )
        assert alloc.deterministic
        assert not homogeneous_allocation({3: 1}).deterministic

    def test_num_machines(self):
        assert homogeneous_allocation({1: 2, 2: 3}).num_machines == 2


class TestExpandVmPlacement:
    def test_homogeneous_expansion_orders_by_machine(self):
        alloc = homogeneous_allocation({5: 2, 3: 1})
        placement = expand_vm_placement(alloc)
        assert placement == [3, 5, 5]

    def test_heterogeneous_expansion_honors_identity(self):
        request = HeterogeneousSVC.uniform(3, mean=1.0, std=0.0)
        alloc = Allocation(
            request=request,
            request_id=1,
            host_node=0,
            machine_counts={7: 1, 8: 2},
            machine_vms={7: (1,), 8: (0, 2)},
            link_demands={},
        )
        placement = expand_vm_placement(alloc)
        assert placement == [8, 7, 8]

    def test_incomplete_identity_detected(self):
        request = HeterogeneousSVC.uniform(2, mean=1.0, std=0.0)
        alloc = Allocation(
            request=request,
            request_id=1,
            host_node=0,
            machine_counts={7: 1, 8: 1},
            machine_vms={7: (0,), 8: (0,)},  # VM 1 never placed
            link_demands={},
        )
        with pytest.raises(ValueError):
            expand_vm_placement(alloc)
