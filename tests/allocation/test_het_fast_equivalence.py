"""The heterogeneous fast path must be *decision-identical* to its reference.

Same contract the homogeneous DP is pinned by in
``test_fast_path_equivalence.py``: the optimized substring heuristic
(memoized segment tables, shared machine/vertex/effective tables, banded
(min, max)-matrix combine) claims bit-for-bit equality with the
straight-line reference — host node, per-machine VM placement, reported
``max_occupancy``, and the link-state moments left behind after a full
admit/release trace.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.abstractions import HeterogeneousSVC
from repro.allocation.svc_het_heuristic import SVCHeterogeneousAllocator
from repro.network import NetworkState
from repro.stochastic import Normal
from repro.topology import DatacenterSpec, build_datacenter


def _record_het_trace(seed: int, steps: int, max_n: int):
    """A reproducible heterogeneous request/release trace."""
    rng = np.random.default_rng(seed)
    trace = []
    for _ in range(steps):
        n = int(np.clip(round(rng.exponential(max_n / 4)), 2, max_n))
        demands = tuple(
            Normal(
                float(rng.choice([100.0, 200.0, 300.0, 400.0, 500.0])),
                float(rng.uniform(0.0, 1.0)) * 100.0,
            )
            for _ in range(n)
        )
        trace.append((HeterogeneousSVC(n_vms=n, demands=demands), float(rng.random())))
    return trace


def _replay(trace, tree, epsilon=0.05):
    """Drive fast and reference allocators, asserting identical decisions."""
    fast_state = NetworkState(tree, epsilon=epsilon)
    seed_state = NetworkState(tree, epsilon=epsilon)
    fast = SVCHeterogeneousAllocator()
    seed = SVCHeterogeneousAllocator(fast=False)
    active = []
    decisions = 0
    for request_id, (request, release_draw) in enumerate(trace, start=1):
        fast_alloc = fast.allocate(fast_state, request, request_id)
        seed_alloc = seed.allocate(seed_state, request, request_id)
        assert (fast_alloc is None) == (seed_alloc is None), (
            f"request {request_id}: fast={fast_alloc is not None} "
            f"seed={seed_alloc is not None}"
        )
        if fast_alloc is not None:
            assert fast_alloc.host_node == seed_alloc.host_node
            # The exact VM-to-machine assignment, not just the counts:
            assert fast_alloc.machine_vms == seed_alloc.machine_vms
            # Bit-identical, not approximately equal:
            assert fast_alloc.max_occupancy == seed_alloc.max_occupancy
            fast_state.commit(fast_alloc)
            seed_state.commit(seed_alloc)
            active.append((fast_alloc, seed_alloc))
            decisions += 1
        if active and release_draw < 0.3:
            index = int(release_draw * 1e6) % len(active)
            fast_alloc, seed_alloc = active.pop(index)
            fast_state.release(fast_alloc)
            seed_state.release(seed_alloc)
    for link_id, fast_link in fast_state.links.items():
        seed_link = seed_state.links[link_id]
        assert fast_link.mean_total == seed_link.mean_total
        assert fast_link.var_total == seed_link.var_total
        assert fast_link.deterministic_total == seed_link.deterministic_total
    return decisions


class TestRecordedTraceEquivalence:
    def test_identical_on_recorded_trace(self, tiny_tree):
        placed = _replay(_record_het_trace(seed=19, steps=90, max_n=24), tiny_tree)
        assert placed > 10  # the trace must actually exercise placements

    def test_identical_on_larger_tree(self):
        tree = build_datacenter(DatacenterSpec(machines_per_rack=8, racks_per_pod=3, pods=3))
        placed = _replay(_record_het_trace(seed=5, steps=50, max_n=40), tree)
        assert placed > 10

    def test_seed_allocator_reports_its_name(self):
        assert SVCHeterogeneousAllocator().name == "svc-het"
        assert SVCHeterogeneousAllocator(fast=False).name == "svc-het-seed"


class TestRandomTreeAgreement:
    """Hypothesis: fast and reference agree on arbitrary topologies."""

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        machines_per_rack=st.integers(min_value=1, max_value=4),
        racks=st.integers(min_value=1, max_value=3),
        pods=st.integers(min_value=1, max_value=2),
        n_vms=st.integers(min_value=2, max_value=14),
        base=st.sampled_from([50.0, 150.0, 400.0]),
        rho=st.floats(min_value=0.0, max_value=1.0),
        oversub=st.sampled_from([1.0, 2.0, 4.0]),
    )
    def test_decisions_agree(self, machines_per_rack, racks, pods, n_vms, base, rho, oversub):
        spec = DatacenterSpec(
            machines_per_rack=machines_per_rack,
            slots_per_machine=2,
            racks_per_pod=racks,
            pods=pods,
            machine_link_mbps=500.0,
            oversubscription=oversub,
        )
        tree = build_datacenter(spec)
        request = HeterogeneousSVC(
            n_vms=n_vms,
            demands=tuple(
                Normal(base * (1.0 + 0.1 * i), rho * base) for i in range(n_vms)
            ),
        )
        fast = SVCHeterogeneousAllocator().allocate(NetworkState(tree), request, 1)
        seed = SVCHeterogeneousAllocator(fast=False).allocate(NetworkState(tree), request, 1)
        assert (fast is None) == (seed is None)
        if fast is not None:
            assert fast.host_node == seed.host_node
            assert fast.machine_vms == seed.machine_vms
            assert fast.max_occupancy == seed.max_occupancy
