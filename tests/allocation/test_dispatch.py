"""Dispatching allocator: routing, defaults, error paths."""

import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.allocation import (
    DispatchingAllocator,
    FirstFitAllocator,
    OktopusAllocator,
    SVCHomogeneousAllocator,
    baseline_allocator,
    default_allocator,
)
from repro.network import NetworkState


class TestDispatch:
    def test_routes_by_support(self, tiny_tree):
        dispatch = default_allocator()
        state = NetworkState(tiny_tree)
        homo = dispatch.allocate(state, HomogeneousSVC(n_vms=4, mean=50.0, std=5.0), 1)
        het = dispatch.allocate(state, HeterogeneousSVC.uniform(4, mean=50.0, std=5.0), 2)
        det = dispatch.allocate(state, DeterministicVC(n_vms=4, bandwidth=50.0), 3)
        assert homo is not None and het is not None and det is not None
        assert het.machine_vms is not None
        assert homo.machine_vms is None

    def test_supports_union(self):
        dispatch = default_allocator()
        assert dispatch.supports(HomogeneousSVC(n_vms=1, mean=1.0, std=0.0))
        assert dispatch.supports(HeterogeneousSVC.uniform(1, mean=1.0, std=0.0))
        assert dispatch.supports(DeterministicVC(n_vms=1, bandwidth=1.0))

    def test_first_match_wins(self, tiny_tree):
        # Oktopus registered first grabs deterministic requests even though
        # the homogeneous DP also supports them.
        dispatch = DispatchingAllocator([OktopusAllocator(), SVCHomogeneousAllocator()])
        state = NetworkState(tiny_tree)
        allocation = dispatch.allocate(state, DeterministicVC(n_vms=4, bandwidth=10.0), 1)
        assert allocation is not None

    def test_unsupported_raises(self, tiny_tree):
        dispatch = DispatchingAllocator([OktopusAllocator()])
        state = NetworkState(tiny_tree)
        with pytest.raises(TypeError):
            dispatch.allocate(state, HomogeneousSVC(n_vms=1, mean=1.0, std=0.0), 1)

    def test_empty_registry_rejected(self):
        with pytest.raises(ValueError):
            DispatchingAllocator([])

    def test_baseline_uses_first_fit_for_heterogeneous(self, tiny_tree):
        dispatch = baseline_allocator()
        state = NetworkState(tiny_tree)
        request = HeterogeneousSVC.uniform(8, mean=50.0, std=5.0)
        allocation = dispatch.allocate(state, request, 1)
        # FF signature on light demands: machines packed full in tree order.
        ff = FirstFitAllocator().allocate(NetworkState(tiny_tree), request, 1)
        assert allocation.machine_counts == ff.machine_counts


class TestRejectionAttribution:
    def test_rejection_names_the_refusing_allocator(self, tiny_tree):
        dispatch = default_allocator()
        state = NetworkState(tiny_tree)
        assert dispatch.last_rejected_by is None
        # More VMs than the tiny tree has slots: the DP must refuse.
        rejected = dispatch.allocate(
            state, HomogeneousSVC(n_vms=tiny_tree.total_slots + 1, mean=1.0, std=0.0), 1
        )
        assert rejected is None
        assert dispatch.last_rejected_by == "svc-dp"
        assert dispatch.rejection_counts == {"svc-dp": 1}

    def test_success_resets_attribution(self, tiny_tree):
        dispatch = default_allocator()
        state = NetworkState(tiny_tree)
        dispatch.allocate(
            state, HomogeneousSVC(n_vms=tiny_tree.total_slots + 1, mean=1.0, std=0.0), 1
        )
        assert dispatch.last_rejected_by == "svc-dp"
        admitted = dispatch.allocate(
            state, HomogeneousSVC(n_vms=2, mean=10.0, std=1.0), 2
        )
        assert admitted is not None
        assert dispatch.last_rejected_by is None
        # The lifetime tally is not reset by success.
        assert dispatch.rejection_counts == {"svc-dp": 1}

    def test_counts_accumulate_per_allocator(self, tiny_tree):
        dispatch = default_allocator()
        state = NetworkState(tiny_tree)
        too_big = tiny_tree.total_slots + 1
        dispatch.allocate(state, HomogeneousSVC(n_vms=too_big, mean=1.0, std=0.0), 1)
        dispatch.allocate(state, HomogeneousSVC(n_vms=too_big, mean=1.0, std=0.0), 2)
        dispatch.allocate(state, HeterogeneousSVC.uniform(too_big, mean=1.0, std=0.0), 3)
        assert dispatch.rejection_counts == {"svc-dp": 2, "svc-het": 1}
        assert dispatch.last_rejected_by == "svc-het"
