"""Dispatching allocator: routing, defaults, error paths."""

import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.allocation import (
    DispatchingAllocator,
    FirstFitAllocator,
    OktopusAllocator,
    SVCHomogeneousAllocator,
    baseline_allocator,
    default_allocator,
)
from repro.network import NetworkState


class TestDispatch:
    def test_routes_by_support(self, tiny_tree):
        dispatch = default_allocator()
        state = NetworkState(tiny_tree)
        homo = dispatch.allocate(state, HomogeneousSVC(n_vms=4, mean=50.0, std=5.0), 1)
        het = dispatch.allocate(state, HeterogeneousSVC.uniform(4, mean=50.0, std=5.0), 2)
        det = dispatch.allocate(state, DeterministicVC(n_vms=4, bandwidth=50.0), 3)
        assert homo is not None and het is not None and det is not None
        assert het.machine_vms is not None
        assert homo.machine_vms is None

    def test_supports_union(self):
        dispatch = default_allocator()
        assert dispatch.supports(HomogeneousSVC(n_vms=1, mean=1.0, std=0.0))
        assert dispatch.supports(HeterogeneousSVC.uniform(1, mean=1.0, std=0.0))
        assert dispatch.supports(DeterministicVC(n_vms=1, bandwidth=1.0))

    def test_first_match_wins(self, tiny_tree):
        # Oktopus registered first grabs deterministic requests even though
        # the homogeneous DP also supports them.
        dispatch = DispatchingAllocator([OktopusAllocator(), SVCHomogeneousAllocator()])
        state = NetworkState(tiny_tree)
        allocation = dispatch.allocate(state, DeterministicVC(n_vms=4, bandwidth=10.0), 1)
        assert allocation is not None

    def test_unsupported_raises(self, tiny_tree):
        dispatch = DispatchingAllocator([OktopusAllocator()])
        state = NetworkState(tiny_tree)
        with pytest.raises(TypeError):
            dispatch.allocate(state, HomogeneousSVC(n_vms=1, mean=1.0, std=0.0), 1)

    def test_empty_registry_rejected(self):
        with pytest.raises(ValueError):
            DispatchingAllocator([])

    def test_baseline_uses_first_fit_for_heterogeneous(self, tiny_tree):
        dispatch = baseline_allocator()
        state = NetworkState(tiny_tree)
        request = HeterogeneousSVC.uniform(8, mean=50.0, std=5.0)
        allocation = dispatch.allocate(state, request, 1)
        # FF signature on light demands: machines packed full in tree order.
        ff = FirstFitAllocator().allocate(NetworkState(tiny_tree), request, 1)
        assert allocation.machine_counts == ff.machine_counts
