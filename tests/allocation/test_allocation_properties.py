"""Property-based allocation tests: invariants over random workloads."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.allocation import (
    AdaptedTIVCAllocator,
    FirstFitAllocator,
    SVCHeterogeneousAllocator,
    SVCHomogeneousAllocator,
)
from repro.network import NetworkState
from repro.stochastic import Normal
from repro.topology import TINY_SPEC, build_datacenter
from tests.allocation.helpers import (
    assert_allocation_valid,
    assert_link_demands_consistent,
)

TREE = build_datacenter(TINY_SPEC)

homogeneous_requests = st.builds(
    HomogeneousSVC,
    n_vms=st.integers(min_value=1, max_value=24),
    mean=st.floats(min_value=1.0, max_value=600.0),
    std=st.floats(min_value=0.0, max_value=300.0),
)

deterministic_requests = st.builds(
    DeterministicVC,
    n_vms=st.integers(min_value=1, max_value=24),
    bandwidth=st.floats(min_value=0.0, max_value=800.0),
)


@st.composite
def heterogeneous_requests(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    demands = tuple(
        Normal(
            draw(st.floats(min_value=1.0, max_value=500.0)),
            draw(st.floats(min_value=0.0, max_value=200.0)),
        )
        for _ in range(n)
    )
    return HeterogeneousSVC(n_vms=n, demands=demands)


common_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestHomogeneousInvariants:
    @given(request=st.one_of(homogeneous_requests, deterministic_requests))
    @common_settings
    def test_allocation_valid_on_empty_network(self, request):
        state = NetworkState(TREE, epsilon=0.05)
        allocation = SVCHomogeneousAllocator().allocate(state, request, 1)
        if allocation is None:
            return
        assert sum(allocation.machine_counts.values()) == request.n_vms
        assert_allocation_valid(state, allocation)
        assert_link_demands_consistent(TREE, allocation)

    @given(request=homogeneous_requests)
    @common_settings
    def test_commit_release_is_identity(self, request):
        state = NetworkState(TREE, epsilon=0.05)
        allocation = SVCHomogeneousAllocator().allocate(state, request, 1)
        if allocation is None:
            return
        state.commit(allocation)
        state.release(allocation)
        assert state.is_pristine()

    @given(request=homogeneous_requests)
    @common_settings
    def test_dp_objective_never_above_tivc(self, request):
        dp = SVCHomogeneousAllocator().allocate(NetworkState(TREE), request, 1)
        tivc = AdaptedTIVCAllocator().allocate(NetworkState(TREE), request, 1)
        assert (dp is None) == (tivc is None)
        if dp is not None:
            assert dp.max_occupancy <= tivc.max_occupancy + 1e-9

    @given(
        requests=st.lists(
            st.one_of(homogeneous_requests, deterministic_requests),
            min_size=1,
            max_size=6,
        )
    )
    @common_settings
    def test_sequential_admission_keeps_guarantee(self, requests):
        state = NetworkState(TREE, epsilon=0.05)
        allocator = SVCHomogeneousAllocator()
        committed = []
        for request_id, request in enumerate(requests, start=1):
            allocation = allocator.allocate(state, request, request_id)
            if allocation is None:
                continue
            assert_allocation_valid(state, allocation)
            state.commit(allocation)
            committed.append(allocation)
            assert state.max_occupancy() < 1.0
        for allocation in reversed(committed):
            state.release(allocation)
        assert state.is_pristine()


class TestHeterogeneousInvariants:
    @given(request=heterogeneous_requests())
    @common_settings
    def test_heuristic_allocation_valid(self, request):
        state = NetworkState(TREE, epsilon=0.05)
        allocation = SVCHeterogeneousAllocator().allocate(state, request, 1)
        if allocation is None:
            return
        placed = sorted(vm for vms in allocation.machine_vms.values() for vm in vms)
        assert placed == list(range(request.n_vms))
        assert_allocation_valid(state, allocation)
        state.commit(allocation)
        assert state.max_occupancy() < 1.0
        state.release(allocation)
        assert state.is_pristine()

    @given(request=heterogeneous_requests())
    @common_settings
    def test_first_fit_never_beats_heuristic(self, request):
        ff = FirstFitAllocator().allocate(NetworkState(TREE), request, 1)
        heuristic = SVCHeterogeneousAllocator().allocate(NetworkState(TREE), request, 1)
        if ff is None:
            return  # FF is incomplete; the heuristic may still succeed.
        assert heuristic is not None, "heuristic must dominate FF feasibility"
        # The heuristic's primary criterion is the lowest-level subtree; it
        # only optimizes occupancy within that level, so the objective
        # comparison is meaningful only when it did not pick a lower host.
        ff_level = TREE.node(ff.host_node).level
        heuristic_level = TREE.node(heuristic.host_node).level
        if heuristic_level >= ff_level:
            assert heuristic.max_occupancy <= ff.max_occupancy + 1e-9

    @given(request=heterogeneous_requests())
    @common_settings
    def test_first_fit_allocation_valid(self, request):
        state = NetworkState(TREE, epsilon=0.05)
        allocation = FirstFitAllocator().allocate(state, request, 1)
        if allocation is None:
            return
        assert_allocation_valid(state, allocation)
