"""Core-link ledger: Eq. (6) occupancy, two-phase transitions, TTLs."""

import pytest

from repro.cluster.ledger import CoreDemand, CoreLinkLedger, LedgerError
from repro.cluster.partition import ClusterPartition
from repro.topology.builder import TINY_SPEC


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture()
def setup():
    partition = ClusterPartition.build(TINY_SPEC, 2)
    clock = FakeClock()
    ledger = CoreLinkLedger(
        partition.tree,
        partition.core_link_ids,
        epsilon=0.05,
        reserve_ttl_s=10.0,
        clock=clock,
    )
    return partition, ledger, clock


def det(fraction, capacity):
    return CoreDemand(deterministic=fraction * capacity)


class TestReserveCommit:
    def test_reservation_holds_bandwidth(self, setup):
        partition, ledger, _clock = setup
        link = partition.core_link_ids[0]
        capacity = partition.tree.link(link).capacity
        assert ledger.reserve(1, {link: det(0.4, capacity)})
        assert ledger.pending_reservations == 1
        assert ledger.occupancy_of(link) == pytest.approx(0.4)
        # A second reservation that would push O_L to 1 is denied.
        assert not ledger.reserve(2, {link: det(0.7, capacity)})
        assert ledger.occupancy_of(link) == pytest.approx(0.4)

    def test_commit_moves_to_committed(self, setup):
        partition, ledger, _clock = setup
        link = partition.core_link_ids[0]
        capacity = partition.tree.link(link).capacity
        ledger.reserve(1, {link: det(0.3, capacity)})
        ledger.commit(1)
        assert ledger.pending_reservations == 0
        assert ledger.is_committed(1)
        assert ledger.occupancy_of(link) == pytest.approx(0.3)

    def test_commit_without_reservation_raises(self, setup):
        _partition, ledger, _clock = setup
        with pytest.raises(LedgerError):
            ledger.commit(7)

    def test_abort_frees_everything(self, setup):
        partition, ledger, _clock = setup
        link = partition.core_link_ids[0]
        capacity = partition.tree.link(link).capacity
        ledger.reserve(1, {link: det(0.5, capacity)})
        assert ledger.abort(1)
        assert not ledger.abort(1)  # idempotent
        assert ledger.occupancy_of(link) == 0.0

    def test_release_is_exact_zero_after_drain(self, setup):
        partition, ledger, _clock = setup
        link = partition.core_link_ids[1]
        capacity = partition.tree.link(link).capacity
        ledger.reserve(1, {link: CoreDemand(mean=0.1 * capacity, variance=9.0)})
        ledger.commit(1)
        assert ledger.release(1)
        assert not ledger.release(1)
        # Float-residue hygiene: an empty ledger reports exactly zero.
        assert ledger.occupancy_of(link) == 0.0
        assert ledger.max_occupancy() == 0.0

    def test_stochastic_occupancy_follows_eq6(self, setup):
        partition, ledger, _clock = setup
        link = partition.core_link_ids[0]
        capacity = partition.tree.link(link).capacity
        demand = CoreDemand(mean=0.2 * capacity, variance=(0.05 * capacity) ** 2)
        ledger.reserve(1, {link: demand})
        expected = (demand.mean + ledger.risk_c * (demand.variance ** 0.5)) / capacity
        assert ledger.occupancy_of(link) == pytest.approx(expected)


class TestIdempotency:
    def test_reserve_twice_holds_once(self, setup):
        partition, ledger, _clock = setup
        link = partition.core_link_ids[0]
        capacity = partition.tree.link(link).capacity
        assert ledger.reserve(1, {link: det(0.4, capacity)})
        assert ledger.reserve(1, {link: det(0.4, capacity)})  # retry
        assert ledger.occupancy_of(link) == pytest.approx(0.4)

    def test_reserve_after_commit_is_noop_success(self, setup):
        partition, ledger, _clock = setup
        link = partition.core_link_ids[0]
        capacity = partition.tree.link(link).capacity
        ledger.reserve(1, {link: det(0.4, capacity)})
        ledger.commit(1)
        assert ledger.reserve(1, {link: det(0.4, capacity)})
        assert ledger.occupancy_of(link) == pytest.approx(0.4)

    def test_commit_twice_counts_once(self, setup):
        partition, ledger, _clock = setup
        link = partition.core_link_ids[0]
        capacity = partition.tree.link(link).capacity
        ledger.reserve(1, {link: det(0.25, capacity)})
        ledger.commit(1)
        ledger.commit(1)
        assert ledger.occupancy_of(link) == pytest.approx(0.25)

    def test_commit_direct_idempotent(self, setup):
        partition, ledger, _clock = setup
        link = partition.core_link_ids[0]
        capacity = partition.tree.link(link).capacity
        ledger.commit_direct(5, {link: det(0.3, capacity)})
        ledger.commit_direct(5, {link: det(0.3, capacity)})
        assert ledger.occupancy_of(link) == pytest.approx(0.3)

    def test_commit_direct_supersedes_reservation(self, setup):
        partition, ledger, _clock = setup
        link = partition.core_link_ids[0]
        capacity = partition.tree.link(link).capacity
        ledger.reserve(5, {link: det(0.3, capacity)})
        ledger.commit_direct(5, {link: det(0.3, capacity)})
        assert ledger.pending_reservations == 0
        assert ledger.occupancy_of(link) == pytest.approx(0.3)


class TestTTL:
    def test_expired_reservation_is_dropped(self, setup):
        partition, ledger, clock = setup
        link = partition.core_link_ids[0]
        capacity = partition.tree.link(link).capacity
        ledger.reserve(1, {link: det(0.6, capacity)})
        assert not ledger.reserve(2, {link: det(0.6, capacity)})
        clock.now = 11.0  # past the 10s TTL
        assert ledger.expire() == [1]
        assert ledger.reserve(2, {link: det(0.6, capacity)})

    def test_reserve_itself_expires_stale_holds(self, setup):
        partition, ledger, clock = setup
        link = partition.core_link_ids[0]
        capacity = partition.tree.link(link).capacity
        ledger.reserve(1, {link: det(0.6, capacity)})
        clock.now = 30.0
        # No explicit expire() call: reserve sweeps on entry.
        assert ledger.reserve(2, {link: det(0.6, capacity)})
        assert not ledger.is_reserved(1)

    def test_commit_of_expired_reservation_raises(self, setup):
        partition, ledger, clock = setup
        link = partition.core_link_ids[0]
        capacity = partition.tree.link(link).capacity
        ledger.reserve(1, {link: det(0.2, capacity)})
        clock.now = 50.0
        ledger.expire()
        with pytest.raises(LedgerError):
            ledger.commit(1)


class TestValidation:
    def test_unknown_core_link_rejected(self, setup):
        _partition, ledger, _clock = setup
        with pytest.raises(LedgerError):
            ledger.reserve(1, {999_999: CoreDemand(deterministic=1.0)})

    def test_bad_ttl_rejected(self, setup):
        partition, _ledger, _clock = setup
        with pytest.raises(ValueError):
            CoreLinkLedger(partition.tree, partition.core_link_ids, reserve_ttl_s=0.0)
