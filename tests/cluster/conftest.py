"""Shared fixtures for the cluster tests."""

from __future__ import annotations

import pytest

from repro.faults.failpoints import FAILPOINTS


@pytest.fixture(autouse=True)
def clean_failpoints():
    """No test may leak armed failpoints into the rest of the suite."""
    FAILPOINTS.clear()
    FAILPOINTS.seed(0)
    yield
    FAILPOINTS.clear()
