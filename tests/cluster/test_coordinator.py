"""Coordinator: routing, two-phase cross-shard admits, WAL recovery.

The anchor test here is :class:`TestSingleShardEquivalence` — with K=1 the
coordinator must produce bit-identical decisions (and an identical final
``NetworkState``) to a plain :class:`AdmissionService` over the same tree,
which is what makes the cluster layer a safe drop-in above the existing
single-node stack.
"""

import random

import pytest

from repro.abstractions import HomogeneousSVC
from repro.cluster.coordinator import ClusterCoordinator, CoordinatorError
from repro.cluster.partition import ClusterPartition
from repro.cluster.shard import LocalShard
from repro.faults.failpoints import FAILPOINTS, FP_JOURNAL_WRITE
from repro.manager.network_manager import NetworkManager
from repro.service.codec import network_state_to_dict
from repro.service.concurrency import AdmissionService
from repro.topology.builder import TINY_SPEC, build_datacenter


def small_request(n_vms=3, mean=40.0, std=8.0):
    return HomogeneousSVC(n_vms=n_vms, mean=mean, std=std)


def build_cluster(num_shards, directory=None, **kwargs):
    partition = ClusterPartition.build(TINY_SPEC, num_shards)
    shards = [
        LocalShard(
            view,
            None if directory is None else directory / f"shard{view.shard_index}",
        )
        for view in partition.shards
    ]
    coordinator = ClusterCoordinator(
        partition,
        shards,
        directory=None if directory is None else directory / "coordinator",
        **kwargs,
    )
    return partition, shards, coordinator


def shutdown(coordinator, shards):
    coordinator.stop()
    for shard in shards:
        shard.close()


class TestLocalPath:
    def test_admit_then_release_leaves_clean_state(self):
        _partition, shards, coordinator = build_cluster(2)
        try:
            decision = coordinator.submit(small_request())
            assert decision["outcome"] == "admitted"
            assert decision["route"] == "local"
            gid = decision["request_id"]
            assert coordinator.active_tenancies == 1
            assert coordinator.fragments_of(gid) is not None
            assert coordinator.release(gid)
            assert not coordinator.release(gid)
            assert coordinator.active_tenancies == 0
            assert coordinator.replica.state.total_free_slots == (
                coordinator.replica.state.total_slots
            )
            for shard in shards:
                assert shard.stats()["active_tenancies"] == 0
        finally:
            shutdown(coordinator, shards)

    def test_idempotency_key_dedups(self):
        _partition, shards, coordinator = build_cluster(2)
        try:
            first = coordinator.submit(small_request(), idempotency_key="k1")
            again = coordinator.submit(small_request(), idempotency_key="k1")
            assert again["deduped"] is True
            assert again["request_id"] == first["request_id"]
            assert coordinator.active_tenancies == 1
        finally:
            shutdown(coordinator, shards)

    def test_oversize_request_rejected(self):
        _partition, shards, coordinator = build_cluster(2)
        try:
            total = coordinator.replica.state.total_slots
            decision = coordinator.submit(small_request(n_vms=total + 1, mean=1.0))
            assert decision["outcome"] == "rejected"
            assert decision["route"] == "reject"
            assert coordinator.active_tenancies == 0
        finally:
            shutdown(coordinator, shards)


class TestCrossShardTwoPhase:
    def test_large_tenant_spans_both_shards(self):
        # Each TINY shard holds 32 slots; 40 VMs force fragmentation.
        partition, shards, coordinator = build_cluster(2)
        try:
            decision = coordinator.submit(
                small_request(n_vms=40, mean=8.0, std=2.0)
            )
            assert decision["outcome"] == "admitted"
            assert decision["route"] in ("cross_shard", "spill")
            gid = decision["request_id"]
            fragments = coordinator.fragments_of(gid)
            assert sorted(fragments) == [0, 1]
            # Both shard journals carry their fragment as an active tenancy.
            assert all(
                shard.stats()["active_tenancies"] == 1 for shard in shards
            )
            # The ledger carries the committed core footprint...
            assert coordinator.ledger.is_committed(gid)
            assert 0.0 < coordinator.ledger.max_occupancy() < 1.0
            assert coordinator.ledger.pending_reservations == 0
            # ...and release drains every fragment plus the ledger entry.
            assert coordinator.release(gid)
            assert not coordinator.ledger.is_committed(gid)
            assert coordinator.ledger.max_occupancy() == 0.0
            assert all(
                shard.stats()["active_tenancies"] == 0 for shard in shards
            )
        finally:
            shutdown(coordinator, shards)


class TestWalFailures:
    def test_radmit_wal_failure_rolls_back_the_shard(self, tmp_path):
        partition = ClusterPartition.build(TINY_SPEC, 2)
        # In-memory shards: the only Journal in play is the coordinator WAL.
        shards = [LocalShard(view, None) for view in partition.shards]
        coordinator = ClusterCoordinator(partition, shards, directory=tmp_path)
        try:
            # Append #1 is the rintent, #2 the radmit: fail the radmit.
            FAILPOINTS.arm(FP_JOURNAL_WRITE, "error", every=2)
            with pytest.raises(CoordinatorError, match="rolled back"):
                coordinator.submit(small_request(), idempotency_key="k1")
            assert coordinator.active_tenancies == 0
            assert all(
                shard.stats()["active_tenancies"] == 0 for shard in shards
            )
            # The retry with the same key converges on a clean admission.
            FAILPOINTS.clear()
            decision = coordinator.submit(small_request(), idempotency_key="k1")
            assert decision["outcome"] == "admitted"
            assert decision.get("deduped") is None
        finally:
            shutdown(coordinator, shards)


class TestRecovery:
    def test_round_trip_restores_admissions_and_dedup(self, tmp_path):
        partition, shards, coordinator = build_cluster(2, directory=tmp_path)
        decisions = {}
        try:
            decisions["a"] = coordinator.submit(
                small_request(), idempotency_key="a"
            )
            decisions["big"] = coordinator.submit(
                small_request(n_vms=40, mean=8.0, std=2.0), idempotency_key="big"
            )
            decisions["reject"] = coordinator.submit(
                small_request(n_vms=500, mean=1.0), idempotency_key="reject"
            )
            assert decisions["a"]["outcome"] == "admitted"
            assert decisions["big"]["outcome"] == "admitted"
            assert decisions["reject"]["outcome"] == "rejected"
            fragments_before = {
                key: coordinator.fragments_of(decisions[key]["request_id"])
                for key in ("a", "big")
            }
        finally:
            coordinator.kill()
            for shard in shards:
                shard.close()

        # Restart shards first (daemons come back independently), then the
        # coordinator, which reconciles its WAL against the live shards.
        shards = [
            LocalShard(view, tmp_path / f"shard{view.shard_index}")
            for view in partition.shards
        ]
        coordinator = ClusterCoordinator(
            partition, shards, directory=tmp_path / "coordinator"
        )
        try:
            assert coordinator.active_tenancies == 2
            for key in ("a", "big"):
                gid = decisions[key]["request_id"]
                assert coordinator.fragments_of(gid) == fragments_before[key]
            assert coordinator.ledger.is_committed(decisions["big"]["request_id"])
            # Dedup survives the restart for every keyed decision.
            for key in ("a", "big", "reject"):
                replay = coordinator.submit(
                    small_request(), idempotency_key=key
                )
                assert replay["deduped"] is True
                assert replay["outcome"] == decisions[key]["outcome"]
                assert replay["request_id"] == decisions[key]["request_id"]
            # Releases still work on recovered tenancies.
            assert coordinator.release(decisions["big"]["request_id"])
            assert coordinator.active_tenancies == 1
            assert coordinator.ledger.max_occupancy() == 0.0
        finally:
            shutdown(coordinator, shards)


class TestSingleShardEquivalence:
    """Acceptance: K=1 decisions are bit-identical to the direct service."""

    @staticmethod
    def _trace(seed, count):
        rng = random.Random(seed)
        ops = []
        active = []
        for index in range(count):
            if active and rng.random() < 0.3:
                victim = active.pop(rng.randrange(len(active)))
                ops.append(("release", victim))
                continue
            request = HomogeneousSVC(
                n_vms=rng.randint(2, 10),
                mean=rng.uniform(20.0, 120.0),
                std=rng.uniform(2.0, 40.0),
            )
            ops.append(("submit", request))
            active.append(index + 1)  # both sides burn one id per submit
        return ops

    def test_decisions_and_state_match_direct_service(self):
        ops = self._trace(seed=7, count=60)

        _partition, shards, coordinator = build_cluster(1)
        cluster_log = []
        try:
            for op, payload in ops:
                if op == "submit":
                    decision = coordinator.submit(payload)
                    # Rejects carry the coordinator's burned gid; the direct
                    # ticket reports None there — only admitted ids must match.
                    cluster_log.append(
                        (
                            decision["outcome"],
                            decision["request_id"]
                            if decision["outcome"] == "admitted"
                            else None,
                        )
                    )
                else:
                    coordinator.release(payload)
            cluster_state = network_state_to_dict(coordinator.replica.state)
            cluster_active = coordinator.active_tenancies
        finally:
            shutdown(coordinator, shards)

        manager = NetworkManager(build_datacenter(TINY_SPEC), epsilon=0.05)
        service = AdmissionService(manager, workers=1).start()
        direct_log = []
        try:
            for op, payload in ops:
                if op == "submit":
                    ticket = service.submit(payload, wait=True, wait_timeout=30.0)
                    assert ticket.done
                    direct_log.append((ticket.outcome, ticket.request_id))
                else:
                    service.release(payload)
            direct_state = network_state_to_dict(manager.state)
            direct_active = manager.active_tenancies
        finally:
            service.stop()

        assert cluster_log == direct_log
        assert cluster_active == direct_active
        assert cluster_state == direct_state
