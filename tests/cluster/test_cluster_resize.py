"""Cluster resize: shard routing, two-phase deltas, crash reconciliation.

The crash tests bracket the coordinator's resize WAL protocol
(``OP_RSINTENT`` -> shard resize -> ``OP_RSDONE``):

* crash **before** the intent record — the shard was never asked, so
  recovery comes back at the old size;
* crash **after** the done record — the decision is durable, recovery
  comes back at the new size;
* crash **between** (the shard journaled its resize, the coordinator's
  done record is missing) — recovery resolves the open intent against the
  shard's idempotency table and rolls forward.

In every case the coordinator's replica and the owning shard agree on the
tenant's size — no tenant is ever half-sized.
"""

import pytest

from repro.abstractions import HomogeneousSVC
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.partition import ClusterPartition
from repro.cluster.shard import LocalShard
from repro.faults.failpoints import (
    FAILPOINTS,
    FP_COORD_RESIZE_AFTER_WAL,
    FP_COORD_RESIZE_BEFORE_WAL,
    FP_RESIZE_AFTER_JOURNAL,
    MODE_CRASH,
    InjectedCrash,
)
from repro.topology.builder import TINY_SPEC


def small_request(n_vms=4, mean=40.0, std=8.0):
    return HomogeneousSVC(n_vms=n_vms, mean=mean, std=std)


def build_cluster(num_shards, directory=None):
    partition = ClusterPartition.build(TINY_SPEC, num_shards)
    shards = [
        LocalShard(
            view,
            None if directory is None else directory / f"shard{view.shard_index}",
        )
        for view in partition.shards
    ]
    coordinator = ClusterCoordinator(
        partition,
        shards,
        directory=None if directory is None else directory / "coordinator",
    )
    return partition, shards, coordinator


def shutdown(coordinator, shards):
    coordinator.stop()
    for shard in shards:
        shard.close()


def shard_sizes(shards):
    """``{local request_id: n_vms}`` of every live shard tenancy."""
    sizes = {}
    for shard in shards:
        for tenancy in shard.manager.tenancies():
            sizes[(shard.view.shard_index, tenancy.request_id)] = tenancy.n_vms
    return sizes


def assert_never_half_sized(coordinator, shards, gid, expected_n):
    """Coordinator replica and owning shard agree on one exact size."""
    replica_tenancy = coordinator.replica.get_tenancy(gid)
    assert replica_tenancy is not None
    assert replica_tenancy.n_vms == expected_n
    allocation = coordinator.allocation_of(gid)
    assert allocation.request.n_vms == expected_n
    assert sum(allocation.machine_counts.values()) == expected_n
    live = list(shard_sizes(shards).values())
    assert live == [expected_n]


class TestClusterResize:
    def test_grow_then_shrink_roundtrip(self):
        _partition, shards, coordinator = build_cluster(2)
        try:
            gid = coordinator.submit(small_request())["request_id"]
            grown = coordinator.resize(gid, new_n=10)
            assert grown["outcome"] in ("in_place", "replaced")
            assert grown["route"] == "local"
            assert_never_half_sized(coordinator, shards, gid, 10)

            shrunk = coordinator.resize(gid, new_n=2)
            assert shrunk["outcome"] in ("in_place", "replaced")
            assert_never_half_sized(coordinator, shards, gid, 2)

            assert coordinator.ledger.pending_reservations == 0
            assert sum(coordinator.stats()["resizes"].values()) == 2
            assert coordinator.release(gid)
        finally:
            shutdown(coordinator, shards)

    def test_unknown_gid(self):
        _partition, shards, coordinator = build_cluster(2)
        try:
            decision = coordinator.resize(999, new_n=2)
            assert decision["outcome"] == "unknown"
        finally:
            shutdown(coordinator, shards)

    def test_cross_shard_tenancy_rejected(self):
        _partition, shards, coordinator = build_cluster(2)
        try:
            decision = coordinator.submit(small_request(n_vms=40, mean=8.0, std=2.0))
            assert decision["outcome"] == "admitted"
            gid = decision["request_id"]
            sizes_before = shard_sizes(shards)
            denied = coordinator.resize(gid, new_n=44)
            assert denied["outcome"] == "rejected"
            assert "multiple shards" in denied["detail"]
            assert shard_sizes(shards) == sizes_before
            assert coordinator.stats()["resizes"]["rejected"] == 1
        finally:
            shutdown(coordinator, shards)

    def test_idempotent_retry_dedups(self):
        _partition, shards, coordinator = build_cluster(2)
        try:
            gid = coordinator.submit(small_request())["request_id"]
            first = coordinator.resize(gid, new_n=6, idempotency_key="rs")
            again = coordinator.resize(gid, new_n=6, idempotency_key="rs")
            assert again["deduped"] is True
            assert again["outcome"] == first["outcome"]
            assert sum(coordinator.resize_counts.values()) == 1
            assert_never_half_sized(coordinator, shards, gid, 6)
        finally:
            shutdown(coordinator, shards)

    def test_rejected_resize_leaves_admission_stats_alone(self):
        _partition, shards, coordinator = build_cluster(2)
        try:
            gid = coordinator.submit(small_request())["request_id"]
            before = coordinator.stats()
            total = coordinator.replica.state.total_slots
            denied = coordinator.resize(gid, new_n=total + 1)
            assert denied["outcome"] == "rejected"
            after = coordinator.stats()
            assert after["admitted_total"] == before["admitted_total"]
            assert after["rejected_total"] == before["rejected_total"]
            assert after["resizes"]["rejected"] == 1
        finally:
            shutdown(coordinator, shards)


class TestClusterResizeRecovery:
    def restart(self, partition, directory):
        shards = [
            LocalShard(view, directory / f"shard{view.shard_index}")
            for view in partition.shards
        ]
        coordinator = ClusterCoordinator(
            partition, shards, directory=directory / "coordinator"
        )
        return shards, coordinator

    def crash_cluster(self, coordinator, shards):
        coordinator.kill()
        for shard in shards:
            shard.close()
        FAILPOINTS.clear()

    def test_clean_restart_preserves_resize(self, tmp_path):
        partition, shards, coordinator = build_cluster(2, directory=tmp_path)
        try:
            gid = coordinator.submit(small_request())["request_id"]
            coordinator.resize(gid, new_n=9, idempotency_key="rs")
        finally:
            self.crash_cluster(coordinator, shards)

        shards, coordinator = self.restart(partition, tmp_path)
        try:
            assert_never_half_sized(coordinator, shards, gid, 9)
            assert sum(coordinator.resize_counts.values()) == 1
            again = coordinator.resize(gid, new_n=9, idempotency_key="rs")
            assert again["deduped"] is True
        finally:
            shutdown(coordinator, shards)

    def test_crash_before_intent_recovers_old_size(self, tmp_path):
        partition, shards, coordinator = build_cluster(2, directory=tmp_path)
        try:
            gid = coordinator.submit(small_request(n_vms=4))["request_id"]
            FAILPOINTS.arm(FP_COORD_RESIZE_BEFORE_WAL, MODE_CRASH, max_hits=1)
            with pytest.raises(InjectedCrash):
                coordinator.resize(gid, new_n=9)
        finally:
            self.crash_cluster(coordinator, shards)

        shards, coordinator = self.restart(partition, tmp_path)
        try:
            # The shard was never asked: the old size is the only size.
            assert_never_half_sized(coordinator, shards, gid, 4)
            assert sum(coordinator.resize_counts.values()) == 0
        finally:
            shutdown(coordinator, shards)

    def test_crash_after_done_recovers_new_size(self, tmp_path):
        partition, shards, coordinator = build_cluster(2, directory=tmp_path)
        try:
            gid = coordinator.submit(small_request(n_vms=4))["request_id"]
            FAILPOINTS.arm(FP_COORD_RESIZE_AFTER_WAL, MODE_CRASH, max_hits=1)
            with pytest.raises(InjectedCrash):
                coordinator.resize(gid, new_n=9)
        finally:
            self.crash_cluster(coordinator, shards)

        shards, coordinator = self.restart(partition, tmp_path)
        try:
            # The done record hit the WAL before the crash: durable.
            assert_never_half_sized(coordinator, shards, gid, 9)
            assert sum(coordinator.resize_counts.values()) == 1
        finally:
            shutdown(coordinator, shards)

    def test_crash_between_intent_and_done_rolls_forward(self, tmp_path):
        partition, shards, coordinator = build_cluster(2, directory=tmp_path)
        try:
            gid = coordinator.submit(small_request(n_vms=4))["request_id"]
            # Crash inside the *shard's* resize, after its own journal
            # append: the shard remembers the resize, the coordinator WAL
            # holds only the open intent.
            FAILPOINTS.arm(FP_RESIZE_AFTER_JOURNAL, MODE_CRASH, max_hits=1)
            with pytest.raises(InjectedCrash):
                coordinator.resize(gid, new_n=9)
        finally:
            self.crash_cluster(coordinator, shards)

        shards, coordinator = self.restart(partition, tmp_path)
        try:
            # Open-intent resolution asks the shard (authoritative) and
            # rolls the acked resize forward.
            assert_never_half_sized(coordinator, shards, gid, 9)
            assert sum(coordinator.resize_counts.values()) == 1
            assert coordinator.release(gid)
        finally:
            shutdown(coordinator, shards)
