"""Cluster-wide observability: federation, e2e traces, obs collection, top."""

import os

import pytest

from repro.abstractions import HomogeneousSVC
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.partition import ClusterPartition
from repro.cluster.shard import LocalShard
from repro.cluster.worker import ProcessShard, wait_for_shards
from repro.obs.flightrec import reset_flight_recorder
from repro.service.top import render_cluster_top
from repro.topology.builder import TINY_SPEC


def build_cluster(num_shards, **kwargs):
    partition = ClusterPartition.build(TINY_SPEC, num_shards)
    shards = [LocalShard(view, None) for view in partition.shards]
    coordinator = ClusterCoordinator(partition, shards, directory=None, **kwargs)
    return partition, shards, coordinator


def shutdown(coordinator, shards):
    coordinator.stop()
    for shard in shards:
        shard.close()


def series_for(metrics, family, **labels):
    return [
        row
        for row in metrics.get(family, {}).get("series", [])
        if all(row.get("labels", {}).get(k) == v for k, v in labels.items())
    ]


class TestClusterMetrics:
    def test_federated_snapshot_shape_and_shard_labels(self):
        _partition, shards, coordinator = build_cluster(2)
        try:
            assert coordinator.submit(
                HomogeneousSVC(n_vms=3, mean=40.0, std=8.0)
            )["outcome"] == "admitted"
            payload = coordinator.cluster_metrics()
            assert set(payload) == {"metrics", "meta", "stats", "shard_stats"}
            assert payload["meta"]["shards"] == ["0", "1", "coordinator"]
            assert payload["meta"]["families"] > 0
            assert len(payload["shard_stats"]) == 2
            metrics = payload["metrics"]
            # Every source contributed shard-labelled admission counters.
            for shard_label in ("0", "1", "coordinator"):
                assert series_for(
                    metrics, "repro_admission_requests_total", shard=shard_label
                )
            # The scrape counter itself federates under the coordinator's
            # own label (both shards answered → at least two "ok" scrapes).
            (scrapes,) = series_for(
                metrics,
                "repro_cluster_federation_scrapes_total",
                shard="coordinator",
                outcome="ok",
            )
            assert scrapes["value"] >= 2
        finally:
            shutdown(coordinator, shards)

    def test_dead_shard_degrades_the_snapshot_instead_of_failing(self):
        _partition, shards, coordinator = build_cluster(2)
        try:
            shards[1].kill()
            payload = coordinator.cluster_metrics()
            # The view survives with the live shard's series (in-process
            # shards share the registry, so any registered family works)...
            assert series_for(
                payload["metrics"],
                "repro_cluster_federation_scrapes_total",
                shard="0",
            )
            # ...and the failed scrape is counted, not swallowed.
            (errors,) = series_for(
                payload["metrics"],
                "repro_cluster_federation_scrapes_total",
                shard="coordinator",
                outcome="error",
            )
            assert errors["value"] >= 1
        finally:
            shutdown(coordinator, shards)


@pytest.fixture(scope="class")
def spawned_cluster():
    partition = ClusterPartition.build(TINY_SPEC, 2)
    shards = [ProcessShard(view, None) for view in partition.shards]
    wait_for_shards(shards)
    # Start from an empty ring: other tests' coordinators share the
    # process-global flight recorder and reuse low global ids.
    reset_flight_recorder()
    coordinator = ClusterCoordinator(
        partition, shards, directory=None, trace_sample_every=1
    )
    # 40 VMs > one TINY shard's 32 slots: the admission must span both
    # worker processes, which is what makes the trace interesting.
    decision = coordinator.submit(HomogeneousSVC(n_vms=40, mean=8.0, std=2.0))
    try:
        yield coordinator, shards, decision
    finally:
        coordinator.stop()
        for shard in shards:
            shard.close()


class TestEndToEndTrace:
    def test_cross_shard_admission_yields_one_trace(self, spawned_cluster):
        coordinator, shards, decision = spawned_cluster
        assert decision["outcome"] == "admitted"
        assert sorted(coordinator.fragments_of(decision["request_id"])) == [0, 1]
        traces = [
            trace
            for trace in coordinator.recent_traces()
            if trace["meta"].get("gid") == decision["request_id"]
        ]
        assert len(traces) == 1
        (trace,) = traces
        assert trace["meta"]["trace_id_global"].startswith(f"{os.getpid()}-")
        span_names = {span["name"] for span in trace["spans"]}
        assert {"route", "reserve", "commit"} <= span_names
        # Remote spans came back over the RPC channel from *both* shard
        # child processes, pid-stamped and shard-labelled.
        remote = trace["remote_spans"]
        assert {span["pid"] for span in remote} == {
            shard._process.pid for shard in shards
        }
        assert {span["shard"] for span in remote} == {0, 1}

    def test_obs_collection_reaches_every_process(self, spawned_cluster):
        coordinator, shards, decision = spawned_cluster
        obs = coordinator.collect_obs_dumps()
        assert obs["coordinator"]["pid"] == os.getpid()
        decisions = [
            event
            for event in obs["coordinator"]["flight"]
            if event["kind"] == "cluster_decision"
            and event.get("gid") == decision["request_id"]
        ]
        assert len(decisions) == 1
        assert decisions[0]["outcome"] == "admitted"
        shard_dumps = [dump for dump in obs["shards"] if "error" not in dump]
        assert {dump["pid"] for dump in shard_dumps} == {
            shard._process.pid for shard in shards
        }
        for dump in shard_dumps:
            assert "flight" in dump and "traces" in dump

    def test_render_cluster_top_over_a_real_payload(self, spawned_cluster):
        coordinator, _shards, _decision = spawned_cluster
        frame = render_cluster_top(coordinator.cluster_metrics())
        lines = frame.splitlines()
        assert lines[0].startswith("svc-repro top — cluster: 2 shard(s)")
        assert "admitted 1" in lines[1]
        shard_rows = [
            line for line in lines if line.strip().startswith(("0 ", "1 "))
        ]
        assert len(shard_rows) == 2
        # Both shards hold fragments, so the Eq. 6 occupancy column is
        # non-zero and each worker reports a live degradation state
        # ("full" = fully operational, degradation level 0).
        for row in shard_rows:
            assert "0.000" not in row.split()[4]
            assert "full" in row
        assert any(line.startswith("federation scrapes ok=") for line in lines)
