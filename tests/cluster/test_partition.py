"""Topology partitioner: shard views must tile the global tree exactly."""

import pytest

from repro.abstractions import HomogeneousSVC
from repro.cluster.partition import ClusterPartition, build_shard_tree
from repro.manager.network_manager import NetworkManager
from repro.service.codec import allocation_to_dict
from repro.topology.builder import SMALL_SPEC, TINY_SPEC, build_datacenter


class TestSingleShardIdentity:
    """K=1 is the bit-compatibility anchor: the shard tree IS the tree."""

    def test_single_shard_tree_is_id_identical(self):
        partition = ClusterPartition.build(TINY_SPEC, 1)
        global_tree = build_datacenter(TINY_SPEC)
        shard_tree = partition.shards[0].tree
        assert shard_tree.num_nodes == global_tree.num_nodes
        for node in global_tree.nodes:
            twin = shard_tree.node(node.node_id)
            assert twin.name == node.name
            assert twin.level == node.level
            assert twin.slot_capacity == node.slot_capacity

    def test_single_shard_translation_is_identity(self):
        partition = ClusterPartition.build(TINY_SPEC, 1)
        view = partition.shards[0]
        for local, global_ in view.to_global.items():
            assert local == global_

    def test_single_shard_link_capacities_match(self):
        partition = ClusterPartition.build(TINY_SPEC, 1)
        global_tree = partition.tree
        shard_tree = partition.shards[0].tree
        for node in global_tree.nodes:
            if node.node_id == global_tree.root_id:
                continue
            assert (
                shard_tree.link(node.node_id).capacity
                == global_tree.link(node.node_id).capacity
            )


class TestTiling:
    def test_every_non_core_node_owned_exactly_once(self):
        partition = ClusterPartition.build(SMALL_SPEC, 3)
        seen = {}
        for view in partition.shards:
            for global_id in view.from_global:
                if global_id == partition.tree.root_id:
                    continue  # the core switch is replicated by design
                assert global_id not in seen, (
                    f"node {global_id} owned by shards {seen[global_id]} "
                    f"and {view.shard_index}"
                )
                seen[global_id] = view.shard_index
        assert len(seen) == partition.tree.num_nodes - 1

    def test_pod_blocks_are_balanced(self):
        partition = ClusterPartition.build(SMALL_SPEC, 2)  # 3 pods over 2 shards
        sizes = sorted(len(view.pods) for view in partition.shards)
        assert sizes == [1, 2]
        covered = sorted(pod for view in partition.shards for pod in view.pods)
        assert covered == list(range(SMALL_SPEC.pods))

    def test_core_links_are_the_agg_uplinks(self):
        partition = ClusterPartition.build(TINY_SPEC, 2)
        names = {
            partition.tree.node(link_id).name
            for link_id in partition.core_link_ids
        }
        assert names == {f"agg{pod}" for pod in range(TINY_SPEC.pods)}
        for view in partition.shards:
            for link_id in view.core_link_ids:
                pod = int(partition.tree.node(link_id).name.removeprefix("agg"))
                assert pod in view.pods

    def test_shard_slots_sum_to_global(self):
        partition = ClusterPartition.build(SMALL_SPEC, 3)
        assert (
            sum(view.total_slots for view in partition.shards)
            == partition.tree.total_slots
        )


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, TINY_SPEC.pods + 1])
    def test_shard_count_bounds(self, bad):
        with pytest.raises(ValueError):
            ClusterPartition.build(TINY_SPEC, bad)

    def test_shard_tree_needs_pods(self):
        with pytest.raises(ValueError):
            build_shard_tree(TINY_SPEC, [])

    def test_shard_tree_rejects_out_of_range_pod(self):
        with pytest.raises(ValueError):
            build_shard_tree(TINY_SPEC, [TINY_SPEC.pods])


class TestAllocationTranslation:
    def test_round_trip_preserves_allocation(self):
        partition = ClusterPartition.build(TINY_SPEC, 2)
        view = partition.shards[1]
        manager = NetworkManager(view.tree, epsilon=0.05)
        tenancy = manager.request(HomogeneousSVC(n_vms=4, mean=50.0, std=10.0))
        assert tenancy is not None
        local = tenancy.allocation
        global_allocation = view.allocation_to_global(local, request_id=99)
        assert global_allocation.request_id == 99
        for machine_id in global_allocation.machine_counts:
            assert partition.node_to_shard[machine_id] == view.shard_index
        back = view.allocation_to_local(
            global_allocation, request_id=local.request_id
        )
        assert allocation_to_dict(back) == allocation_to_dict(local)

    def test_shards_touched(self):
        partition = ClusterPartition.build(TINY_SPEC, 2)
        view = partition.shards[0]
        manager = NetworkManager(view.tree, epsilon=0.05)
        tenancy = manager.request(HomogeneousSVC(n_vms=2, mean=30.0, std=5.0))
        global_allocation = view.allocation_to_global(tenancy.allocation)
        assert partition.shards_touched(global_allocation) == (0,)
