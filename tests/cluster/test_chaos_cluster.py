"""Cluster chaos referee: a small in-suite sample of the CI sweep.

CI runs ``svc-repro cluster --chaos 200``; tier-1 keeps a three-seed
sample so a referee regression fails fast without the full sweep's cost.
"""

import pytest

from repro.cluster.chaos import cluster_chaos_plan, run_cluster_chaos_schedule


class TestPlanDeterminism:
    def test_same_seed_same_plan(self):
        first = cluster_chaos_plan(4242)
        second = cluster_chaos_plan(4242)
        assert first.describe() == second.describe()

    def test_some_crashes_move_into_the_coordinator(self):
        sites = {
            cluster_chaos_plan(seed).crash_site
            for seed in range(40)
            if cluster_chaos_plan(seed).crash_site is not None
        }
        assert any(
            site.startswith("cluster.coordinator.") for site in sites
        ), f"no coordinator crash sites in {sorted(sites)}"


@pytest.mark.parametrize("seed", [1000, 1001, 1002])
def test_schedule_holds_invariants(seed, tmp_path):
    result = run_cluster_chaos_schedule(
        seed, tmp_path / f"run{seed}", shards=2, operations=25
    )
    assert result.ok, f"seed {seed} violations: {result.failures}"
    # A planned crash may cut the workload short; some ops must still run.
    assert 0 < result.operations_run <= 25
