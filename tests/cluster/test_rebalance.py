"""Advisory rebalancer: bounded nudges, never an admission-control veto."""

import pytest

from repro.cluster.rebalance import ShardLoadRebalancer


def stats(free, total=100, queue=0):
    return {"free_slots": free, "total_slots": total, "queue_depth": queue}


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestWeightDirection:
    def test_hot_shard_loses_weight_cold_shard_gains(self):
        rebalancer = ShardLoadRebalancer(2, interval_s=0.0)
        weights = rebalancer.update([stats(free=10), stats(free=90)])
        assert weights[0] == pytest.approx(1.0 - rebalancer.step)
        assert weights[1] == pytest.approx(1.0 + rebalancer.step)

    def test_backlog_counts_as_pressure(self):
        rebalancer = ShardLoadRebalancer(2, interval_s=0.0)
        # Identical slot pictures; only shard 0 has a queue.
        weights = rebalancer.update(
            [stats(free=50, queue=10), stats(free=50, queue=0)]
        )
        assert weights[0] < 1.0 < weights[1]

    def test_balanced_cluster_keeps_neutral_weights(self):
        rebalancer = ShardLoadRebalancer(3, interval_s=0.0)
        weights = rebalancer.update([stats(free=50)] * 3)
        assert weights == (1.0, 1.0, 1.0)


class TestBounds:
    def test_weights_saturate_under_sustained_skew(self):
        rebalancer = ShardLoadRebalancer(2, interval_s=0.0)
        for _ in range(50):
            rebalancer.update([stats(free=0), stats(free=100)])
        assert rebalancer.weights() == (
            rebalancer.min_weight,
            rebalancer.max_weight,
        )

    def test_neutral_drift_decays_old_corrections(self):
        rebalancer = ShardLoadRebalancer(2, interval_s=0.0)
        for _ in range(5):
            rebalancer.update([stats(free=0), stats(free=100)])
        skewed = rebalancer.weights()
        assert skewed[0] < 1.0 < skewed[1]
        for _ in range(50):
            rebalancer.update([stats(free=50), stats(free=50)])
        assert rebalancer.weights() == (1.0, 1.0)


class TestRateLimit:
    def test_maybe_update_honors_interval(self):
        clock = FakeClock()
        rebalancer = ShardLoadRebalancer(2, interval_s=5.0, clock=clock)
        assert rebalancer.maybe_update([stats(free=10), stats(free=90)])
        assert not rebalancer.maybe_update([stats(free=10), stats(free=90)])
        clock.now = 4.9
        assert not rebalancer.maybe_update([stats(free=10), stats(free=90)])
        clock.now = 5.0
        assert rebalancer.maybe_update([stats(free=10), stats(free=90)])
        assert rebalancer.updates == 2


class TestValidation:
    def test_constructor_bounds(self):
        with pytest.raises(ValueError):
            ShardLoadRebalancer(0)
        with pytest.raises(ValueError):
            ShardLoadRebalancer(2, step=0.0)
        with pytest.raises(ValueError):
            ShardLoadRebalancer(2, step=0.5)  # bounded nudges only
        with pytest.raises(ValueError):
            ShardLoadRebalancer(2, min_weight=1.2)  # must straddle 1.0
        with pytest.raises(ValueError):
            ShardLoadRebalancer(2, max_weight=0.8)

    def test_update_requires_all_shards(self):
        rebalancer = ShardLoadRebalancer(3, interval_s=0.0)
        with pytest.raises(ValueError):
            rebalancer.update([stats(free=50)] * 2)
