"""Process-backed shard workers: the wire protocol end to end."""

import pytest

from repro.abstractions import HomogeneousSVC
from repro.cluster.partition import ClusterPartition
from repro.cluster.worker import ProcessShard, wait_for_shards
from repro.service.errors import ServiceError
from repro.topology.builder import TINY_SPEC


@pytest.fixture()
def shard():
    partition = ClusterPartition.build(TINY_SPEC, 2)
    handle = ProcessShard(partition.shards[0], None)
    wait_for_shards([handle])
    yield handle
    handle.close()


class TestProtocol:
    def test_submit_release_round_trip(self, shard):
        decision = shard.submit(
            HomogeneousSVC(n_vms=3, mean=40.0, std=8.0), idempotency_key="w1"
        )
        assert decision["outcome"] == "admitted"
        srid = decision["request_id"]
        assert decision["allocation"] is not None
        assert decision["allocation"].request_id == srid

        stats = shard.stats()
        assert stats["shard"] == 0
        assert stats["active_tenancies"] == 1
        assert stats["free_slots"] == stats["total_slots"] - 3

        known = shard.idem_lookup("w1")
        assert known is not None
        assert known["outcome"] == "admitted"
        assert known["request_id"] == srid
        assert shard.idem_lookup("missing") is None

        active = shard.active_allocations()
        assert set(active) == {srid}
        assert sum(active[srid].machine_counts.values()) == 3

        assert shard.release(srid)
        assert not shard.release(srid)
        assert shard.stats()["active_tenancies"] == 0

    def test_rejection_crosses_the_wire(self, shard):
        total = shard.stats()["total_slots"]
        decision = shard.submit(
            HomogeneousSVC(n_vms=total + 1, mean=1.0, std=0.1)
        )
        assert decision["outcome"] == "rejected"
        assert decision["allocation"] is None


class TestDeath:
    def test_killed_worker_raises_service_error(self, shard):
        assert shard.alive
        shard.kill()
        assert not shard.alive
        with pytest.raises(ServiceError):
            shard.stats()
