"""The degradation ladder: unit transitions and end-to-end service behaviour."""

import pytest

from repro.faults.failpoints import FAILPOINTS, FP_JOURNAL_WRITE, MODE_ERROR
from repro.manager.network_manager import NetworkManager
from repro.service.concurrency import OUTCOME_ADMITTED, OUTCOME_ERROR, AdmissionService
from repro.service.degrade import (
    STATE_FAST_FAIL,
    STATE_FULL,
    STATE_READ_ONLY,
    DegradationLadder,
)
from repro.service.errors import CODE_READ_ONLY, CODE_UNAVAILABLE, DegradedError
from repro.service.journal import DurabilityStore


def small_request():
    from repro.abstractions import HomogeneousSVC

    return HomogeneousSVC(n_vms=2, mean=50.0, std=10.0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestLadderUnit:
    def test_starts_full(self):
        ladder = DegradationLadder()
        assert ladder.state == STATE_FULL
        assert not ladder.degraded
        assert ladder.code == 0

    def test_failure_steps_to_read_only_then_fast_fail(self):
        ladder = DegradationLadder(fast_fail_after=3)
        ladder.record_failure(OSError("disk"))
        assert ladder.state == STATE_READ_ONLY
        ladder.record_failure(OSError("disk"))
        assert ladder.state == STATE_READ_ONLY
        ladder.record_failure(OSError("disk"))
        assert ladder.state == STATE_FAST_FAIL
        assert ladder.code == 2

    def test_success_recovers_to_full(self):
        ladder = DegradationLadder(fast_fail_after=2)
        ladder.record_failure(OSError("disk"))
        ladder.record_failure(OSError("disk"))
        assert ladder.state == STATE_FAST_FAIL
        ladder.record_success()
        assert ladder.state == STATE_FULL
        assert ladder.consecutive_failures == 0

    def test_retry_after_backs_off_exponentially_and_caps(self):
        ladder = DegradationLadder(probe_interval=1.0, max_retry_after=8.0)
        hints = []
        for _ in range(6):
            ladder.record_failure(OSError("disk"))
            hints.append(ladder.retry_after())
        assert hints[:4] == [1.0, 2.0, 4.0, 8.0]
        assert all(h == 8.0 for h in hints[3:])  # capped

    def test_should_probe_follows_the_backoff(self):
        clock = FakeClock()
        ladder = DegradationLadder(clock=clock, probe_interval=1.0)
        assert not ladder.should_probe()  # full: nothing to probe
        ladder.record_failure(OSError("disk"))
        assert not ladder.should_probe()
        clock.now = 1.5
        assert ladder.should_probe()

    def test_describe_is_json_friendly(self):
        ladder = DegradationLadder()
        ladder.record_failure(OSError("boom"))
        payload = ladder.describe()
        assert payload["state"] == STATE_READ_ONLY
        assert payload["consecutive_failures"] == 1
        assert "boom" in payload["last_error"]
        assert payload["retry_after_s"] > 0


class TestServiceDegradation:
    def test_journal_failure_rolls_back_and_degrades(self, tiny_tree, tmp_path):
        store = DurabilityStore(tmp_path / "j")
        service = AdmissionService(
            NetworkManager(tiny_tree), store=store, workers=1,
            degradation=DegradationLadder(probe_interval=30.0),
        )
        with service:
            FAILPOINTS.arm(FP_JOURNAL_WRITE, MODE_ERROR)
            ticket = service.submit(small_request(), wait=True)
            assert ticket.outcome == OUTCOME_ERROR
            assert "rolled back" in ticket.detail
            # The admission was rolled back: no tenancy holds bandwidth.
            assert service.manager.active_tenancies == 0
            assert service.manager.admitted_count == 0
            assert service.degradation_state() == STATE_READ_ONLY
            # Mutations now shed with a typed, retryable error.
            with pytest.raises(DegradedError) as excinfo:
                service.submit(small_request(), wait=True)
            assert excinfo.value.code == CODE_READ_ONLY
            assert excinfo.value.retry_after > 0
            assert service.counters.shed >= 1
        store.close()

    def test_probe_recovers_full_service(self, tiny_tree, tmp_path):
        store = DurabilityStore(tmp_path / "j")
        service = AdmissionService(
            NetworkManager(tiny_tree), store=store, workers=1,
            degradation=DegradationLadder(probe_interval=0.01),
        )
        with service:
            FAILPOINTS.arm(FP_JOURNAL_WRITE, MODE_ERROR, max_hits=1)
            assert service.submit(small_request(), wait=True).outcome == OUTCOME_ERROR
            assert service.degradation_state() == STATE_READ_ONLY
            # The failpoint is exhausted: the next probe note succeeds and
            # the ladder climbs back to full within a couple of sweeps.
            deadline = 100
            for _ in range(deadline):
                if service.degradation_state() == STATE_FULL:
                    break
                import time

                time.sleep(0.02)
            assert service.degradation_state() == STATE_FULL
            ticket = service.submit(small_request(), wait=True)
            assert ticket.outcome == OUTCOME_ADMITTED
        store.close()

    def test_fast_fail_shed_includes_status_reads(self, tiny_tree, tmp_path):
        store = DurabilityStore(tmp_path / "j")
        ladder = DegradationLadder(probe_interval=30.0, fast_fail_after=1)
        service = AdmissionService(
            NetworkManager(tiny_tree), store=store, workers=1, degradation=ladder,
        )
        with service:
            FAILPOINTS.arm(FP_JOURNAL_WRITE, MODE_ERROR)
            service.submit(small_request(), wait=True)
            assert service.degradation_state() == STATE_FAST_FAIL
            with pytest.raises(DegradedError) as excinfo:
                service.gate("stats")
            assert excinfo.value.code == CODE_UNAVAILABLE
            service.gate("ping")  # liveness stays reachable
        store.close()

    def test_release_failure_keeps_tenancy_and_raises_typed_error(
        self, tiny_tree, tmp_path
    ):
        store = DurabilityStore(tmp_path / "j")
        service = AdmissionService(
            NetworkManager(tiny_tree), store=store, workers=1,
            degradation=DegradationLadder(probe_interval=0.01),
        )
        with service:
            ticket = service.submit(small_request(), wait=True)
            assert ticket.outcome == OUTCOME_ADMITTED
            FAILPOINTS.arm(FP_JOURNAL_WRITE, MODE_ERROR, max_hits=1)
            with pytest.raises(DegradedError) as excinfo:
                service.release(ticket.request_id)
            assert excinfo.value.code == CODE_READ_ONLY
            # Rolled back: the tenancy still holds its bandwidth, and a
            # later retry (journal healthy again) succeeds.
            assert service.manager.get_tenancy(ticket.request_id) is not None
            import time

            for _ in range(100):
                if service.degradation_state() == STATE_FULL:
                    break
                time.sleep(0.02)
            assert service.release(ticket.request_id)
            assert service.manager.get_tenancy(ticket.request_id) is None
        store.close()

    def test_stats_and_metrics_surface_degradation(self, tiny_tree, tmp_path):
        store = DurabilityStore(tmp_path / "j")
        service = AdmissionService(
            NetworkManager(tiny_tree), store=store, workers=1,
            degradation=DegradationLadder(probe_interval=30.0),
        )
        with service:
            FAILPOINTS.arm(FP_JOURNAL_WRITE, MODE_ERROR)
            service.submit(small_request(), wait=True)
            stats = service.stats()
            assert stats["degradation"]["state"] == STATE_READ_ONLY
            assert stats["degradation"]["consecutive_failures"] >= 1
            snapshot = service.metrics()["metrics"]
            gauge = snapshot["repro_service_degradation_state"]["series"][0]["value"]
            assert gauge == 1.0
        store.close()
