"""Bounded-queue backpressure, idempotent submits, server-side deadlines."""

import pytest

from repro.abstractions import HomogeneousSVC
from repro.faults.failpoints import FAILPOINTS, FP_QUEUE_ACCEPT, MODE_SHED
from repro.manager.network_manager import NetworkManager
from repro.service.concurrency import (
    OUTCOME_ADMITTED,
    OUTCOME_EXPIRED,
    AdmissionService,
)
from repro.service.errors import CODE_OVERLOADED, OverloadedError


def small_request():
    return HomogeneousSVC(n_vms=2, mean=50.0, std=10.0)


class TestQueueBound:
    def test_submits_beyond_the_bound_shed_with_retry_after(self, tiny_tree):
        service = AdmissionService(
            NetworkManager(tiny_tree), workers=1, max_queue_depth=2
        )
        # Flag the service running without starting workers: the queue can
        # only fill, making the bound deterministic to hit.
        service._running = True
        service.submit(small_request(), wait=False)
        service.submit(small_request(), wait=False)
        with pytest.raises(OverloadedError) as excinfo:
            service.submit(small_request(), wait=False)
        assert excinfo.value.code == CODE_OVERLOADED
        assert excinfo.value.retry_after > 0
        assert service.counters.shed == 1
        assert service.counters.submitted == 2  # the shed one never counted
        assert service.stats()["queue"]["limit"] == 2

    def test_bound_counts_parked_requests_too(self, tiny_tree):
        service = AdmissionService(
            NetworkManager(tiny_tree), workers=1, mode="batch", max_queue_depth=1
        )
        service._running = True
        service.submit(small_request(), wait=False)
        with pytest.raises(OverloadedError):
            service.submit(small_request(), wait=False)

    def test_unbounded_when_disabled(self, tiny_tree):
        service = AdmissionService(
            NetworkManager(tiny_tree), workers=1, max_queue_depth=None
        )
        service._running = True
        for _ in range(50):
            service.submit(small_request(), wait=False)
        assert service.counters.submitted == 50

    def test_queue_accept_failpoint_forces_saturation(self, tiny_tree):
        FAILPOINTS.arm(FP_QUEUE_ACCEPT, MODE_SHED)
        service = AdmissionService(NetworkManager(tiny_tree), workers=1)
        service._running = True
        with pytest.raises(OverloadedError):
            service.submit(small_request(), wait=False)

    def test_invalid_bound_rejected(self, tiny_tree):
        with pytest.raises(ValueError, match="max_queue_depth"):
            AdmissionService(NetworkManager(tiny_tree), max_queue_depth=0)


class TestServerSideDeadlines:
    def test_default_timeout_expires_unserved_requests(self, tiny_tree):
        with AdmissionService(
            NetworkManager(tiny_tree), workers=1, default_timeout_s=0.0
        ) as service:
            ticket = service.submit(small_request(), wait=True, wait_timeout=5.0)
            assert ticket.outcome == OUTCOME_EXPIRED
            assert service.counters.expired == 1

    def test_explicit_timeout_overrides_the_default(self, tiny_tree):
        with AdmissionService(
            NetworkManager(tiny_tree), workers=1, default_timeout_s=0.0
        ) as service:
            ticket = service.submit(
                small_request(), timeout_s=30.0, wait=True, wait_timeout=5.0
            )
            assert ticket.outcome == OUTCOME_ADMITTED


class TestIdempotentSubmit:
    def test_same_key_returns_the_same_ticket(self, tiny_tree):
        with AdmissionService(NetworkManager(tiny_tree), workers=1) as service:
            first = service.submit(
                small_request(), wait=True, idempotency_key="k1"
            )
            assert first.outcome == OUTCOME_ADMITTED
            second = service.submit(
                small_request(), wait=True, idempotency_key="k1"
            )
            assert second is first
            assert service.counters.deduped == 1
            assert service.counters.submitted == 1
            assert service.manager.active_tenancies == 1  # no double-admit

    def test_different_keys_are_independent(self, tiny_tree):
        with AdmissionService(NetworkManager(tiny_tree), workers=1) as service:
            a = service.submit(small_request(), wait=True, idempotency_key="a")
            b = service.submit(small_request(), wait=True, idempotency_key="b")
            assert a.request_id != b.request_id
            assert service.counters.deduped == 0

    def test_recovered_index_answers_without_reexecution(self, tiny_tree):
        # Simulate a post-recovery service seeded with a journaled decision.
        with AdmissionService(
            NetworkManager(tiny_tree),
            workers=1,
            idempotency_index={
                "old": {"outcome": OUTCOME_ADMITTED, "request_id": 41}
            },
        ) as service:
            ticket = service.submit(
                small_request(), wait=True, idempotency_key="old"
            )
            assert ticket.outcome == OUTCOME_ADMITTED
            assert ticket.request_id == 41
            assert "journal" in ticket.detail
            assert service.counters.deduped == 1
            # Nothing was enqueued, nothing allocated.
            assert service.counters.submitted == 0
            assert service.manager.active_tenancies == 0

    def test_stats_report_live_key_count(self, tiny_tree):
        with AdmissionService(NetworkManager(tiny_tree), workers=1) as service:
            service.submit(small_request(), wait=True, idempotency_key="x")
            assert service.stats()["idempotency"]["keys"] == 1
