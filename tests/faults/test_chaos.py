"""The chaos harness itself: a sampled run of seeded fault schedules.

CI runs the full 200-schedule suite through ``svc-repro chaos``; this test
keeps a smaller always-on sample inside tier 1 so a regression in the
recovery contract fails fast, and unit-checks the plan generator.
"""


from repro.faults.harness import run_chaos_schedule, run_chaos_suite
from repro.faults.schedule import CRASH_SITES, ChaosPlan


class TestChaosPlan:
    def test_plans_are_pure_functions_of_the_seed(self):
        for seed in range(30):
            assert (
                ChaosPlan.generate(seed).describe()
                == ChaosPlan.generate(seed).describe()
            )

    def test_plan_space_covers_crash_and_no_crash_schedules(self):
        plans = [ChaosPlan.generate(seed) for seed in range(60)]
        sites = {plan.crash_site for plan in plans}
        assert None in sites  # some schedules never crash
        assert sites & set(CRASH_SITES)  # most plant a crash

    def test_crash_armings_fire_exactly_once(self):
        for seed in range(100):
            plan = ChaosPlan.generate(seed)
            for arming in plan.armings:
                if arming["mode"] == "crash":
                    assert arming["max_hits"] == 1
                    assert arming["every"] >= 2


class TestChaosSchedules:
    def test_sampled_schedules_uphold_the_recovery_contract(self, tmp_path):
        results = run_chaos_suite(
            schedules=12, base_seed=9000, workdir=tmp_path, operations=30
        )
        failing = [r for r in results if not r.ok]
        assert not failing, "\n".join(
            f"seed={r.seed}: {r.failures}" for r in failing
        )
        # The sample must actually exercise the interesting paths.
        assert any(r.crashed for r in results)
        assert sum(r.acked_admits for r in results) > 0

    def test_single_schedule_report_is_serializable(self, tmp_path):
        import json

        result = run_chaos_schedule(9001, tmp_path / "one", operations=20)
        payload = json.dumps(result.describe())
        assert str(result.seed) in payload
