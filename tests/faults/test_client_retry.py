"""Client retry policy: backoff schedule, typed errors, idempotent retries."""

import pytest

from repro.service.client import RetryPolicy, ServiceClient
from repro.service.errors import (
    CODE_DEADLINE,
    CODE_OVERLOADED,
    CODE_OVER_QUOTA,
    CODE_READ_ONLY,
    DeadlineExceededError,
    DegradedError,
    OverloadedError,
    OverQuotaError,
    RetryExhaustedError,
    ServiceError,
    error_from_response,
)


class ScriptedClient(ServiceClient):
    """A ServiceClient with the TCP transport replaced by a script.

    Each entry of ``script`` is either an exception to raise or a response
    dict to return; ``submit`` consumes one entry per call and records the
    submitted idempotency keys.
    """

    def __init__(self, script):
        # Deliberately no super().__init__(): no sockets in unit tests.
        self.script = list(script)
        self.keys = []
        self.reconnects = 0

    def reconnect(self):
        self.reconnects += 1

    def submit(self, request, **kwargs):
        self.keys.append(kwargs.get("idempotency_key"))
        action = self.script.pop(0)
        if isinstance(action, BaseException):
            raise action
        return action


def admitted(request_id=7):
    return {"ok": True, "outcome": "admitted", "request_id": request_id}


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        assert [policy.delay(n) for n in (1, 2, 3, 4, 5)] == [
            0.1, 0.2, 0.4, 0.5, 0.5
        ]

    def test_seeded_jitter_is_deterministic_and_bounded(self):
        schedule = [RetryPolicy(seed=42, jitter=0.5).delay(n) for n in (1, 2, 3)]
        assert schedule == [RetryPolicy(seed=42, jitter=0.5).delay(n) for n in (1, 2, 3)]
        for n, delay in enumerate(schedule, start=1):
            raw = min(2.0, 0.05 * 2.0 ** (n - 1))
            assert 0.5 * raw <= delay <= 1.5 * raw

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


class TestSubmitWithRetry:
    def test_retries_transient_errors_then_succeeds(self):
        client = ScriptedClient(
            [OverloadedError("full", retry_after=0.2), admitted()]
        )
        sleeps = []
        reply = client.submit_with_retry(
            {"kind": "x"},
            policy=RetryPolicy(seed=1, base_delay=0.01, jitter=0.0),
            sleep=sleeps.append,
        )
        assert reply["outcome"] == "admitted"
        # The server's retry_after hint floors the backoff delay.
        assert sleeps == [0.2]
        # Both attempts carried the same auto-generated idempotency key.
        assert len(set(client.keys)) == 1 and client.keys[0] is not None

    def test_attempts_are_capped(self):
        client = ScriptedClient([OverloadedError("full")] * 10)
        with pytest.raises(RetryExhaustedError) as excinfo:
            client.submit_with_retry(
                {"kind": "x"},
                policy=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
                sleep=lambda _s: None,
            )
        assert len(client.keys) == 3
        assert isinstance(excinfo.value.__cause__, OverloadedError)

    def test_non_retryable_errors_propagate_immediately(self):
        client = ScriptedClient([ServiceError("schema mismatch")])
        with pytest.raises(ServiceError, match="schema mismatch"):
            client.submit_with_retry(
                {"kind": "x"}, policy=RetryPolicy(max_attempts=5), sleep=lambda _s: None
            )
        assert len(client.keys) == 1

    def test_read_only_degradation_is_retryable(self):
        client = ScriptedClient(
            [DegradedError("read-only", code=CODE_READ_ONLY), admitted()]
        )
        reply = client.submit_with_retry(
            {"kind": "x"},
            policy=RetryPolicy(base_delay=0.0, jitter=0.0),
            sleep=lambda _s: None,
        )
        assert reply["outcome"] == "admitted"

    def test_connection_errors_trigger_reconnect(self):
        client = ScriptedClient([ConnectionError("server died"), admitted()])
        reply = client.submit_with_retry(
            {"kind": "x"},
            policy=RetryPolicy(base_delay=0.0, jitter=0.0),
            sleep=lambda _s: None,
        )
        assert reply["outcome"] == "admitted"
        assert client.reconnects == 1

    def test_expired_outcome_is_a_typed_error_not_a_hang(self):
        client = ScriptedClient([{"ok": True, "outcome": "expired"}])
        with pytest.raises(DeadlineExceededError):
            client.submit_with_retry({"kind": "x"}, sleep=lambda _s: None)

    def test_deadline_budget_raises_instead_of_sleeping_past_it(self):
        clock_now = [0.0]
        client = ScriptedClient([OverloadedError("full", retry_after=10.0)] * 5)
        with pytest.raises(DeadlineExceededError) as excinfo:
            client.submit_with_retry(
                {"kind": "x"},
                policy=RetryPolicy(deadline_s=1.0, base_delay=0.1, jitter=0.0),
                sleep=lambda _s: None,
                clock=lambda: clock_now[0],
            )
        assert excinfo.value.code == CODE_DEADLINE
        assert len(client.keys) == 1  # would sleep past the budget: no attempt 2

    def test_explicit_key_is_reused_verbatim(self):
        client = ScriptedClient([ConnectionError("x"), admitted()])
        client.submit_with_retry(
            {"kind": "x"},
            policy=RetryPolicy(base_delay=0.0, jitter=0.0),
            idempotency_key="my-key",
            sleep=lambda _s: None,
        )
        assert client.keys == ["my-key", "my-key"]

    def test_over_quota_shed_is_retried_honoring_retry_after(self):
        # Regression: over-quota sheds must be retryable AND the server's
        # retry_after hint must floor the pause — the tenant's slice only
        # drains as the batcher works, so the base backoff is too eager.
        client = ScriptedClient(
            [
                OverQuotaError("tenant at quota", retry_after=0.75),
                OverQuotaError("tenant at quota", retry_after=0.5),
                admitted(),
            ]
        )
        sleeps = []
        reply = client.submit_with_retry(
            {"kind": "x"},
            policy=RetryPolicy(base_delay=0.01, jitter=0.0),
            tenant="noisy",
            sleep=sleeps.append,
        )
        assert reply["outcome"] == "admitted"
        assert sleeps == [0.75, 0.5]
        assert len(set(client.keys)) == 1  # idempotent across quota retries

    def test_over_quota_response_maps_to_typed_error(self):
        exc = error_from_response(
            "submit",
            {
                "ok": False,
                "error": "tenant 'noisy' is at its queue quota",
                "code": CODE_OVER_QUOTA,
                "retry_after": 1.5,
            },
        )
        assert isinstance(exc, OverQuotaError)
        assert exc.retry_after == 1.5

    def test_retryable_outcome_error_is_retried(self):
        client = ScriptedClient(
            [{"ok": True, "outcome": "error", "detail": "journal unavailable"},
             admitted()]
        )
        reply = client.submit_with_retry(
            {"kind": "x"},
            policy=RetryPolicy(base_delay=0.0, jitter=0.0),
            sleep=lambda _s: None,
        )
        assert reply["outcome"] == "admitted"


class TestErrorMapping:
    def test_error_from_response_maps_codes_to_classes(self):
        exc = error_from_response(
            "submit",
            {"ok": False, "error": "full", "code": CODE_OVERLOADED, "retry_after": 2.5},
        )
        assert isinstance(exc, OverloadedError)
        assert exc.retry_after == 2.5

    def test_unknown_code_falls_back_to_service_error(self):
        exc = error_from_response("submit", {"ok": False, "error": "boom"})
        assert type(exc) is ServiceError
        assert "boom" in str(exc)
