"""Crash-during-resize: an acked resize is never lost, no tenant half-sizes.

The two failpoints bracket the WAL append inside
:meth:`AdmissionService.resize`:

* ``FP_RESIZE_BEFORE_JOURNAL`` fires before the manager mutates — a crash
  there leaves the old size both in memory and on disk, so recovery must
  come back at the **old** size.
* ``FP_RESIZE_AFTER_JOURNAL`` fires once the decision is journaled — the
  resize is durable even though the crash preempts the acknowledgement,
  so recovery must come back at the **new** size.

Either way the recovered tenancy is exactly one of the two sizes (never a
blend) and the link state equals a from-scratch commit of the recovered
allocations.
"""

import pytest

from repro.abstractions import HomogeneousSVC
from repro.faults.failpoints import (
    FAILPOINTS,
    FP_RESIZE_AFTER_JOURNAL,
    FP_RESIZE_BEFORE_JOURNAL,
    MODE_CRASH,
    InjectedCrash,
)
from repro.manager.network_manager import NetworkManager
from repro.network import NetworkState
from repro.service.codec import network_state_to_dict
from repro.service.concurrency import OUTCOME_ADMITTED, AdmissionService
from repro.service.journal import DurabilityStore
from repro.service.recovery import recover_manager

OLD_N, NEW_N = 4, 9


def crash_resize_at(failpoint, directory, tree):
    """Admit one tenant, then crash at ``failpoint`` while resizing it."""
    store = DurabilityStore(directory)
    manager = NetworkManager(tree)
    service = AdmissionService(manager, store=store, workers=1)
    service.start()
    ticket = service.submit(
        HomogeneousSVC(n_vms=OLD_N, mean=50.0, std=10.0), wait=True
    )
    assert ticket.outcome == OUTCOME_ADMITTED
    FAILPOINTS.arm(failpoint, MODE_CRASH, max_hits=1)
    with pytest.raises(InjectedCrash):
        service.resize(ticket.request_id, new_n=NEW_N)
    service.kill()
    store.close()
    FAILPOINTS.clear()
    return ticket.request_id


def recover(directory, tree):
    store = DurabilityStore(directory)
    recovered, _report = recover_manager(store, tree)
    store.close()
    return recovered


def assert_exact_and_consistent(recovered, request_id, expected_n):
    tenancy = recovered.tenancy(request_id)
    assert tenancy.n_vms == expected_n
    assert tenancy.request.n_vms == expected_n
    assert sum(tenancy.allocation.machine_counts.values()) == expected_n
    assert len(tenancy.vm_machines) == expected_n
    assert len(recovered.rate_limiters) == expected_n
    # Link state equals a from-scratch commit of the recovered allocations:
    # no residue of the other size anywhere.
    scratch = NetworkState(recovered.state.tree, epsilon=recovered.epsilon)
    for entry in recovered.tenancies():
        scratch.commit(entry.allocation)
    assert network_state_to_dict(recovered.state) == network_state_to_dict(scratch)


class TestCrashDuringResize:
    def test_crash_before_journal_recovers_old_size(self, tiny_tree, tmp_path):
        rid = crash_resize_at(FP_RESIZE_BEFORE_JOURNAL, tmp_path / "j", tiny_tree)
        recovered = recover(tmp_path / "j", tiny_tree)
        assert_exact_and_consistent(recovered, rid, OLD_N)
        assert sum(recovered.resize_counts.values()) == 0

    def test_crash_after_journal_recovers_new_size(self, tiny_tree, tmp_path):
        rid = crash_resize_at(FP_RESIZE_AFTER_JOURNAL, tmp_path / "j", tiny_tree)
        recovered = recover(tmp_path / "j", tiny_tree)
        assert_exact_and_consistent(recovered, rid, NEW_N)
        assert sum(recovered.resize_counts.values()) == 1

    def test_recovered_service_accepts_further_resizes(self, tiny_tree, tmp_path):
        rid = crash_resize_at(FP_RESIZE_AFTER_JOURNAL, tmp_path / "j", tiny_tree)
        store = DurabilityStore(tmp_path / "j")
        recovered, _report = recover_manager(store, tiny_tree)
        with AdmissionService(recovered, store=store, workers=1) as service:
            decision = service.resize(rid, new_n=2)
            assert decision["outcome"] in ("in_place", "replaced")
            assert recovered.tenancy(rid).n_vms == 2
        store.close()
