"""Unit tests of the failpoint registry: triggers, modes, specs, seeding."""

import pytest

from repro.faults.failpoints import (
    FP_JOURNAL_WRITE,
    MODE_CORRUPT,
    MODE_CRASH,
    MODE_DELAY,
    MODE_ERROR,
    MODE_SHED,
    FailpointError,
    FailpointRegistry,
    InjectedCrash,
    arm_from_spec,
    parse_failpoint_spec,
)


class TestTriggering:
    def test_unarmed_hit_is_a_noop(self):
        registry = FailpointRegistry()
        assert registry.hit("journal.write") is None

    def test_error_mode_raises_oserror(self):
        registry = FailpointRegistry()
        registry.arm("journal.write", MODE_ERROR)
        with pytest.raises(FailpointError) as excinfo:
            registry.hit("journal.write")
        assert isinstance(excinfo.value, OSError)
        point = registry.get("journal.write")
        assert (point.calls, point.triggered) == (1, 1)

    def test_every_n_is_deterministic(self):
        registry = FailpointRegistry()
        registry.arm("x", MODE_SHED, every=3)
        fired = [registry.hit("x") is not None for _ in range(9)]
        assert fired == [False, False, True] * 3

    def test_max_hits_caps_triggers(self):
        registry = FailpointRegistry()
        registry.arm("x", MODE_SHED, every=1, max_hits=2)
        fired = [registry.hit("x") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_probability_zero_never_fires(self):
        registry = FailpointRegistry()
        registry.arm("x", MODE_ERROR, probability=0.0)
        for _ in range(50):
            assert registry.hit("x") is None

    def test_seeded_probability_is_reproducible(self):
        def pattern(seed):
            registry = FailpointRegistry(seed=seed)
            registry.arm("x", MODE_SHED, probability=0.5)
            return [registry.hit("x") is not None for _ in range(40)]

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)  # and the seed actually matters

    def test_delay_mode_sleeps_and_falls_through(self):
        registry = FailpointRegistry()
        registry.arm("x", MODE_DELAY, delay_s=1.25)
        slept = []
        point = registry.hit("x", sleep=slept.append)
        assert point is not None
        assert slept == [1.25]

    def test_corrupt_mode_returns_point_for_the_call_site(self):
        registry = FailpointRegistry()
        registry.arm("x", MODE_CORRUPT)
        point = registry.hit("x")
        assert point is not None and point.mode == MODE_CORRUPT


class TestCrashMode:
    def test_crash_raises_injected_crash(self):
        registry = FailpointRegistry()
        registry.arm("x", MODE_CRASH)
        with pytest.raises(InjectedCrash):
            registry.hit("x")

    def test_injected_crash_evades_generic_except_exception(self):
        # The whole point of deriving from BaseException: recovery code's
        # defensive handlers must not swallow a simulated power cut.
        assert not issubclass(InjectedCrash, Exception)

    def test_clear_resets_crash_mode(self):
        registry = FailpointRegistry()
        registry.crash_mode = "exit"
        registry.clear()
        assert registry.crash_mode == "raise"

    def test_disarm_and_describe(self):
        registry = FailpointRegistry()
        registry.arm("a", MODE_ERROR)
        registry.arm("b", MODE_SHED, every=2)
        assert {p["name"] for p in registry.describe()} == {"a", "b"}
        registry.disarm("a")
        assert not registry.armed("a")
        assert registry.armed("b")


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint mode"):
            FailpointRegistry().arm("x", "explode")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FailpointRegistry().arm("x", MODE_ERROR, probability=1.5)

    def test_bad_every_rejected(self):
        with pytest.raises(ValueError, match="every"):
            FailpointRegistry().arm("x", MODE_ERROR, every=0)


class TestSpecParsing:
    def test_single_spec(self):
        (arming,) = parse_failpoint_spec("journal.write=error:p=0.25")
        assert arming == {
            "name": "journal.write",
            "mode": "error",
            "probability": 0.25,
        }

    def test_multi_spec_with_options(self):
        armings = parse_failpoint_spec(
            "journal.write=corrupt:p=0.1, worker.crash_after_journal=crash:every=50:max_hits=1"
        )
        assert len(armings) == 2
        assert armings[1]["every"] == 50
        assert armings[1]["max_hits"] == 1

    @pytest.mark.parametrize(
        "spec",
        [
            "journal.write",  # no mode
            "journal.write=explode",  # unknown mode
            "journal.write=error:p=high",  # unparsable value
            "journal.write=error:frequency=2",  # unknown option
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_failpoint_spec(spec)

    def test_arm_from_spec_arms_everything(self):
        registry = FailpointRegistry()
        count = arm_from_spec(
            f"{FP_JOURNAL_WRITE}=error:p=0.5,queue.accept=shed", registry=registry
        )
        assert count == 2
        assert registry.armed(FP_JOURNAL_WRITE)
        assert registry.armed("queue.accept")


class TestMetricsMirror:
    def test_triggers_are_counted_on_the_global_registry(self):
        from repro.obs.instruments import global_registry

        registry = FailpointRegistry()
        registry.arm("x", MODE_SHED, every=1)
        registry.hit("x")
        snapshot = global_registry().snapshot()
        series = snapshot["repro_faults_injected_total"]["series"]
        values = {
            entry["labels"]["failpoint"]: entry["value"] for entry in series
        }
        assert values.get("x", 0) >= 1
