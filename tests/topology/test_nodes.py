"""Node and link value-type validation."""

import pytest

from repro.topology.nodes import Link, Node, NodeKind


class TestNode:
    def test_machine_at_level_zero(self):
        node = Node(node_id=0, kind=NodeKind.MACHINE, level=0, name="m", slot_capacity=4)
        assert node.is_machine
        assert not node.is_root or node.parent is None

    def test_machine_rejects_nonzero_level(self):
        with pytest.raises(ValueError):
            Node(node_id=0, kind=NodeKind.MACHINE, level=1, name="m", slot_capacity=4)

    def test_machine_requires_slots(self):
        with pytest.raises(ValueError):
            Node(node_id=0, kind=NodeKind.MACHINE, level=0, name="m", slot_capacity=0)

    def test_switch_rejects_level_zero(self):
        with pytest.raises(ValueError):
            Node(node_id=0, kind=NodeKind.SWITCH, level=0, name="s")

    def test_switch_rejects_slots(self):
        with pytest.raises(ValueError):
            Node(node_id=0, kind=NodeKind.SWITCH, level=1, name="s", slot_capacity=2)

    def test_root_detection(self):
        node = Node(node_id=0, kind=NodeKind.SWITCH, level=3, name="core")
        assert node.is_root
        node.parent = 7
        assert not node.is_root


class TestLink:
    def test_valid_link(self):
        link = Link(link_id=3, child=3, parent=9, capacity=1000.0)
        assert link.capacity == 1000.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Link(link_id=3, child=3, parent=9, capacity=0.0)

    def test_rejects_mismatched_id(self):
        with pytest.raises(ValueError):
            Link(link_id=4, child=3, parent=9, capacity=10.0)

    def test_frozen(self):
        link = Link(link_id=3, child=3, parent=9, capacity=10.0)
        with pytest.raises(AttributeError):
            link.capacity = 20.0
