"""Datacenter builder: paper topology dimensions and oversubscription math."""

import pytest

from repro.topology.builder import (
    DatacenterSpec,
    GBPS,
    PAPER_SPEC,
    SMALL_SPEC,
    TINY_SPEC,
    build_datacenter,
    build_two_machine_example,
)


class TestDatacenterSpec:
    def test_paper_dimensions(self):
        # Section VI-A: 20 machines/rack x 4 slots, 10 racks/agg, 5 aggs.
        assert PAPER_SPEC.num_machines == 1000
        assert PAPER_SPEC.total_slots == 4000

    def test_paper_link_capacities_at_oversub_2(self):
        # "the link bandwidth between a ToR switch and an aggregation switch
        # is 10Gbps and ... aggregation and the core switch is 50Gbps."
        assert PAPER_SPEC.oversubscription == 2.0
        assert PAPER_SPEC.tor_uplink_mbps == pytest.approx(10 * GBPS)
        assert PAPER_SPEC.agg_uplink_mbps == pytest.approx(50 * GBPS)

    def test_full_bisection_at_oversub_1(self):
        spec = PAPER_SPEC.with_oversubscription(1.0)
        assert spec.tor_uplink_mbps == pytest.approx(20 * GBPS)
        assert spec.agg_uplink_mbps == pytest.approx(200 * GBPS)

    def test_with_oversubscription_preserves_shape(self):
        spec = SMALL_SPEC.with_oversubscription(3.0)
        assert spec.num_machines == SMALL_SPEC.num_machines
        assert spec.oversubscription == 3.0

    def test_rejects_oversubscription_below_one(self):
        with pytest.raises(ValueError):
            DatacenterSpec(oversubscription=0.5)

    def test_rejects_zero_shape(self):
        with pytest.raises(ValueError):
            DatacenterSpec(pods=0)

    def test_rejects_nonpositive_link(self):
        with pytest.raises(ValueError):
            DatacenterSpec(machine_link_mbps=0.0)


class TestBuildDatacenter:
    @pytest.mark.parametrize("spec", [TINY_SPEC, SMALL_SPEC])
    def test_counts_match_spec(self, spec):
        tree = build_datacenter(spec)
        assert len(tree.machine_ids) == spec.num_machines
        assert tree.total_slots == spec.total_slots
        assert tree.height == 3

    def test_level_populations(self):
        tree = build_datacenter(TINY_SPEC)
        assert len(tree.nodes_at_level(0)) == TINY_SPEC.num_machines
        assert len(tree.nodes_at_level(1)) == TINY_SPEC.racks_per_pod * TINY_SPEC.pods
        assert len(tree.nodes_at_level(2)) == TINY_SPEC.pods
        assert len(tree.nodes_at_level(3)) == 1

    def test_link_capacities(self):
        tree = build_datacenter(TINY_SPEC)
        capacities = sorted({link.capacity for link in tree.links})
        assert capacities == sorted(
            {
                TINY_SPEC.machine_link_mbps,
                TINY_SPEC.tor_uplink_mbps,
                TINY_SPEC.agg_uplink_mbps,
            }
        )

    def test_every_machine_reaches_root(self):
        tree = build_datacenter(TINY_SPEC)
        for machine_id in tree.machine_ids:
            chain = tree.uplink_chain(machine_id)
            assert len(chain) == 3  # machine, ToR, agg
            assert tree.node(tree.link(chain[-1]).parent).is_root

    def test_paper_scale_builds(self):
        tree = build_datacenter(PAPER_SPEC)
        assert tree.num_nodes == 1000 + 50 + 5 + 1
        assert tree.num_links == 1055


class TestTwoMachineExample:
    def test_fig3_shape(self):
        tree = build_two_machine_example()
        assert len(tree.machine_ids) == 2
        assert tree.total_slots == 10
        assert all(link.capacity == 50.0 for link in tree.links)

    def test_custom_parameters(self):
        tree = build_two_machine_example(slots_per_machine=3, link_capacity=10.0)
        assert tree.total_slots == 6
        assert tree.min_machine_uplink_capacity == 10.0
