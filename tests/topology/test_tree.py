"""Tree construction, traversal, and path queries."""

import pytest

from repro.topology.tree import Tree
from tests.conftest import build_star_tree


def build_manual_two_rack() -> Tree:
    """Two racks of two machines under one core — hand-checkable paths."""
    tree = Tree()
    core = tree.add_switch("core", level=2)
    tor_a = tree.add_switch("torA", level=1)
    tor_b = tree.add_switch("torB", level=1)
    tree.attach(tor_a, core, 400.0)
    tree.attach(tor_b, core, 400.0)
    machines = {}
    for name, tor in (("a0", tor_a), ("a1", tor_a), ("b0", tor_b), ("b1", tor_b)):
        machine = tree.add_machine(name, slot_capacity=2)
        tree.attach(machine, tor, 100.0)
        machines[name] = machine
    tree.freeze()
    return tree, tor_a, tor_b, machines


class TestConstruction:
    def test_single_root_required(self):
        tree = Tree()
        tree.add_switch("s1", level=1)
        tree.add_switch("s2", level=1)
        with pytest.raises(ValueError):
            tree.freeze()

    def test_attach_rejects_second_parent(self):
        tree = Tree()
        s1 = tree.add_switch("s1", level=1)
        s2 = tree.add_switch("s2", level=2)
        m = tree.add_machine("m", slot_capacity=1)
        tree.attach(m, s1, 10.0)
        with pytest.raises(ValueError):
            tree.attach(m, s2, 10.0)

    def test_attach_rejects_inverted_levels(self):
        tree = Tree()
        low = tree.add_switch("low", level=1)
        high = tree.add_switch("high", level=2)
        with pytest.raises(ValueError):
            tree.attach(high, low, 10.0)

    def test_frozen_tree_rejects_mutation(self):
        tree = build_star_tree()
        with pytest.raises(RuntimeError):
            tree.add_machine("late", slot_capacity=1)

    def test_queries_require_freeze(self):
        tree = Tree()
        tree.add_switch("s", level=1)
        with pytest.raises(RuntimeError):
            _ = tree.root_id

    def test_freeze_idempotent(self):
        tree = build_star_tree()
        assert tree.freeze() is tree


class TestQueries:
    def test_star_shape(self):
        tree = build_star_tree(slots=(4, 4, 4), capacities=(100.0,) * 3)
        assert tree.height == 1
        assert tree.num_links == 3
        assert tree.total_slots == 12
        assert len(tree.machine_ids) == 3

    def test_two_rack_counts(self):
        tree, tor_a, tor_b, machines = build_manual_two_rack()
        assert tree.height == 2
        assert tree.num_nodes == 7
        assert tree.num_links == 6
        assert tree.slots_under(tor_a) == 4
        assert tree.slots_under(tree.root_id) == 8
        assert set(tree.machines_under(tor_b)) == {machines["b0"], machines["b1"]}

    def test_bottom_up_levels_order(self):
        tree, *_ = build_manual_two_rack()
        levels = [level for level, _nodes in tree.bottom_up_levels()]
        assert levels == [0, 1, 2]

    def test_uplink_chain(self):
        tree, tor_a, _tor_b, machines = build_manual_two_rack()
        chain = tree.uplink_chain(machines["a0"])
        assert chain == (machines["a0"], tor_a)

    def test_links_under_subtree(self):
        tree, tor_a, _tor_b, machines = build_manual_two_rack()
        links = {link.link_id for link in tree.links_under(tor_a)}
        assert links == {machines["a0"], machines["a1"]}

    def test_links_under_root_is_all(self):
        tree, *_ = build_manual_two_rack()
        assert len(list(tree.links_under(tree.root_id))) == tree.num_links

    def test_uplink_of_root_is_none(self):
        tree, *_ = build_manual_two_rack()
        assert tree.uplink(tree.root_id) is None

    def test_min_machine_uplink_capacity(self):
        tree = build_star_tree(slots=(1, 1), capacities=(100.0, 50.0))
        assert tree.min_machine_uplink_capacity == 50.0

    def test_describe_mentions_counts(self):
        tree, *_ = build_manual_two_rack()
        text = tree.describe()
        assert "machines=4" in text and "slots=8" in text


class TestPaths:
    def test_same_machine_is_empty(self):
        tree, _a, _b, machines = build_manual_two_rack()
        assert tree.path_links(machines["a0"], machines["a0"]) == ()

    def test_same_rack_path(self):
        tree, tor_a, _b, machines = build_manual_two_rack()
        path = tree.path_links(machines["a0"], machines["a1"])
        assert set(path) == {machines["a0"], machines["a1"]}

    def test_cross_rack_path(self):
        tree, tor_a, tor_b, machines = build_manual_two_rack()
        path = tree.path_links(machines["a0"], machines["b1"])
        assert set(path) == {machines["a0"], tor_a, tor_b, machines["b1"]}

    def test_path_symmetry(self):
        tree, _a, _b, machines = build_manual_two_rack()
        fwd = tree.path_links(machines["a0"], machines["b0"])
        bwd = tree.path_links(machines["b0"], machines["a0"])
        assert set(fwd) == set(bwd)

    def test_paths_never_contain_root_uplink(self):
        tree, *_rest, machines = build_manual_two_rack()
        for a in machines.values():
            for b in machines.values():
                assert tree.root_id not in tree.path_links(a, b)
