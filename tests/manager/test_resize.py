"""Elastic resize at the manager layer: outcomes, exactness, bookkeeping.

The anchor property (the PR's acceptance criterion) is
:class:`TestResizeExactness`: after any sequence of grow/shrink resizes,
the live ``NetworkState`` — mutated incrementally through per-link Eq. (6)
occupancy deltas — must be field-for-field identical to a from-scratch
state that commits the surviving allocations once.  Incremental and
recomputed occupancy may never drift apart.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.manager.network_manager import (
    RESIZE_IN_PLACE,
    RESIZE_REJECTED,
    NetworkManager,
)
from repro.network import NetworkState
from repro.service.codec import network_state_to_dict
from repro.stochastic import Normal


def recomputed_fingerprint(manager: NetworkManager):
    """A from-scratch state committing the live tenancies once, serialized."""
    state = NetworkState(manager.state.tree, epsilon=manager.epsilon)
    for tenancy in sorted(manager.tenancies(), key=lambda t: t.request_id):
        state.commit(tenancy.allocation)
    return network_state_to_dict(state)


def assert_no_drift(manager: NetworkManager) -> None:
    assert network_state_to_dict(manager.state) == recomputed_fingerprint(manager)


class TestResizeOutcomes:
    def test_shrink_in_place_releases_highest_vms(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        tenancy = manager.request(HomogeneousSVC(n_vms=4, mean=40.0, std=8.0))
        before_machines = list(tenancy.vm_machines)
        result = manager.resize(tenancy.request_id, new_n=2)
        assert result.outcome == RESIZE_IN_PLACE
        after = manager.tenancy(tenancy.request_id)
        assert after.n_vms == 2
        # The surviving VMs keep their machines; the highest indices left.
        assert after.vm_machines == before_machines[:2]
        assert_no_drift(manager)

    def test_grow_beyond_host_subtree_replaces(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        tenancy = manager.request(HomogeneousSVC(n_vms=4, mean=40.0, std=8.0))
        result = manager.resize(tenancy.request_id, new_n=10)
        assert result.accepted
        after = manager.tenancy(tenancy.request_id)
        assert after.n_vms == 10
        assert after.request.n_vms == 10
        assert_no_drift(manager)

    def test_resize_mu_sigma_in_place(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        tenancy = manager.request(HomogeneousSVC(n_vms=4, mean=40.0, std=8.0))
        result = manager.resize(tenancy.request_id, new_mu=55.0, new_sigma=12.0)
        assert result.outcome == RESIZE_IN_PLACE
        after = manager.tenancy(tenancy.request_id)
        assert after.request.mean == 55.0
        assert after.request.std == 12.0
        assert after.n_vms == 4
        assert_no_drift(manager)

    def test_noop_resize_short_circuits(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        tenancy = manager.request(HomogeneousSVC(n_vms=4, mean=40.0, std=8.0))
        before = network_state_to_dict(manager.state)
        result = manager.resize(tenancy.request_id, new_n=4)
        assert result.outcome == RESIZE_IN_PLACE
        assert result.detail == "no change"
        assert network_state_to_dict(manager.state) == before

    def test_infeasible_grow_rejected_and_state_untouched(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        tenancy = manager.request(HomogeneousSVC(n_vms=4, mean=40.0, std=8.0))
        before = network_state_to_dict(manager.state)
        result = manager.resize(
            tenancy.request_id, new_n=manager.state.total_slots + 1
        )
        assert result.outcome == RESIZE_REJECTED
        assert not result.accepted
        assert manager.tenancy(tenancy.request_id).n_vms == 4
        assert network_state_to_dict(manager.state) == before

    def test_unknown_request_raises(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        with pytest.raises(KeyError):
            manager.resize(999, new_n=2)

    def test_deterministic_resize(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        tenancy = manager.request(DeterministicVC(n_vms=4, bandwidth=50.0))
        result = manager.resize(tenancy.request_id, new_n=2, new_mu=30.0)
        assert result.accepted
        after = manager.tenancy(tenancy.request_id)
        assert after.request.n_vms == 2
        assert after.request.bandwidth == 30.0
        with pytest.raises(ValueError):
            manager.resize(tenancy.request_id, new_sigma=5.0)
        assert_no_drift(manager)

    def test_heterogeneous_grow_appends_template_vms(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        demands = tuple(Normal(40.0 + 5.0 * i, 8.0) for i in range(4))
        tenancy = manager.request(HeterogeneousSVC(n_vms=4, demands=demands))
        result = manager.resize(tenancy.request_id, new_n=6)
        assert result.accepted
        after = manager.tenancy(tenancy.request_id)
        assert after.request.n_vms == 6
        assert after.request.demands[:4] == demands
        assert_no_drift(manager)

    def test_shrink_heterogeneous_truncates_demands(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        demands = tuple(Normal(40.0 + 5.0 * i, 8.0) for i in range(5))
        tenancy = manager.request(HeterogeneousSVC(n_vms=5, demands=demands))
        result = manager.resize(tenancy.request_id, new_n=3)
        assert result.accepted
        after = manager.tenancy(tenancy.request_id)
        assert after.request.demands == demands[:3]
        assert_no_drift(manager)


class TestResizeBookkeeping:
    def test_rate_caps_follow_the_resize(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        tenancy = manager.request(HomogeneousSVC(n_vms=4, mean=40.0, std=8.0))
        assert len(manager.rate_limiters) == 4
        manager.resize(tenancy.request_id, new_n=7)
        assert len(manager.rate_limiters) == 7
        manager.resize(tenancy.request_id, new_n=2)
        assert len(manager.rate_limiters) == 2
        manager.release(manager.tenancy(tenancy.request_id))
        assert len(manager.rate_limiters) == 0

    def test_resize_counts_separate_from_admissions(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        tenancy = manager.request(HomogeneousSVC(n_vms=4, mean=40.0, std=8.0))
        admitted, rejected = manager.admitted_count, manager.rejected_count
        manager.resize(tenancy.request_id, new_n=2)
        manager.resize(tenancy.request_id, new_n=10)
        manager.resize(tenancy.request_id, new_n=manager.state.total_slots + 1)
        assert manager.admitted_count == admitted
        assert manager.rejected_count == rejected
        assert manager.rejection_rate() == 0.0
        assert manager.resize_counts[RESIZE_IN_PLACE] >= 1
        assert manager.resize_counts[RESIZE_REJECTED] == 1
        assert sum(manager.resize_counts.values()) == 3

    def test_resize_rejection_not_attributed_to_dispatch(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        tenancy = manager.request(HomogeneousSVC(n_vms=4, mean=40.0, std=8.0))
        manager.resize(tenancy.request_id, new_n=manager.state.total_slots + 1)
        assert manager.rejections_by_allocator == {}
        assert manager.last_rejection_allocator is None

    def test_resized_tenancy_releases_cleanly(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        pristine = network_state_to_dict(manager.state)
        tenancy = manager.request(HomogeneousSVC(n_vms=4, mean=40.0, std=8.0))
        manager.resize(tenancy.request_id, new_n=9)
        manager.release(manager.tenancy(tenancy.request_id))
        assert manager.active_tenancies == 0
        assert network_state_to_dict(manager.state) == pristine


class TestResizeExactness:
    """Acceptance criterion: incremental Eq. (6) updates never drift."""

    @given(
        resizes=st.lists(
            st.tuples(st.integers(0, 2), st.integers(1, 12)),
            min_size=1,
            max_size=12,
        )
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_grow_shrink_matches_recompute(self, tiny_tree, resizes):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        ids = [
            manager.request(
                HomogeneousSVC(n_vms=3 + i, mean=40.0 + 10.0 * i, std=8.0)
            ).request_id
            for i in range(3)
        ]
        for index, new_n in resizes:
            result = manager.resize(ids[index], new_n=new_n)
            if result.accepted:
                # Eq. (6) occupancy after the incremental commit must equal
                # a from-scratch recompute of the surviving allocations.
                assert_no_drift(manager)
                # And the admission invariant must still hold everywhere.
                assert manager.max_occupancy() < 1.0
        assert_no_drift(manager)
