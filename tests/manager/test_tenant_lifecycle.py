"""Tenant-lifecycle bug sweep: residue after churn, batch-context parity.

Two regressions pinned here:

* **Release-path residue** — a tenant that leaves (``release``) after
  arriving via either ``request`` or ``adopt`` must take *everything* with
  it: link state, the tenancy entry, and its rate-limiter registrations.
  The 1,000-cycle loop amplifies any per-cycle leak until it is visible.
* **Batch-context invalidation across releases** — a long-lived
  :class:`BatchContext` caches DP tables keyed by network state; a release
  moves the state underneath it without a ``note_commit``.  The context
  contract requires bit-identical decisions anyway, which the recorded
  interleaved trace checks against a sequential (context-free) replay.
"""

from __future__ import annotations

import random

from repro.abstractions import HomogeneousSVC
from repro.manager.network_manager import NetworkManager
from repro.service.codec import network_state_to_dict


class TestReleaseResidue:
    def test_thousand_adopt_release_cycles_leave_no_residue(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        pristine = network_state_to_dict(manager.state)

        seed_tenancy = manager.request(HomogeneousSVC(n_vms=5, mean=60.0, std=15.0))
        assert seed_tenancy is not None
        allocation = seed_tenancy.allocation
        manager.release(seed_tenancy)

        for cycle in range(1000):
            tenancy = manager.adopt(allocation)
            assert len(manager.rate_limiters) == 5
            if cycle % 100 == 0:
                # vm_machines must be rebuilt consistently every adoption.
                assert len(tenancy.vm_machines) == 5
                counts = {}
                for machine in tenancy.vm_machines:
                    counts[machine] = counts.get(machine, 0) + 1
                assert counts == dict(allocation.machine_counts)
            manager.release(tenancy)
            assert manager.active_tenancies == 0

        assert len(manager.rate_limiters) == 0
        assert network_state_to_dict(manager.state) == pristine

    def test_request_release_churn_leaves_no_residue(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        pristine = network_state_to_dict(manager.state)
        rng = random.Random(7)
        live = []
        for _ in range(1000):
            if live and rng.random() < 0.5:
                manager.release(live.pop(rng.randrange(len(live))))
            else:
                tenancy = manager.request(
                    HomogeneousSVC(
                        n_vms=rng.randint(1, 6),
                        mean=float(rng.randint(20, 80)),
                        std=10.0,
                    )
                )
                if tenancy is not None:
                    live.append(tenancy)
            expected_vms = sum(t.n_vms for t in live)
            assert len(manager.rate_limiters) == expected_vms
        for tenancy in live:
            manager.release(tenancy)
        assert len(manager.rate_limiters) == 0
        assert network_state_to_dict(manager.state) == pristine


class TestBatchContextAcrossReleases:
    def trace(self, rng):
        """A recorded admit/release trace; ``None`` marks a release slot."""
        ops = []
        for _ in range(40):
            if ops and rng.random() < 0.35:
                ops.append(None)
            else:
                ops.append(
                    HomogeneousSVC(
                        n_vms=rng.randint(1, 8),
                        mean=float(rng.randint(20, 90)),
                        std=float(rng.randint(5, 25)),
                    )
                )
        return ops

    def replay(self, tree, ops, use_batch):
        """Run the trace; releases always pick the oldest live tenant."""
        manager = NetworkManager(tree, epsilon=0.05)
        batch = manager.batch_context() if use_batch else None
        decisions = []
        live = []
        for op in ops:
            if op is None:
                if live:
                    manager.release(live.pop(0))
                decisions.append("release")
            else:
                tenancy = manager.request(op, batch=batch)
                if tenancy is None:
                    decisions.append(None)
                else:
                    live.append(tenancy)
                    decisions.append(
                        (tenancy.request_id, dict(tenancy.allocation.machine_counts))
                    )
        return decisions, network_state_to_dict(manager.state)

    def test_interleaved_releases_match_sequential_execution(self, tiny_tree):
        for seed in (1, 2, 3):
            ops = self.trace(random.Random(seed))
            batched = self.replay(tiny_tree, ops, use_batch=True)
            sequential = self.replay(tiny_tree, ops, use_batch=False)
            # Decision-for-decision and link-state parity: the DP caches in
            # the batch context must be invalidated by every release that
            # moves the state underneath them.
            assert batched[0] == sequential[0]
            assert batched[1] == sequential[1]
