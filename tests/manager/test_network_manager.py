"""Network manager: admission lifecycle, counters, mixed tenancy."""

import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.allocation import AdaptedTIVCAllocator
from repro.manager import NetworkManager
from repro.manager.network_manager import Tenancy
from repro.service.codec import network_state_to_dict


class TestAdmission:
    def test_admit_and_release(self, tiny_tree, homogeneous_request):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(homogeneous_request)
        assert tenancy is not None
        assert manager.active_tenancies == 1
        assert manager.admitted_count == 1
        manager.release(tenancy)
        assert manager.active_tenancies == 0
        assert manager.state.is_pristine()

    def test_vm_machines_view(self, tiny_tree, homogeneous_request):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(homogeneous_request)
        assert len(tenancy.vm_machines) == homogeneous_request.n_vms
        counts = {}
        for machine in tenancy.vm_machines:
            counts[machine] = counts.get(machine, 0) + 1
        assert counts == tenancy.allocation.machine_counts

    def test_rejection_counted(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        impossible = HomogeneousSVC(n_vms=tiny_tree.total_slots + 1, mean=1.0, std=0.0)
        assert manager.request(impossible) is None
        assert manager.rejected_count == 1
        assert manager.rejection_rate() == 1.0

    def test_rejection_rate_mixed(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        assert manager.request(HomogeneousSVC(n_vms=2, mean=10.0, std=1.0)) is not None
        assert manager.request(HomogeneousSVC(n_vms=999, mean=10.0, std=1.0)) is None
        assert manager.rejection_rate() == pytest.approx(0.5)

    def test_release_unknown_raises(self, tiny_tree, homogeneous_request):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(homogeneous_request)
        manager.release(tenancy)
        with pytest.raises(KeyError):
            manager.release(tenancy)

    def test_request_ids_unique(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        a = manager.request(HomogeneousSVC(n_vms=2, mean=10.0, std=1.0))
        b = manager.request(HomogeneousSVC(n_vms=2, mean=10.0, std=1.0))
        assert a.request_id != b.request_id

    def test_tenancy_lookup(self, tiny_tree, homogeneous_request):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(homogeneous_request)
        assert manager.tenancy(tenancy.request_id) is tenancy

    def test_custom_epsilon(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.02)
        assert manager.epsilon == 0.02
        assert manager.state.risk_c == pytest.approx(2.0537, abs=1e-3)

    def test_custom_allocator(self, tiny_tree, homogeneous_request):
        manager = NetworkManager(tiny_tree, allocator=AdaptedTIVCAllocator())
        assert manager.request(homogeneous_request) is not None


class TestMixedTenancy:
    def test_deterministic_and_stochastic_coexist(self, tiny_tree):
        # Section III-A: "The deterministic and stochastic bandwidth
        # requirements can co-exist in the datacenters."
        manager = NetworkManager(tiny_tree)
        det = manager.request(DeterministicVC(n_vms=8, bandwidth=150.0))
        svc = manager.request(HomogeneousSVC(n_vms=8, mean=150.0, std=60.0))
        het = manager.request(
            HeterogeneousSVC.uniform(4, mean=100.0, std=30.0)
        )
        assert det is not None and svc is not None and het is not None
        assert manager.active_tenancies == 3
        # Deterministic reservations shrink the stochastic share somewhere.
        assert any(
            state.deterministic_total > 0.0 for state in manager.state.links.values()
        )
        assert any(
            state.num_stochastic_demands > 0 for state in manager.state.links.values()
        )
        for tenancy in (det, svc, het):
            manager.release(tenancy)
        assert manager.state.is_pristine()

    def test_deterministic_reservation_reduces_admission(self, tiny_tree):
        # Fill with VC reservations; identical SVC requests then see less
        # sharing bandwidth than on an empty network.
        fresh = NetworkManager(tiny_tree)
        empty_count = 0
        while fresh.request(HomogeneousSVC(n_vms=4, mean=400.0, std=100.0)):
            empty_count += 1
            assert empty_count < 64
        loaded = NetworkManager(tiny_tree)
        for _ in range(8):
            loaded.request(DeterministicVC(n_vms=4, bandwidth=400.0))
        loaded_count = 0
        while loaded.request(HomogeneousSVC(n_vms=4, mean=400.0, std=100.0)):
            loaded_count += 1
            assert loaded_count < 64
        assert loaded_count < empty_count

    def test_max_occupancy_reflects_load(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        assert manager.max_occupancy() == 0.0
        manager.request(HomogeneousSVC(n_vms=10, mean=200.0, std=50.0))
        assert 0.0 < manager.max_occupancy() < 1.0


class TestAtomicRelease:
    def test_invalid_release_leaves_state_untouched(self, tiny_tree):
        # NetworkState.release validates every slot count before mutating
        # anything, so a bogus release must not strand partial link state.
        manager = NetworkManager(tiny_tree)
        # 8 VMs span two machines, so the keeper loads at least one link.
        keeper = manager.request(HomogeneousSVC(n_vms=8, mean=100.0, std=30.0))
        victim = manager.request(HomogeneousSVC(n_vms=4, mean=100.0, std=30.0))
        manager.state.release(victim.allocation)
        before = network_state_to_dict(manager.state)
        with pytest.raises(ValueError):
            manager.state.release(victim.allocation)  # double free: overflow
        assert network_state_to_dict(manager.state) == before
        assert manager.state.occupancy_of(
            next(iter(keeper.allocation.link_demands))
        ) > 0.0

    def test_release_of_stale_handle_uses_stored_allocation(self, tiny_tree):
        # A caller-held Tenancy object is only a key; the manager releases
        # the allocation it stored at admit time.
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(HomogeneousSVC(n_vms=3, mean=80.0, std=20.0))
        stale = Tenancy(allocation=tenancy.allocation)
        manager.release(stale)
        assert manager.active_tenancies == 0
        assert manager.state.is_pristine()

    def test_failed_release_keeps_tenancy_active(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(HomogeneousSVC(n_vms=3, mean=80.0, std=20.0))
        manager.state.release(tenancy.allocation)  # corrupt behind its back
        with pytest.raises(ValueError):
            manager.release(tenancy)
        # The tenancy entry and its rate limiters survived the failure.
        assert manager.get_tenancy(tenancy.request_id) is tenancy
        assert manager.active_tenancies == 1


class TestAdopt:
    def test_adopt_recommits_and_bumps_id_cursor(self, tiny_tree):
        source = NetworkManager(tiny_tree)
        tenancy = source.request(HomogeneousSVC(n_vms=4, mean=120.0, std=40.0))
        fresh = NetworkManager(tiny_tree)
        adopted = fresh.adopt(tenancy.allocation)
        assert adopted.request_id == tenancy.request_id
        assert fresh.next_request_id == tenancy.request_id + 1
        assert network_state_to_dict(fresh.state) == network_state_to_dict(source.state)
        assert adopted.vm_machines == tenancy.vm_machines

    def test_adopt_does_not_touch_counters(self, tiny_tree):
        source = NetworkManager(tiny_tree)
        tenancy = source.request(HomogeneousSVC(n_vms=4, mean=120.0, std=40.0))
        fresh = NetworkManager(tiny_tree)
        fresh.adopt(tenancy.allocation)
        assert fresh.admitted_count == 0
        assert fresh.rejected_count == 0

    def test_adopt_duplicate_rejected(self, tiny_tree):
        source = NetworkManager(tiny_tree)
        tenancy = source.request(HomogeneousSVC(n_vms=4, mean=120.0, std=40.0))
        fresh = NetworkManager(tiny_tree)
        fresh.adopt(tenancy.allocation)
        with pytest.raises(ValueError, match="already active"):
            fresh.adopt(tenancy.allocation)

    def test_adopted_tenancy_releases_cleanly(self, tiny_tree):
        source = NetworkManager(tiny_tree)
        tenancy = source.request(DeterministicVC(n_vms=4, bandwidth=100.0))
        fresh = NetworkManager(tiny_tree)
        adopted = fresh.adopt(tenancy.allocation)
        assert fresh.rate_limiters.cap(adopted.request_id, 0) == 100.0
        fresh.release(adopted)
        assert fresh.state.is_pristine()
        assert len(fresh.rate_limiters) == 0

    def test_id_cursor_never_moves_backwards(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        manager.next_request_id = 10
        with pytest.raises(ValueError, match="backwards"):
            manager.next_request_id = 5


class TestRateLimiterIntegration:
    def test_deterministic_vm_capped(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(DeterministicVC(n_vms=4, bandwidth=123.0))
        for vm in range(4):
            assert manager.rate_limiters.cap(tenancy.request_id, vm) == 123.0

    def test_stochastic_vm_uncapped(self, tiny_tree, homogeneous_request):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(homogeneous_request)
        assert manager.rate_limiters.cap(tenancy.request_id, 0) == float("inf")

    def test_caps_removed_on_release(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(DeterministicVC(n_vms=4, bandwidth=123.0))
        manager.release(tenancy)
        assert len(manager.rate_limiters) == 0
        assert manager.rate_limiters.cap(tenancy.request_id, 0) == float("inf")
