"""Network manager: admission lifecycle, counters, mixed tenancy."""

import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.allocation import AdaptedTIVCAllocator
from repro.manager import NetworkManager


class TestAdmission:
    def test_admit_and_release(self, tiny_tree, homogeneous_request):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(homogeneous_request)
        assert tenancy is not None
        assert manager.active_tenancies == 1
        assert manager.admitted_count == 1
        manager.release(tenancy)
        assert manager.active_tenancies == 0
        assert manager.state.is_pristine()

    def test_vm_machines_view(self, tiny_tree, homogeneous_request):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(homogeneous_request)
        assert len(tenancy.vm_machines) == homogeneous_request.n_vms
        counts = {}
        for machine in tenancy.vm_machines:
            counts[machine] = counts.get(machine, 0) + 1
        assert counts == tenancy.allocation.machine_counts

    def test_rejection_counted(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        impossible = HomogeneousSVC(n_vms=tiny_tree.total_slots + 1, mean=1.0, std=0.0)
        assert manager.request(impossible) is None
        assert manager.rejected_count == 1
        assert manager.rejection_rate() == 1.0

    def test_rejection_rate_mixed(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        assert manager.request(HomogeneousSVC(n_vms=2, mean=10.0, std=1.0)) is not None
        assert manager.request(HomogeneousSVC(n_vms=999, mean=10.0, std=1.0)) is None
        assert manager.rejection_rate() == pytest.approx(0.5)

    def test_release_unknown_raises(self, tiny_tree, homogeneous_request):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(homogeneous_request)
        manager.release(tenancy)
        with pytest.raises(KeyError):
            manager.release(tenancy)

    def test_request_ids_unique(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        a = manager.request(HomogeneousSVC(n_vms=2, mean=10.0, std=1.0))
        b = manager.request(HomogeneousSVC(n_vms=2, mean=10.0, std=1.0))
        assert a.request_id != b.request_id

    def test_tenancy_lookup(self, tiny_tree, homogeneous_request):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(homogeneous_request)
        assert manager.tenancy(tenancy.request_id) is tenancy

    def test_custom_epsilon(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.02)
        assert manager.epsilon == 0.02
        assert manager.state.risk_c == pytest.approx(2.0537, abs=1e-3)

    def test_custom_allocator(self, tiny_tree, homogeneous_request):
        manager = NetworkManager(tiny_tree, allocator=AdaptedTIVCAllocator())
        assert manager.request(homogeneous_request) is not None


class TestMixedTenancy:
    def test_deterministic_and_stochastic_coexist(self, tiny_tree):
        # Section III-A: "The deterministic and stochastic bandwidth
        # requirements can co-exist in the datacenters."
        manager = NetworkManager(tiny_tree)
        det = manager.request(DeterministicVC(n_vms=8, bandwidth=150.0))
        svc = manager.request(HomogeneousSVC(n_vms=8, mean=150.0, std=60.0))
        het = manager.request(
            HeterogeneousSVC.uniform(4, mean=100.0, std=30.0)
        )
        assert det is not None and svc is not None and het is not None
        assert manager.active_tenancies == 3
        # Deterministic reservations shrink the stochastic share somewhere.
        assert any(
            state.deterministic_total > 0.0 for state in manager.state.links.values()
        )
        assert any(
            state.num_stochastic_demands > 0 for state in manager.state.links.values()
        )
        for tenancy in (det, svc, het):
            manager.release(tenancy)
        assert manager.state.is_pristine()

    def test_deterministic_reservation_reduces_admission(self, tiny_tree):
        # Fill with VC reservations; identical SVC requests then see less
        # sharing bandwidth than on an empty network.
        fresh = NetworkManager(tiny_tree)
        empty_count = 0
        while fresh.request(HomogeneousSVC(n_vms=4, mean=400.0, std=100.0)):
            empty_count += 1
            assert empty_count < 64
        loaded = NetworkManager(tiny_tree)
        for _ in range(8):
            loaded.request(DeterministicVC(n_vms=4, bandwidth=400.0))
        loaded_count = 0
        while loaded.request(HomogeneousSVC(n_vms=4, mean=400.0, std=100.0)):
            loaded_count += 1
            assert loaded_count < 64
        assert loaded_count < empty_count

    def test_max_occupancy_reflects_load(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        assert manager.max_occupancy() == 0.0
        manager.request(HomogeneousSVC(n_vms=10, mean=200.0, std=50.0))
        assert 0.0 < manager.max_occupancy() < 1.0


class TestRateLimiterIntegration:
    def test_deterministic_vm_capped(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(DeterministicVC(n_vms=4, bandwidth=123.0))
        for vm in range(4):
            assert manager.rate_limiters.cap(tenancy.request_id, vm) == 123.0

    def test_stochastic_vm_uncapped(self, tiny_tree, homogeneous_request):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(homogeneous_request)
        assert manager.rate_limiters.cap(tenancy.request_id, 0) == float("inf")

    def test_caps_removed_on_release(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(DeterministicVC(n_vms=4, bandwidth=123.0))
        manager.release(tenancy)
        assert len(manager.rate_limiters) == 0
        assert manager.rate_limiters.cap(tenancy.request_id, 0) == float("inf")
