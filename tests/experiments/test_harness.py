"""The parallel/checkpointing harness against the sequential experiment paths.

The contract under test (see ``repro/experiments/harness.py``):

- ``run_experiments([x], workers=1)`` is the same code path as
  ``module.run()`` — identical tables, rich ``raw`` results;
- ``workers=2`` produces byte-identical formatted tables;
- a run directory checkpoints every cell, refuses reuse without ``resume``,
  resumes without recomputing finished cells, and invalidates checkpoints
  whose stored parameters no longer match the requested sweep.
"""

import json

import pytest

from repro.experiments import fig8_concurrency
from repro.experiments.cells import (
    Cell,
    CellOutcome,
    cell_filename,
    ordered_unique,
    run_cells_sequentially,
    unique_cells,
)
from repro.experiments.harness import (
    CellStore,
    RunDirError,
    module_for_experiment,
    run_experiments,
)
from repro.experiments.runner import EXPERIMENT_MODULES


def make_cell(key="SVC/load=0.6", experiment="fig8", seed=0, **params):
    return Cell(
        experiment=experiment, key=key, scale="tiny", seed=seed, params=params
    )


class TestCellPrimitives:
    def test_cell_json_roundtrip(self):
        cell = make_cell(load=0.6, label="SVC")
        assert Cell.from_json(cell.to_json()) == cell

    def test_colliding_slugs_get_distinct_filenames(self):
        # "a/b" and "a b" slugify identically; the CRC suffix disambiguates.
        first = cell_filename(make_cell(key="a/b"))
        second = cell_filename(make_cell(key="a b"))
        assert first.rsplit(".", 2)[0] == second.rsplit(".", 2)[0]
        assert first != second

    def test_filename_is_filesystem_safe(self):
        name = cell_filename(make_cell(key="SVC(eps=0.05)/load=0.6 %*?"))
        assert "/" not in name and " " not in name

    def test_unique_cells_rejects_duplicates(self):
        cell = make_cell()
        with pytest.raises(ValueError, match="duplicate cell"):
            unique_cells([cell, make_cell()])

    def test_ordered_unique_keeps_first_appearance(self):
        assert ordered_unique([0.4, 0.8, 0.4, 0.2]) == [0.4, 0.8, 0.2]

    def test_outcome_result_prefers_raw(self):
        payload = {"x": 1.0}
        assert CellOutcome(payload=payload).result == payload
        assert CellOutcome(payload=payload, raw="rich").result == "rich"

    def test_run_cells_sequentially_reports_to_observer(self):
        cells = [make_cell(key="a"), make_cell(key="b")]
        seen = []

        def fake_run(cell):
            return CellOutcome(payload={"key": cell.key})

        outcomes = run_cells_sequentially(
            cells, fake_run, observer=lambda c, o, s: seen.append((c.key, s))
        )
        assert sorted(outcomes) == ["a", "b"]
        assert [key for key, _seconds in seen] == ["a", "b"]
        assert all(seconds >= 0.0 for _key, seconds in seen)


class TestModuleDispatch:
    def test_every_registered_module_is_dispatchable(self):
        for module in EXPERIMENT_MODULES.values():
            assert module_for_experiment(module.EXPERIMENT) is module

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="fig99"):
            module_for_experiment("fig99")


class TestCellStore:
    def test_fresh_dir_gets_manifest(self, tmp_path):
        run_dir = tmp_path / "run"
        CellStore(run_dir, "tiny", 0)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["scale"] == "tiny"
        assert manifest["seed"] == 0

    def test_save_load_roundtrip(self, tmp_path):
        store = CellStore(tmp_path / "run", "tiny", 0)
        cell = make_cell(load=0.6)
        store.save(cell, {"value": 1.25}, seconds=0.1)
        assert store.load(cell) == {"value": 1.25}
        assert store.resumed_cells == 1

    def test_nonempty_dir_refused_without_resume(self, tmp_path):
        CellStore(tmp_path / "run", "tiny", 0)
        with pytest.raises(RunDirError, match="--resume"):
            CellStore(tmp_path / "run", "tiny", 0)

    def test_resume_with_matching_manifest_allowed(self, tmp_path):
        CellStore(tmp_path / "run", "tiny", 0)
        CellStore(tmp_path / "run", "tiny", 0, resume=True)

    def test_resume_with_mismatched_seed_refused(self, tmp_path):
        CellStore(tmp_path / "run", "tiny", 0)
        with pytest.raises(RunDirError, match="seed"):
            CellStore(tmp_path / "run", "tiny", 7, resume=True)

    def test_resume_with_mismatched_scale_refused(self, tmp_path):
        CellStore(tmp_path / "run", "tiny", 0)
        with pytest.raises(RunDirError, match="scale"):
            CellStore(tmp_path / "run", "small", 0, resume=True)

    def test_resume_into_foreign_dir_refused(self, tmp_path):
        foreign = tmp_path / "foreign"
        foreign.mkdir()
        (foreign / "notes.txt").write_text("not a run dir")
        with pytest.raises(RunDirError, match="manifest"):
            CellStore(foreign, "tiny", 0, resume=True)

    def test_parameter_drift_invalidates_checkpoint(self, tmp_path):
        store = CellStore(tmp_path / "run", "tiny", 0)
        store.save(make_cell(load=0.6), {"value": 1.0}, seconds=0.1)
        # Same key, different parameters: the stored payload answers a
        # different question and must not be resumed.
        assert store.load(make_cell(load=0.8)) is None

    def test_corrupt_checkpoint_recomputed(self, tmp_path):
        store = CellStore(tmp_path / "run", "tiny", 0)
        cell = make_cell(load=0.6)
        store.save(cell, {"value": 1.0}, seconds=0.1)
        path = store.run_dir / "cells" / cell.experiment / cell_filename(cell)
        path.write_text("{ truncated")
        assert store.load(cell) is None


@pytest.mark.slow
class TestHarnessEquivalence:
    @pytest.fixture(scope="class")
    def sequential(self):
        return fig8_concurrency.run(scale="tiny", seed=0)

    def test_workers1_matches_direct_run(self, sequential):
        (result,) = run_experiments(["fig8"], scale="tiny", seed=0)
        assert result.format() == sequential.format()

    def test_workers1_keeps_rich_raw_results(self):
        (result,) = run_experiments(["fig8"], scale="tiny", seed=0)
        for raw in result.raw.values():
            assert not isinstance(raw, dict)  # OnlineResult, not payload

    def test_workers2_matches_workers1(self, sequential):
        (result,) = run_experiments(["fig8"], scale="tiny", seed=0, workers=2)
        assert result.format() == sequential.format()

    def test_pooled_raw_is_payload(self):
        (result,) = run_experiments(["fig8"], scale="tiny", seed=0, workers=2)
        for raw in result.raw.values():
            assert isinstance(raw, dict)

    def test_derive_seed_matches_direct_run_at_that_seed(self):
        (derived,) = run_experiments(
            ["fig8"], scale="tiny", seed=0, derive_seed=lambda name: 5
        )
        assert derived.format() == fig8_concurrency.run(scale="tiny", seed=5).format()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_experiments(["fig8"], scale="tiny", workers=0)


@pytest.mark.slow
class TestHarnessResume:
    def test_resume_skips_finished_cells_and_recomputes_missing(self, tmp_path):
        run_dir = tmp_path / "run"
        (first,) = run_experiments(
            ["fig8"], scale="tiny", seed=0, run_dir=run_dir
        )
        checkpoints = sorted((run_dir / "cells" / "fig8").iterdir())
        assert len(checkpoints) == 2
        # Simulate a killed sweep: one finished cell survives, one is gone.
        survivor, casualty = checkpoints
        survivor_bytes = survivor.read_bytes()
        casualty.unlink()
        (resumed,) = run_experiments(
            ["fig8"], scale="tiny", seed=0, run_dir=run_dir, resume=True
        )
        assert resumed.format() == first.format()
        # The surviving checkpoint was reused verbatim, not rewritten.
        assert survivor.read_bytes() == survivor_bytes
        assert casualty.exists()

    def test_full_resume_runs_nothing(self, tmp_path, caplog):
        run_dir = tmp_path / "run"
        (first,) = run_experiments(["fig8"], scale="tiny", seed=0, run_dir=run_dir)
        with caplog.at_level("INFO", logger="repro.experiments.harness"):
            (resumed,) = run_experiments(
                ["fig8"], scale="tiny", seed=0, run_dir=run_dir, resume=True
            )
        assert resumed.format() == first.format()
        assert "2 resumed" in caplog.text

    def test_rundir_tables_match_plain_run(self, tmp_path):
        (checkpointed,) = run_experiments(
            ["fig8"], scale="tiny", seed=0, run_dir=tmp_path / "run"
        )
        assert (
            checkpointed.format()
            == fig8_concurrency.run(scale="tiny", seed=0).format()
        )

    def test_pooled_resume_matches(self, tmp_path):
        run_dir = tmp_path / "run"
        (first,) = run_experiments(
            ["fig8"], scale="tiny", seed=0, workers=2, run_dir=run_dir
        )
        for path in sorted((run_dir / "cells" / "fig8").iterdir())[:1]:
            path.unlink()
        (resumed,) = run_experiments(
            ["fig8"], scale="tiny", seed=0, workers=2, run_dir=run_dir, resume=True
        )
        assert resumed.format() == first.format()
