"""Result-table rendering and access."""

import pytest

from repro.experiments.tables import ExperimentResult, Table


class TestTable:
    def test_add_row_checks_arity(self):
        table = Table(title="t", headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_contains_everything(self):
        table = Table(title="Demo", headers=["model", "x"])
        table.add_row("svc", 1.5)
        text = table.format()
        assert "Demo" in text
        assert "model" in text
        assert "svc" in text
        assert "1.5" in text

    def test_float_rendering(self):
        assert Table._render(0.5) == "0.5"
        assert Table._render(123456.0) == "1.23e+05"
        assert Table._render(float("nan")) == "-"
        assert Table._render("text") == "text"
        assert Table._render(0.0) == "0"

    def test_column_access(self):
        table = Table(title="t", headers=["model", "x"])
        table.add_row("a", 1)
        table.add_row("b", 2)
        assert table.column("x") == [1, 2]

    def test_row_by_label(self):
        table = Table(title="t", headers=["model", "x"])
        table.add_row("a", 1)
        assert table.row_by_label("a") == ["a", 1]
        with pytest.raises(KeyError):
            table.row_by_label("missing")

    def test_experiment_result_format_joins_tables(self):
        t1 = Table(title="One", headers=["a"])
        t2 = Table(title="Two", headers=["b"])
        result = ExperimentResult(experiment="x", tables=[t1, t2])
        text = result.format()
        assert "One" in text and "Two" in text
