"""CSV / Markdown export of experiment results."""

import csv

import pytest

from repro.experiments.export import export_csv, export_markdown, table_to_markdown
from repro.experiments.tables import ExperimentResult, Table


@pytest.fixture()
def result():
    table = Table(title="Fig. X — demo (units)", headers=["model", "value"])
    table.add_row("svc", 1.25)
    table.add_row("tivc", 2.5)
    return ExperimentResult(experiment="figX", tables=[table])


class TestCsvExport:
    def test_writes_one_file_per_table(self, result, tmp_path):
        paths = export_csv(result, tmp_path)
        assert len(paths) == 1
        assert paths[0].name.startswith("figX__fig-x-demo")
        assert paths[0].suffix == ".csv"

    def test_roundtrip_content(self, result, tmp_path):
        (path,) = export_csv(result, tmp_path)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["model", "value"]
        assert rows[1] == ["svc", "1.25"]
        assert rows[2] == ["tivc", "2.5"]

    def test_creates_directory(self, result, tmp_path):
        target = tmp_path / "nested" / "dir"
        export_csv(result, target)
        assert target.is_dir()

    def test_multiple_tables(self, tmp_path):
        tables = [
            Table(title="One", headers=["a"]),
            Table(title="Two", headers=["b"]),
        ]
        result = ExperimentResult(experiment="multi", tables=tables)
        paths = export_csv(result, tmp_path)
        assert len(paths) == 2
        assert len({p.name for p in paths}) == 2

    def test_colliding_titles_do_not_overwrite(self, tmp_path):
        # These three titles all slugify to "same-title"; before the
        # suffixing fix, the last table silently clobbered the first two.
        tables = []
        for i, title in enumerate(["Same: Title!", "same title", "Same -- Title"]):
            table = Table(title=title, headers=[f"col{i}"])
            table.add_row(float(i))
            tables.append(table)
        result = ExperimentResult(experiment="dup", tables=tables)
        paths = export_csv(result, tmp_path)
        assert len(paths) == 3
        assert len({p.name for p in paths}) == 3
        assert all(p.exists() for p in paths)
        headers = []
        for path in paths:
            with path.open() as handle:
                headers.append(next(csv.reader(handle)))
        assert headers == [["col0"], ["col1"], ["col2"]]

    def test_collision_suffixes_are_numeric_and_ordered(self, tmp_path):
        tables = [Table(title="Dup", headers=["a"]) for _ in range(3)]
        result = ExperimentResult(experiment="e", tables=tables)
        paths = export_csv(result, tmp_path)
        assert [p.name for p in paths] == [
            "e__dup.csv", "e__dup-2.csv", "e__dup-3.csv",
        ]


class TestMarkdownExport:
    def test_table_markdown_shape(self, result):
        text = table_to_markdown(result.tables[0])
        lines = text.splitlines()
        assert lines[0].startswith("### Fig. X")
        assert lines[2] == "| model | value |"
        assert lines[3] == "|---|---|"
        assert "| svc | 1.25 |" in lines

    def test_report_contains_all_experiments(self, result, tmp_path):
        other = ExperimentResult(
            experiment="figY",
            tables=[Table(title="Other", headers=["x"])],
        )
        path = export_markdown([result, other], tmp_path / "report.md")
        text = path.read_text()
        assert "## figX" in text and "## figY" in text
        assert "### Other" in text
