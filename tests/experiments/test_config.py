"""Experiment scales and lookup."""

import pytest

from repro.experiments.config import PAPER_SCALE, SCALES, scale_by_name
from repro.topology.builder import PAPER_SPEC


class TestScales:
    def test_registry_names(self):
        assert set(SCALES) == {"tiny", "small", "paper"}

    def test_lookup(self):
        assert scale_by_name("paper") is PAPER_SCALE

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            scale_by_name("huge")

    def test_paper_scale_is_the_paper(self):
        assert PAPER_SCALE.spec is PAPER_SPEC
        assert PAPER_SCALE.num_jobs == 500
        assert PAPER_SCALE.mean_job_size == 49.0

    def test_workload_factory_overrides(self):
        config = SCALES["tiny"].workload(deviation=0.4)
        assert config.deviation == 0.4
        assert config.num_jobs == SCALES["tiny"].num_jobs

    def test_scales_ordered_by_size(self):
        assert (
            SCALES["tiny"].spec.total_slots
            < SCALES["small"].spec.total_slots
            < SCALES["paper"].spec.total_slots
        )
