"""Ablation experiments: epsilon knob and locality bias."""

import pytest

from repro.experiments import ablation_epsilon, ablation_locality

pytestmark = pytest.mark.slow


class TestEpsilonAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_epsilon.run(scale="tiny", seed=0, epsilons=(0.02, 0.1, 0.4))

    def test_one_row_per_epsilon(self, result):
        assert len(result.tables[0].rows) == 3

    def test_rejection_monotone_in_epsilon(self, result):
        # Looser risk -> smaller effective reservations -> fewer rejections.
        rejections = [row[1] for row in result.tables[0].rows]
        assert all(a >= b - 1e-9 for a, b in zip(rejections, rejections[1:]))

    def test_raw_results_keyed_by_epsilon(self, result):
        assert set(result.raw) == {0.02, 0.1, 0.4}


class TestLocalityAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_locality.run(scale="tiny", seed=0, loads=(0.6,))

    def test_two_rows(self, result):
        labels = [row[0] for row in result.tables[0].rows]
        assert labels == ["localized (Alg. 1)", "global min-max"]

    def test_global_occupancy_not_higher(self, result):
        # The global variant optimizes exactly this quantity.
        table = result.tables[0]
        localized = table.rows[0][3]
        global_ = table.rows[1][3]
        assert global_ <= localized + 1e-9

    def test_metrics_in_range(self, result):
        for row in result.tables[0].rows:
            assert 0.0 <= row[2] <= 100.0
            assert 0.0 <= row[3] < 1.0
