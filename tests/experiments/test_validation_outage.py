"""The outage-validation experiment (certifies Eq. 1 empirically)."""

import pytest

from repro.experiments import validation_outage

pytestmark = pytest.mark.slow


class TestValidationOutage:
    @pytest.fixture(scope="class")
    def result(self):
        return validation_outage.run(scale="tiny", seed=0, epsilons=(0.05, 0.2), load=0.8)

    def test_one_row_per_epsilon(self, result):
        assert len(result.tables[0].rows) == 2

    def test_bound_respected_at_tiny_scale(self, result):
        # The guarantee is conservative; at tiny scale outages are rare.
        for row in result.tables[0].rows:
            empirical = row[3]
            epsilon = float(row[0])
            assert empirical <= epsilon + 0.05  # generous slack for small samples

    def test_loaded_seconds_positive(self, result):
        for row in result.tables[0].rows:
            assert row[2] > 0

    def test_verdict_column(self, result):
        for row in result.tables[0].rows:
            assert row[4] in ("yes", "NO")
