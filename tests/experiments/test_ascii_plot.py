"""ASCII CDF rendering."""

import numpy as np
import pytest

from repro.experiments.ascii_plot import render_cdf


class TestRenderCdf:
    def test_contains_legend_and_axes(self):
        text = render_cdf({"A": [1.0, 2.0, 3.0]}, width=20, height=6)
        assert "o A" in text
        assert "1.00 |" in text
        assert "0.00 |" in text
        assert "+" + "-" * 20 in text

    def test_two_series_two_markers(self):
        text = render_cdf({"A": [1.0, 2.0], "B": [2.0, 3.0]}, width=20, height=6)
        assert "o A" in text and "x B" in text
        assert "o" in text.splitlines()[1] or any(
            "o" in line for line in text.splitlines()
        )

    def test_left_shifted_series_rises_earlier(self):
        # A's CDF reaches 1.0 while B's is still 0: in the top half of the
        # grid, A's marker must appear strictly left of B's.
        text = render_cdf(
            {"A": list(np.linspace(0, 1, 50)), "B": list(np.linspace(10, 11, 50))},
            width=40,
            height=8,
        )
        top_rows = text.splitlines()[:4]
        first_a = min((row.find("o") for row in top_rows if "o" in row), default=999)
        first_b = min((row.find("x") for row in top_rows if "x" in row), default=-1)
        assert first_a < first_b

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            render_cdf({})

    def test_rejects_too_many_series(self):
        series = {f"s{i}": [1.0] for i in range(7)}
        with pytest.raises(ValueError):
            render_cdf(series)

    def test_constant_series_renders(self):
        text = render_cdf({"A": [5.0, 5.0, 5.0]}, width=10, height=4)
        assert "o" in text

    def test_dimensions(self):
        text = render_cdf({"A": [1.0, 2.0]}, width=30, height=10)
        lines = text.splitlines()
        assert len(lines) == 10 + 3  # grid + axis + span + legend
        assert all(len(line) <= 6 + 30 + 40 for line in lines)
