"""Tiny-scale smoke + shape tests for every experiment module.

Each figure runner must produce a well-formed table; where the tiny scale is
statistically meaningful we also assert the paper's orderings.  (The full
shape validation lives in EXPERIMENTS.md at small/paper scale.)
"""

import pytest

from repro.experiments import (
    fig5_batch_oversub,
    fig6_runtime_vs_deviation,
    fig7_rejection_vs_load,
    fig8_concurrency,
    fig9_occupancy_cdf,
    fig10_svc_vs_tivc_rejection,
    het_vs_first_fit,
)
from repro.experiments.runner import EXPERIMENTS


pytestmark = pytest.mark.slow


def numeric(cells):
    return [value for value in cells if isinstance(value, float)]


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5_batch_oversub.run(scale="tiny", seed=0, oversubscriptions=(1.0, 2.0))

    def test_rows_and_columns(self, result):
        table = result.tables[0]
        assert [row[0] for row in table.rows] == [
            "mean-VC", "percentile-VC", "SVC(eps=0.05)", "SVC(eps=0.02)",
        ]
        assert len(table.headers) == 3

    def test_all_values_positive(self, result):
        for row in result.tables[0].rows:
            assert all(value > 0 for value in numeric(row[1:]))

    def test_batches_complete_and_bounded(self, result):
        # The mean-VC < SVC < percentile-VC makespan ordering requires
        # contention and is validated at small/paper scale (EXPERIMENTS.md);
        # the tiny run asserts structural facts: every scheduled job
        # completes and the makespan is at least the longest single job.
        for (label, _factor), res in result.raw.items():
            assert all(rec.completed for rec in res.records), label
            longest = max(rec.running_time for rec in res.records)
            assert res.makespan >= longest


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_runtime_vs_deviation.run(scale="tiny", seed=0, deviations=(0.2, 0.8))

    def test_shape(self, result):
        table = result.tables[0]
        assert len(table.rows) == 4
        for row in table.rows:
            assert all(value > 0 for value in numeric(row[1:]))

    def test_mean_vc_grows_with_deviation(self, result):
        row = numeric(result.tables[0].row_by_label("mean-VC")[1:])
        assert row[-1] >= row[0]

    def test_svc_flatter_than_mean_vc(self, result):
        table = result.tables[0]
        mean_growth = numeric(table.row_by_label("mean-VC")[1:])
        svc_growth = numeric(table.row_by_label("SVC(eps=0.05)")[1:])
        assert (svc_growth[-1] - svc_growth[0]) <= (mean_growth[-1] - mean_growth[0]) + 1e-9


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_rejection_vs_load.run(scale="tiny", seed=0, loads=(0.2, 0.8))

    def test_percentages(self, result):
        for row in result.tables[0].rows:
            assert all(0.0 <= value <= 100.0 for value in numeric(row[1:]))

    def test_mean_vc_rejects_least(self, result):
        table = result.tables[0]
        mean_row = numeric(table.row_by_label("mean-VC")[1:])
        for label in ("percentile-VC", "SVC(eps=0.05)", "SVC(eps=0.02)"):
            other = numeric(table.row_by_label(label)[1:])
            assert all(m <= o + 1e-9 for m, o in zip(mean_row, other))


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8_concurrency.run(scale="tiny", seed=0)

    def test_two_tables(self, result):
        assert len(result.tables) == 2

    def test_series_rows(self, result):
        series = result.tables[0]
        assert len(series.rows) == 2
        assert series.headers[-1] == "avg"

    def test_gain_metric_present(self, result):
        ratio = result.tables[1]
        labels = [row[0] for row in ratio.rows]
        assert "SVC gain (%)" in labels


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9_occupancy_cdf.run(scale="tiny", seed=0, loads=(0.6,))

    def test_rows_per_algorithm_and_load(self, result):
        table = result.tables[0]
        assert [row[0] for row in table.rows] == ["SVC", "TIVC"]

    def test_percentile_columns_monotone(self, result):
        for row in result.tables[0].rows:
            values = numeric(row[2:])
            assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_svc_not_worse_at_median(self, result):
        table = result.tables[0]
        median_idx = list(table.headers).index("p50")
        svc = table.row_by_label("SVC")[median_idx]
        tivc = table.row_by_label("TIVC")[median_idx]
        assert svc <= tivc + 1e-9


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_svc_vs_tivc_rejection.run(scale="tiny", seed=0, loads=(0.4, 0.8))

    def test_shape(self, result):
        table = result.tables[0]
        assert [row[0] for row in table.rows] == ["SVC", "TIVC"]
        for row in table.rows:
            assert all(0.0 <= value <= 100.0 for value in numeric(row[1:]))

    def test_rates_close(self, result):
        # "SVC and TIVC have almost the same rejection rates."
        table = result.tables[0]
        svc = numeric(table.row_by_label("SVC")[1:])
        tivc = numeric(table.row_by_label("TIVC")[1:])
        for s, t in zip(svc, tivc):
            assert abs(s - t) <= 25.0  # tiny scale is noisy; same ballpark


class TestHetVsFirstFit:
    @pytest.fixture(scope="class")
    def result(self):
        return het_vs_first_fit.run(scale="tiny", seed=0, loads=(0.6,))

    def test_two_tables(self, result):
        assert len(result.tables) == 2

    def test_occupancy_rows(self, result):
        table = result.tables[0]
        assert [row[0] for row in table.rows] == ["SVC-het", "first-fit"]

    def test_rejection_rows(self, result):
        table = result.tables[1]
        assert [row[0] for row in table.rows] == ["SVC-het", "first-fit"]


class TestRunnerRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "het",
            "ablation-epsilon", "ablation-locality", "validate-outage",
            "elastic-resize",
        }

    def test_format_renders(self):
        result = fig10_svc_vs_tivc_rejection.run(scale="tiny", seed=1, loads=(0.4,))
        text = result.format()
        assert "Fig. 10" in text
