"""Golden tables: ``run_all(scale="tiny", seed=0)`` is pinned bit for bit.

The goldens under ``tests/experiments/goldens/`` were produced by
``scripts/regen_goldens.py`` through the harness's ``--workers 1`` path, so
this test simultaneously pins the seed derivations (per-experiment child
seeds, named streams), every experiment's cell decomposition, and the table
renderer.  A legitimate change to any of those regenerates the goldens in
the same commit; an accidental change fails here.
"""

from pathlib import Path

import pytest

from repro.experiments.runner import EXPERIMENT_MODULES, run_all

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def tiny_results():
    return dict(zip(EXPERIMENT_MODULES, run_all(scale="tiny", seed=0)))


def test_every_experiment_has_a_golden():
    assert GOLDEN_DIR.is_dir(), "run scripts/regen_goldens.py to create goldens"
    present = {path.stem for path in GOLDEN_DIR.glob("*.txt")}
    assert present == set(EXPERIMENT_MODULES)


@pytest.mark.parametrize("name", sorted(EXPERIMENT_MODULES))
def test_golden_matches(name, tiny_results):
    golden = (GOLDEN_DIR / f"{name}.txt").read_text(encoding="utf-8")
    assert tiny_results[name].format() + "\n" == golden, (
        f"{name}: tiny-scale tables drifted from the golden; if intentional, "
        "rerun scripts/regen_goldens.py and commit the diff"
    )
