"""Regression tests for the SeedSequence-based random-stream derivations.

The additive derivations these replaced had two collision families:

- within a trial, ``arrivals = default_rng(seed + 1)`` was bit-equal to the
  *next* trial's workload stream, and ``simulation = default_rng(seed +
  10_000)`` collided with the workload stream of any trial seeded >= 10,000;
- across experiments, ``run_all`` forwarded the identical seed everywhere,
  so every experiment consumed byte-identical job batches.

Both must stay dead: streams are now named ``SeedSequence`` children of the
trial seed, and ``run_all`` derives a per-experiment child seed keyed by the
experiment's registry name.
"""

import numpy as np
import pytest

from repro.experiments.common import (
    STREAMS,
    batch_workload,
    experiment_seed,
    online_workload,
    resolve_scale,
    stream_rng,
)
from repro.experiments.runner import EXPERIMENT_MODULES


def draws(rng: np.random.Generator, n: int = 16):
    return rng.random(n).tolist()


class TestStreamRng:
    def test_deterministic_per_name(self):
        for stream in STREAMS:
            assert draws(stream_rng(3, stream)) == draws(stream_rng(3, stream))

    def test_streams_of_one_seed_are_pairwise_distinct(self):
        streams = {stream: draws(stream_rng(7, stream)) for stream in STREAMS}
        values = list(streams.values())
        for i, left in enumerate(values):
            for right in values[i + 1:]:
                assert left != right

    def test_arrival_stream_is_not_next_trials_workload(self):
        # The old ``seed + 1`` arrival derivation, verbatim.
        assert draws(stream_rng(0, "arrivals")) != draws(stream_rng(1, "workload"))

    def test_simulation_stream_is_not_a_distant_trials_workload(self):
        # The old ``seed + 10_000`` data-plane derivation, verbatim.
        assert draws(stream_rng(0, "simulation")) != draws(
            stream_rng(10_000, "workload")
        )

    def test_unknown_stream_rejected(self):
        with pytest.raises(ValueError, match="unknown random stream"):
            stream_rng(0, "entropy")


class TestExperimentSeed:
    def test_deterministic(self):
        assert experiment_seed(0, "fig5") == experiment_seed(0, "fig5")

    def test_distinct_across_all_registered_experiments(self):
        seeds = {name: experiment_seed(0, name) for name in EXPERIMENT_MODULES}
        assert len(set(seeds.values())) == len(EXPERIMENT_MODULES)

    def test_distinct_across_base_seeds(self):
        assert experiment_seed(0, "fig5") != experiment_seed(1, "fig5")

    def test_independent_of_registry_order(self):
        # The derivation is a pure function of (seed, name): iterating the
        # registry in any order yields the same mapping.
        forward = [experiment_seed(0, name) for name in EXPERIMENT_MODULES]
        backward = [
            experiment_seed(0, name) for name in reversed(list(EXPERIMENT_MODULES))
        ]
        assert forward == list(reversed(backward))

    def test_fits_in_uint64(self):
        for name in EXPERIMENT_MODULES:
            assert 0 <= experiment_seed(12345, name) < 2**64


class TestWorkloadDecorrelation:
    def test_experiments_no_longer_see_identical_job_batches(self):
        # run_all's per-experiment child seeds must produce different
        # workloads for different experiments at the same base seed.
        scale = resolve_scale("tiny")
        jobs_fig5 = batch_workload(scale, experiment_seed(0, "fig5"))
        jobs_fig6 = batch_workload(scale, experiment_seed(0, "fig6"))
        assert jobs_fig5 != jobs_fig6

    def test_same_experiment_same_base_seed_is_reproducible(self):
        scale = resolve_scale("tiny")
        seed = experiment_seed(0, "fig7")
        assert batch_workload(scale, seed) == batch_workload(scale, seed)

    def test_online_arrivals_differ_from_adjacent_trial(self):
        # End-to-end form of the ``seed + 1`` regression: the arrival stamps
        # of trial 0 must not replay trial 1's workload draws.
        scale = resolve_scale("tiny")
        trial0 = online_workload(scale, 0, load=0.6, total_slots=64)
        trial1 = online_workload(scale, 1, load=0.6, total_slots=64)
        assert trial0 != trial1
