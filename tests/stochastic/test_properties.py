"""Property-based tests (hypothesis) for the probability substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stochastic.aggregate import (
    DemandAggregate,
    admission_margin,
    effective_bandwidth_total,
    is_admissible,
    occupancy_ratio,
    risk_quantile,
)
from repro.stochastic.minimum import max_of_normals, min_of_normals
from repro.stochastic.normal import (
    Normal,
    normal_cdf,
    normal_quantile,
    sum_iid,
    truncated_moments,
)

means = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
stds = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)
pos_stds = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)
probabilities = st.floats(min_value=1e-6, max_value=1.0 - 1e-6)
epsilons = st.floats(min_value=1e-4, max_value=0.5)


@st.composite
def normals(draw, std_strategy=stds):
    return Normal(draw(means), draw(std_strategy))


class TestNormalProperties:
    @given(p=probabilities)
    def test_quantile_cdf_roundtrip(self, p):
        assert abs(normal_cdf(normal_quantile(p)) - p) < 1e-9

    @given(demand=normals(), count=st.integers(min_value=0, max_value=100))
    def test_sum_iid_moments(self, demand, count):
        total = sum_iid(demand, count)
        assert abs(total.mean - count * demand.mean) < 1e-6 * max(1.0, count * demand.mean)
        assert abs(total.variance - count * demand.variance) < 1e-6 * max(
            1.0, count * demand.variance
        )

    @given(a=normals(), b=normals())
    def test_addition_commutes(self, a, b):
        left, right = a + b, b + a
        assert abs(left.mean - right.mean) < 1e-9
        assert abs(left.variance - right.variance) < 1e-9


class TestMinimumProperties:
    @given(a=normals(), b=normals())
    @settings(max_examples=200)
    def test_min_mean_below_both(self, a, b):
        result = min_of_normals(a, b)
        bound = min(a.mean, b.mean)
        assert result.mean <= bound + 1e-6 * max(1.0, abs(bound))

    @given(a=normals(), b=normals())
    def test_min_variance_nonnegative(self, a, b):
        assert min_of_normals(a, b).variance >= 0.0

    @given(a=normals(), b=normals())
    def test_min_symmetric(self, a, b):
        fwd, bwd = min_of_normals(a, b), min_of_normals(b, a)
        scale = max(1.0, abs(fwd.mean))
        assert abs(fwd.mean - bwd.mean) < 1e-7 * scale
        assert abs(fwd.variance - bwd.variance) < 1e-6 * max(1.0, fwd.variance)

    @given(a=normals(), b=normals())
    def test_min_plus_max_equals_sum_of_means(self, a, b):
        low, high = min_of_normals(a, b), max_of_normals(a, b)
        total = a.mean + b.mean
        assert abs((low.mean + high.mean) - total) < 1e-6 * max(1.0, abs(total))

    @given(a=normals(pos_stds), b=normals(pos_stds))
    @settings(max_examples=200)
    def test_min_variance_bounded_by_sum(self, a, b):
        # Var(min) <= Var(X1) + Var(X2): crude but useful sanity envelope.
        result = min_of_normals(a, b)
        assert result.variance <= a.variance + b.variance + 1e-6


class TestAdmissionProperties:
    @given(
        mean=means,
        var=st.floats(min_value=0.0, max_value=1e6),
        sharing=st.floats(min_value=0.0, max_value=1e5),
        epsilon=epsilons,
    )
    def test_margin_monotone_in_sharing(self, mean, var, sharing, epsilon):
        agg = DemandAggregate(total_mean=mean, total_variance=var)
        assert admission_margin(agg, sharing + 1.0, epsilon) > admission_margin(
            agg, sharing, epsilon
        )

    @given(
        mean=means,
        var=st.floats(min_value=0.0, max_value=1e6),
        sharing=st.floats(min_value=0.0, max_value=1e5),
        epsilon=epsilons,
        extra=st.floats(min_value=0.0, max_value=1e3),
    )
    def test_admission_antitone_in_demand(self, mean, var, sharing, epsilon, extra):
        smaller = DemandAggregate(total_mean=mean, total_variance=var)
        larger = smaller.add(Normal(extra, 0.0))
        if is_admissible(larger, sharing, epsilon):
            assert is_admissible(smaller, sharing, epsilon)

    @given(
        mean=means,
        var=st.floats(min_value=0.0, max_value=1e6),
        capacity=st.floats(min_value=1.0, max_value=1e5),
        reserved_fraction=st.floats(min_value=0.0, max_value=0.9),
        epsilon=epsilons,
    )
    def test_occupancy_below_one_iff_admissible(
        self, mean, var, capacity, reserved_fraction, epsilon
    ):
        reserved = reserved_fraction * capacity
        agg = DemandAggregate(total_mean=mean, total_variance=var)
        occ = occupancy_ratio(reserved, agg, capacity, epsilon)
        assert (occ < 1.0) == is_admissible(agg, capacity - reserved, epsilon)

    @given(mean=means, var=st.floats(min_value=0.0, max_value=1e6), epsilon=epsilons)
    def test_effective_bandwidth_at_least_mean(self, mean, var, epsilon):
        agg = DemandAggregate(total_mean=mean, total_variance=var)
        assert effective_bandwidth_total(agg, epsilon) >= mean - 1e-9

    @given(epsilon=st.floats(min_value=1e-4, max_value=0.49))
    def test_risk_quantile_positive_below_half(self, epsilon):
        assert risk_quantile(epsilon) > 0.0


class TestTruncationProperties:
    @given(demand=normals(pos_stds), cap=st.floats(min_value=10.0, max_value=1e4))
    @settings(max_examples=200)
    def test_truncated_mean_inside_bounds(self, demand, cap):
        result = truncated_moments(demand, 0.0, cap)
        assert -1e-9 <= result.mean <= cap + 1e-9

    @given(demand=normals(pos_stds), cap=st.floats(min_value=10.0, max_value=1e4))
    def test_truncated_std_not_larger(self, demand, cap):
        result = truncated_moments(demand, 0.0, cap)
        assert result.std <= demand.std + 1e-9
