"""Numerical edge cases across the probability substrate."""

import pytest

from repro.stochastic import (
    DemandAggregate,
    Normal,
    admission_margin,
    effective_bandwidth_total,
    is_admissible,
    min_of_normals,
    occupancy_ratio,
    outage_probability,
    sum_iid,
)
from repro.stochastic.normal import normal_cdf, normal_pdf


class TestExtremeArguments:
    def test_cdf_saturates_cleanly(self):
        assert normal_cdf(50.0) == 1.0
        assert normal_cdf(-50.0) == 0.0

    def test_pdf_underflows_to_zero(self):
        assert normal_pdf(100.0) == 0.0

    def test_min_with_huge_separation(self):
        tiny = Normal(1.0, 0.5)
        huge = Normal(1e9, 1e3)
        result = min_of_normals(tiny, huge)
        assert result.mean == pytest.approx(1.0, abs=1e-9)
        assert result.std == pytest.approx(0.5, abs=1e-9)

    def test_min_with_tiny_variances(self):
        a = Normal(100.0, 1e-9)
        b = Normal(100.0, 1e-9)
        result = min_of_normals(a, b)
        assert result.mean == pytest.approx(100.0, abs=1e-6)
        assert result.variance >= 0.0

    def test_sum_iid_large_count(self):
        total = sum_iid(Normal(1.0, 1.0), 1_000_000)
        assert total.mean == pytest.approx(1e6)
        assert total.std == pytest.approx(1e3)


class TestAggregateEdges:
    def test_empty_aggregate_admissible_on_any_positive_bandwidth(self):
        assert is_admissible(DemandAggregate(), 1e-9, 0.05)

    def test_empty_aggregate_not_admissible_on_zero(self):
        assert not is_admissible(DemandAggregate(), 0.0, 0.05)

    def test_outage_of_empty_aggregate(self):
        assert outage_probability(DemandAggregate(), 10.0) == 0.0

    def test_effective_bandwidth_of_empty(self):
        assert effective_bandwidth_total(DemandAggregate(), 0.05) == 0.0

    def test_margin_with_extreme_epsilon(self):
        agg = DemandAggregate(total_mean=10.0, total_variance=4.0)
        nearly_sure = admission_margin(agg, 100.0, 1e-4)
        relaxed = admission_margin(agg, 100.0, 0.4999)
        assert nearly_sure < relaxed

    def test_occupancy_scales_inversely_with_capacity(self):
        agg = DemandAggregate(total_mean=100.0, total_variance=100.0)
        small = occupancy_ratio(0.0, agg, 200.0, 0.05)
        large = occupancy_ratio(0.0, agg, 2000.0, 0.05)
        assert small == pytest.approx(10.0 * large)

    def test_aggregate_chain_associativity(self):
        demands = [Normal(float(i), float(i) / 2.0) for i in range(1, 20)]
        forward = DemandAggregate()
        for demand in demands:
            forward = forward.add(demand)
        backward = DemandAggregate()
        for demand in reversed(demands):
            backward = backward.add(demand)
        assert forward.total_mean == pytest.approx(backward.total_mean)
        assert forward.total_variance == pytest.approx(backward.total_variance)


class TestNormalValueEdges:
    def test_zero_mean_zero_std(self):
        zero = Normal(0.0, 0.0)
        assert zero.is_deterministic
        assert zero.cdf(0.0) == 1.0
        assert zero.sf(0.0) == 0.0

    def test_quantile_extremes_monotone(self):
        demand = Normal(0.0, 1.0)
        assert demand.quantile(1e-6) < demand.quantile(1.0 - 1e-6)

    def test_percentile_zero_hundred_rejected(self):
        demand = Normal(0.0, 1.0)
        with pytest.raises(ValueError):
            demand.percentile(0.0)
        with pytest.raises(ValueError):
            demand.percentile(100.0)

    def test_addition_with_zero(self):
        demand = Normal(5.0, 2.0)
        total = demand + Normal(0.0, 0.0)
        assert total == demand

    def test_scale_by_zero_gives_point_mass(self):
        scaled = Normal(5.0, 2.0).scale(0.0)
        assert scaled.is_deterministic
        assert scaled.mean == 0.0

    def test_add_non_normal_not_implemented(self):
        with pytest.raises(TypeError):
            Normal(1.0, 1.0) + 3.0
