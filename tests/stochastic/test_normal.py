"""Unit tests for the normal-distribution toolkit."""

import math

import numpy as np
import pytest

from repro.stochastic.normal import (
    Normal,
    ZERO,
    normal_cdf,
    normal_pdf,
    normal_quantile,
    sum_iid,
    sum_normals,
)


class TestStandardNormalHelpers:
    def test_pdf_at_zero_is_inverse_sqrt_2pi(self):
        assert normal_pdf(0.0) == pytest.approx(1.0 / math.sqrt(2.0 * math.pi))

    def test_pdf_is_symmetric(self):
        assert normal_pdf(1.7) == pytest.approx(normal_pdf(-1.7))

    def test_pdf_decays(self):
        assert normal_pdf(5.0) < normal_pdf(1.0) < normal_pdf(0.0)

    def test_cdf_at_zero_is_half(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)

    def test_cdf_symmetry(self):
        assert normal_cdf(1.3) + normal_cdf(-1.3) == pytest.approx(1.0)

    def test_cdf_monotone(self):
        xs = np.linspace(-4, 4, 33)
        values = [normal_cdf(x) for x in xs]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_quantile_inverts_cdf(self):
        for p in (0.01, 0.1, 0.5, 0.9, 0.95, 0.99):
            assert normal_cdf(normal_quantile(p)) == pytest.approx(p, abs=1e-10)

    def test_quantile_known_values(self):
        # The c = Phi^{-1}(1 - eps) constants the paper's evaluation uses.
        assert normal_quantile(0.95) == pytest.approx(1.6449, abs=1e-4)
        assert normal_quantile(0.98) == pytest.approx(2.0537, abs=1e-4)

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 1.5])
    def test_quantile_rejects_out_of_range(self, p):
        with pytest.raises(ValueError):
            normal_quantile(p)


class TestNormalValueType:
    def test_variance_is_std_squared(self):
        assert Normal(3.0, 2.0).variance == pytest.approx(4.0)

    def test_rejects_negative_std(self):
        with pytest.raises(ValueError):
            Normal(0.0, -1.0)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            Normal(math.nan, 1.0)
        with pytest.raises(ValueError):
            Normal(0.0, math.inf)

    def test_from_variance(self):
        assert Normal.from_variance(1.0, 9.0).std == pytest.approx(3.0)

    def test_from_variance_clamps_round_off(self):
        assert Normal.from_variance(1.0, -1e-12).std == 0.0

    def test_from_variance_rejects_truly_negative(self):
        with pytest.raises(ValueError):
            Normal.from_variance(1.0, -0.5)

    def test_deterministic_constructor(self):
        demand = Normal.deterministic(42.0)
        assert demand.is_deterministic
        assert demand.mean == 42.0

    def test_addition_adds_means_and_variances(self):
        total = Normal(1.0, 3.0) + Normal(2.0, 4.0)
        assert total.mean == pytest.approx(3.0)
        assert total.variance == pytest.approx(25.0)

    def test_scale(self):
        scaled = Normal(2.0, 3.0).scale(2.0)
        assert scaled.mean == pytest.approx(4.0)
        assert scaled.std == pytest.approx(6.0)

    def test_scale_rejects_negative(self):
        with pytest.raises(ValueError):
            Normal(1.0, 1.0).scale(-1.0)

    def test_cdf_matches_standardization(self):
        demand = Normal(10.0, 2.0)
        assert demand.cdf(12.0) == pytest.approx(normal_cdf(1.0))

    def test_sf_complements_cdf(self):
        demand = Normal(10.0, 2.0)
        assert demand.cdf(11.0) + demand.sf(11.0) == pytest.approx(1.0)

    def test_deterministic_cdf_is_step(self):
        demand = Normal.deterministic(5.0)
        assert demand.cdf(4.999) == 0.0
        assert demand.cdf(5.0) == 1.0

    def test_quantile_location_scale(self):
        demand = Normal(10.0, 2.0)
        assert demand.quantile(0.95) == pytest.approx(10.0 + 2.0 * normal_quantile(0.95))

    def test_percentile_is_quantile_times_100(self):
        demand = Normal(10.0, 2.0)
        assert demand.percentile(95.0) == pytest.approx(demand.quantile(0.95))

    def test_deterministic_quantile_is_the_constant(self):
        assert Normal.deterministic(7.0).quantile(0.99) == 7.0

    def test_sample_moments(self, rng):
        demand = Normal(100.0, 15.0)
        draws = demand.sample(rng, size=200_000)
        assert np.mean(draws) == pytest.approx(100.0, abs=0.2)
        assert np.std(draws) == pytest.approx(15.0, abs=0.2)

    def test_equality_and_hash(self):
        assert Normal(1.0, 2.0) == Normal(1.0, 2.0)
        assert hash(Normal(1.0, 2.0)) == hash(Normal(1.0, 2.0))


class TestAggregation:
    def test_sum_iid_scales_mean_and_variance(self):
        total = sum_iid(Normal(10.0, 3.0), 4)
        assert total.mean == pytest.approx(40.0)
        assert total.variance == pytest.approx(36.0)

    def test_sum_iid_zero_count_is_zero(self):
        assert sum_iid(Normal(10.0, 3.0), 0) == ZERO

    def test_sum_iid_rejects_negative_count(self):
        with pytest.raises(ValueError):
            sum_iid(Normal(1.0, 1.0), -1)

    def test_sum_normals_empty_is_zero(self):
        assert sum_normals([]) == ZERO

    def test_sum_normals_matches_pairwise_addition(self):
        demands = [Normal(1.0, 1.0), Normal(2.0, 2.0), Normal(3.0, 0.5)]
        total = sum_normals(demands)
        pairwise = demands[0] + demands[1] + demands[2]
        assert total.mean == pytest.approx(pairwise.mean)
        assert total.variance == pytest.approx(pairwise.variance)

    def test_zero_constant(self):
        assert ZERO.mean == 0.0
        assert ZERO.is_deterministic
