"""Lemma 1 (min of two normals) — closed form vs. Monte Carlo and identities."""

import numpy as np
import pytest

from repro.stochastic.minimum import max_of_normals, min_of_normals
from repro.stochastic.normal import Normal


def _monte_carlo_min(first: Normal, second: Normal, rng, n=400_000):
    a = rng.normal(first.mean, first.std, size=n)
    b = rng.normal(second.mean, second.std, size=n)
    m = np.minimum(a, b)
    return float(np.mean(m)), float(np.var(m))


class TestMinOfNormalsAgainstMonteCarlo:
    @pytest.mark.parametrize(
        "first,second",
        [
            (Normal(0.0, 1.0), Normal(0.0, 1.0)),
            (Normal(10.0, 2.0), Normal(12.0, 3.0)),
            (Normal(100.0, 30.0), Normal(500.0, 10.0)),
            (Normal(-5.0, 4.0), Normal(5.0, 4.0)),
            (Normal(200.0, 50.0), Normal(200.0, 5.0)),
        ],
    )
    def test_moments_match_sampling(self, first, second, rng):
        result = min_of_normals(first, second)
        mc_mean, mc_var = _monte_carlo_min(first, second, rng)
        scale = max(first.std, second.std)
        assert result.mean == pytest.approx(mc_mean, abs=0.02 * scale)
        assert result.variance == pytest.approx(mc_var, rel=0.05)


class TestMinOfNormalsProperties:
    def test_symmetric_in_arguments(self):
        a, b = Normal(3.0, 1.0), Normal(5.0, 2.0)
        forward = min_of_normals(a, b)
        backward = min_of_normals(b, a)
        assert forward.mean == pytest.approx(backward.mean)
        assert forward.std == pytest.approx(backward.std)

    def test_identical_standard_normals_known_value(self):
        # E[min(X, Y)] = -1/sqrt(pi) and Var = 1 - 1/pi for iid N(0, 1).
        result = min_of_normals(Normal(0.0, 1.0), Normal(0.0, 1.0))
        assert result.mean == pytest.approx(-1.0 / np.sqrt(np.pi), abs=1e-12)
        assert result.variance == pytest.approx(1.0 - 1.0 / np.pi, abs=1e-12)

    def test_mean_below_both_input_means(self):
        result = min_of_normals(Normal(10.0, 2.0), Normal(11.0, 2.0))
        assert result.mean < 10.0

    def test_dominant_separation_recovers_smaller_input(self):
        small = Normal(10.0, 1.0)
        large = Normal(1000.0, 1.0)
        result = min_of_normals(small, large)
        assert result.mean == pytest.approx(small.mean, abs=1e-6)
        assert result.std == pytest.approx(small.std, abs=1e-6)

    def test_both_deterministic(self):
        result = min_of_normals(Normal.deterministic(4.0), Normal.deterministic(9.0))
        assert result.mean == 4.0
        assert result.std == 0.0

    def test_one_deterministic_far_above(self):
        stochastic = Normal(10.0, 2.0)
        result = min_of_normals(stochastic, Normal.deterministic(100.0))
        assert result.mean == pytest.approx(10.0, abs=1e-9)
        assert result.std == pytest.approx(2.0, abs=1e-9)

    def test_one_deterministic_interacting(self, rng):
        stochastic = Normal(10.0, 3.0)
        constant = Normal.deterministic(10.0)
        result = min_of_normals(stochastic, constant)
        mc_mean, mc_var = _monte_carlo_min(stochastic, constant, rng)
        assert result.mean == pytest.approx(mc_mean, abs=0.05)
        assert result.variance == pytest.approx(mc_var, rel=0.05)

    def test_variance_never_negative(self):
        # Near-degenerate pair that stresses the second-moment subtraction.
        result = min_of_normals(Normal(1e6, 1e-3), Normal(1e6, 1e-3))
        assert result.variance >= 0.0


class TestMaxOfNormals:
    def test_min_max_sum_identity(self):
        # E[min] + E[max] = mu1 + mu2 for any pair.
        a, b = Normal(7.0, 2.0), Normal(9.0, 5.0)
        low = min_of_normals(a, b)
        high = max_of_normals(a, b)
        assert low.mean + high.mean == pytest.approx(a.mean + b.mean)

    def test_max_at_least_both_means(self):
        high = max_of_normals(Normal(3.0, 1.0), Normal(4.0, 1.0))
        assert high.mean > 4.0

    def test_max_matches_monte_carlo(self, rng):
        a, b = Normal(10.0, 4.0), Normal(12.0, 1.0)
        high = max_of_normals(a, b)
        draws = np.maximum(
            rng.normal(a.mean, a.std, 400_000), rng.normal(b.mean, b.std, 400_000)
        )
        assert high.mean == pytest.approx(float(np.mean(draws)), abs=0.05)
        assert high.variance == pytest.approx(float(np.var(draws)), rel=0.05)
