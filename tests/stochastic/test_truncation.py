"""Truncated-normal moment matching used to derive NIC-limited profiles."""

import numpy as np
import pytest

from repro.stochastic.normal import Normal, truncated_moments, truncated_quantile


def _mc_truncated(demand: Normal, lower: float, upper: float, rng, n=600_000):
    draws = rng.normal(demand.mean, demand.std, size=n)
    kept = draws[(draws >= lower) & (draws <= upper)]
    return float(np.mean(kept)), float(np.std(kept)), kept


class TestTruncatedMoments:
    @pytest.mark.parametrize(
        "demand,lower,upper",
        [
            (Normal(500.0, 450.0), 0.0, 1000.0),
            (Normal(100.0, 30.0), 0.0, 1000.0),
            (Normal(0.0, 1.0), -1.0, 2.0),
            (Normal(900.0, 300.0), 0.0, 1000.0),
        ],
    )
    def test_matches_monte_carlo(self, demand, lower, upper, rng):
        result = truncated_moments(demand, lower, upper)
        mc_mean, mc_std, _ = _mc_truncated(demand, lower, upper, rng)
        assert result.mean == pytest.approx(mc_mean, abs=0.01 * max(demand.std, 1.0))
        assert result.std == pytest.approx(mc_std, rel=0.02)

    def test_wide_bounds_are_identity(self):
        demand = Normal(100.0, 10.0)
        result = truncated_moments(demand, -1e9, 1e9)
        assert result.mean == pytest.approx(100.0, abs=1e-6)
        assert result.std == pytest.approx(10.0, rel=1e-6)

    def test_truncation_reduces_variance(self):
        demand = Normal(500.0, 450.0)
        result = truncated_moments(demand, 0.0, 1000.0)
        assert result.std < demand.std

    def test_symmetric_truncation_keeps_mean(self):
        demand = Normal(500.0, 200.0)
        result = truncated_moments(demand, 0.0, 1000.0)
        assert result.mean == pytest.approx(500.0, abs=1e-9)

    def test_one_sided_pull(self):
        # Cutting the lower tail pulls the mean up.
        demand = Normal(100.0, 80.0)
        result = truncated_moments(demand, 0.0, 1e9)
        assert result.mean > 100.0

    def test_mass_below_interval_collapses_to_lower(self):
        result = truncated_moments(Normal(-1000.0, 1.0), 0.0, 10.0)
        assert result.mean == pytest.approx(0.0, abs=1e-6)

    def test_deterministic_clamped(self):
        assert truncated_moments(Normal.deterministic(50.0), 0.0, 10.0).mean == 10.0
        assert truncated_moments(Normal.deterministic(5.0), 0.0, 10.0).mean == 5.0

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            truncated_moments(Normal(0.0, 1.0), 5.0, 5.0)

    def test_nic_feasibility_motivation(self):
        # The workload pathology the truncation fixes: mu=500, rho=0.9 has a
        # raw 95th percentile above a 1 Gbps NIC, the truncated one below it.
        raw = Normal(500.0, 450.0)
        profiled = truncated_moments(raw, 0.0, 1000.0)
        c = 1.6449
        assert raw.mean + c * raw.std > 1000.0
        assert profiled.mean + c * profiled.std < 1000.0


class TestTruncatedQuantile:
    def test_within_bounds(self):
        demand = Normal(500.0, 450.0)
        for p in (0.05, 0.5, 0.95, 0.99):
            q = truncated_quantile(demand, p, 0.0, 1000.0)
            assert 0.0 <= q <= 1000.0

    def test_matches_monte_carlo(self, rng):
        demand = Normal(500.0, 450.0)
        _mean, _std, kept = _mc_truncated(demand, 0.0, 1000.0, rng)
        q95 = truncated_quantile(demand, 0.95, 0.0, 1000.0)
        assert q95 == pytest.approx(float(np.percentile(kept, 95)), abs=3.0)

    def test_wide_bounds_recover_plain_quantile(self):
        demand = Normal(10.0, 2.0)
        assert truncated_quantile(demand, 0.9, -1e9, 1e9) == pytest.approx(
            demand.quantile(0.9), abs=1e-6
        )

    def test_monotone_in_p(self):
        demand = Normal(500.0, 300.0)
        qs = [truncated_quantile(demand, p, 0.0, 1000.0) for p in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(a < b for a, b in zip(qs, qs[1:]))

    def test_deterministic_clamped(self):
        assert truncated_quantile(Normal.deterministic(50.0), 0.5, 0.0, 10.0) == 10.0

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            truncated_quantile(Normal(0.0, 1.0), 0.0, 0.0, 1.0)

    def test_no_mass_interval_falls_to_bound(self):
        assert truncated_quantile(Normal(-1000.0, 1.0), 0.5, 0.0, 1.0) == 0.0
