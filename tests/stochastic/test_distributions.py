"""Alternative demand families and their moment matching."""

import numpy as np
import pytest

from repro.abstractions import HomogeneousSVC
from repro.manager import NetworkManager
from repro.stochastic import EmpiricalDemand, LogNormalDemand, UniformDemand


class TestLogNormalDemand:
    def test_moments_closed_form(self):
        demand = LogNormalDemand(mu_log=5.0, sigma_log=0.5)
        # E = exp(mu + sigma^2/2), Var = (exp(sigma^2)-1) exp(2mu+sigma^2).
        assert demand.mean == pytest.approx(np.exp(5.125))
        assert demand.variance == pytest.approx(
            (np.exp(0.25) - 1.0) * np.exp(10.25)
        )

    def test_moments_match_sampling(self, rng):
        demand = LogNormalDemand.from_moments(300.0, 150.0)
        draws = demand.sample(rng, size=500_000)
        assert np.mean(draws) == pytest.approx(300.0, rel=0.02)
        assert np.std(draws) == pytest.approx(150.0, rel=0.03)

    def test_from_moments_roundtrip(self):
        demand = LogNormalDemand.from_moments(250.0, 100.0)
        assert demand.mean == pytest.approx(250.0)
        assert demand.variance == pytest.approx(100.0 ** 2)

    def test_to_normal_preserves_moments(self):
        demand = LogNormalDemand.from_moments(250.0, 100.0)
        matched = demand.to_normal()
        assert matched.mean == pytest.approx(250.0)
        assert matched.std == pytest.approx(100.0)

    def test_from_moments_validation(self):
        with pytest.raises(ValueError):
            LogNormalDemand.from_moments(0.0, 10.0)
        with pytest.raises(ValueError):
            LogNormalDemand.from_moments(10.0, -1.0)

    def test_samples_nonnegative(self, rng):
        demand = LogNormalDemand.from_moments(50.0, 200.0)  # very heavy tail
        assert (demand.sample(rng, size=10_000) >= 0.0).all()


class TestUniformDemand:
    def test_moments(self):
        demand = UniformDemand(low=100.0, high=400.0)
        assert demand.mean == 250.0
        assert demand.variance == pytest.approx(300.0 ** 2 / 12.0)

    def test_sampling_range(self, rng):
        demand = UniformDemand(low=10.0, high=20.0)
        draws = demand.sample(rng, size=10_000)
        assert draws.min() >= 10.0 and draws.max() <= 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformDemand(low=-1.0, high=5.0)
        with pytest.raises(ValueError):
            UniformDemand(low=5.0, high=4.0)


class TestEmpiricalDemand:
    def test_moments_are_sample_moments(self):
        demand = EmpiricalDemand.from_sequence([10.0, 20.0, 30.0])
        assert demand.mean == pytest.approx(20.0)
        assert demand.variance == pytest.approx(100.0)

    def test_resampling_stays_in_support(self, rng):
        demand = EmpiricalDemand.from_sequence([1.0, 2.0, 3.0])
        draws = demand.sample(rng, size=1000)
        assert set(np.unique(draws)) <= {1.0, 2.0, 3.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalDemand.from_sequence([1.0])
        with pytest.raises(ValueError):
            EmpiricalDemand.from_sequence([1.0, -1.0])


class TestMomentMatchedAdmission:
    def test_lognormal_tenant_end_to_end(self, tiny_tree):
        # The extension path the paper's conclusion promises: fit a heavy-
        # tailed family, moment match, and run through the SVC machinery.
        demand = LogNormalDemand.from_moments(200.0, 120.0)
        matched = demand.to_normal()
        request = HomogeneousSVC(n_vms=8, mean=matched.mean, std=matched.std)
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(request)
        assert tenancy is not None
        assert manager.max_occupancy() < 1.0
        manager.release(tenancy)


class TestFitFamilies:
    def test_lognormal_fit_recovers_parameters(self, rng):
        from repro.profiling import RateTrace
        from repro.profiling.derive import fit_demand

        truth = LogNormalDemand.from_moments(300.0, 150.0)
        trace = RateTrace(samples=tuple(truth.sample(rng, size=50_000)))
        fitted = fit_demand(trace, family="lognormal")
        assert fitted.mean == pytest.approx(300.0, rel=0.03)
        assert fitted.std == pytest.approx(150.0, rel=0.05)

    def test_empirical_family_matches_normal_moments(self, rng):
        from repro.profiling import RateTrace
        from repro.profiling.derive import fit_demand

        trace = RateTrace(samples=(10.0, 30.0, 20.0, 40.0))
        assert fit_demand(trace, family="empirical") == fit_demand(trace, family="normal")

    def test_unknown_family_rejected(self):
        from repro.profiling import RateTrace
        from repro.profiling.derive import fit_demand

        with pytest.raises(ValueError):
            fit_demand(RateTrace(samples=(1.0, 2.0)), family="cauchy")
