"""Admission condition (Eq. 4), effective bandwidth (Eq. 5), occupancy (Eq. 6)."""

import numpy as np
import pytest

from repro.stochastic.aggregate import (
    DemandAggregate,
    admission_margin,
    effective_bandwidth_of,
    effective_bandwidth_total,
    is_admissible,
    occupancy_ratio,
    outage_probability,
    risk_quantile,
)
from repro.stochastic.normal import Normal


class TestRiskQuantile:
    def test_paper_default(self):
        assert risk_quantile(0.05) == pytest.approx(1.6449, abs=1e-4)

    def test_tighter_epsilon_needs_more_headroom(self):
        assert risk_quantile(0.02) > risk_quantile(0.05) > risk_quantile(0.5)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.2, 2.0])
    def test_rejects_invalid_epsilon(self, epsilon):
        with pytest.raises(ValueError):
            risk_quantile(epsilon)


class TestDemandAggregate:
    def test_add_accumulates(self):
        agg = DemandAggregate().add(Normal(10.0, 3.0)).add(Normal(5.0, 4.0))
        assert agg.total_mean == pytest.approx(15.0)
        assert agg.total_variance == pytest.approx(25.0)

    def test_remove_reverses_add(self):
        demand = Normal(10.0, 3.0)
        agg = DemandAggregate().add(demand).remove(demand)
        assert agg.is_empty

    def test_remove_clamps_round_off(self):
        agg = DemandAggregate(total_mean=1.0, total_variance=1e-18)
        out = agg.remove(Normal(1.0, 1e-9 ** 0.5))
        assert out.total_variance == 0.0

    def test_total_std(self):
        agg = DemandAggregate(total_mean=0.0, total_variance=16.0)
        assert agg.total_std == pytest.approx(4.0)

    def test_as_normal(self):
        agg = DemandAggregate(total_mean=7.0, total_variance=9.0)
        assert agg.as_normal() == Normal(7.0, 3.0)

    def test_rejects_negative_variance(self):
        with pytest.raises(ValueError):
            DemandAggregate(total_mean=0.0, total_variance=-1.0)

    def test_immutable(self):
        agg = DemandAggregate()
        with pytest.raises(AttributeError):
            agg.total_mean = 5.0


class TestAdmission:
    def test_margin_formula(self):
        agg = DemandAggregate(total_mean=100.0, total_variance=400.0)
        c = risk_quantile(0.05)
        assert admission_margin(agg, 200.0, 0.05) == pytest.approx(200.0 - 100.0 - c * 20.0)

    def test_admissible_iff_margin_positive(self):
        agg = DemandAggregate(total_mean=100.0, total_variance=400.0)
        c = risk_quantile(0.05)
        threshold = 100.0 + c * 20.0
        assert is_admissible(agg, threshold + 1e-6, 0.05)
        assert not is_admissible(agg, threshold - 1e-6, 0.05)
        assert not is_admissible(agg, threshold - 1.0, 0.05)

    def test_deterministic_aggregate_reduces_to_sum_check(self):
        # "If there are only deterministic bandwidth demands ... verify the
        # sum of bandwidth reservations is less than the link capacity."
        agg = DemandAggregate(total_mean=99.0, total_variance=0.0)
        assert is_admissible(agg, 100.0, 0.05)
        assert not is_admissible(agg, 99.0, 0.05)

    def test_admission_matches_outage_probability(self):
        # Eq. (4) <=> Pr(sum B > S) < eps under the CLT normal approximation.
        agg = DemandAggregate(total_mean=100.0, total_variance=900.0)
        for sharing in (120.0, 149.3, 149.4, 200.0):
            assert is_admissible(agg, sharing, 0.05) == (
                outage_probability(agg, sharing) < 0.05
            )

    def test_tighter_epsilon_is_harder_to_admit(self):
        agg = DemandAggregate(total_mean=100.0, total_variance=900.0)
        sharing = 152.0
        assert is_admissible(agg, sharing, 0.05)
        assert not is_admissible(agg, sharing, 0.02)


class TestOutageProbability:
    def test_mean_equal_sharing_gives_half(self):
        agg = DemandAggregate(total_mean=100.0, total_variance=25.0)
        assert outage_probability(agg, 100.0) == pytest.approx(0.5)

    def test_deterministic_step(self):
        agg = DemandAggregate(total_mean=100.0, total_variance=0.0)
        assert outage_probability(agg, 99.0) == 1.0
        assert outage_probability(agg, 101.0) == 0.0

    def test_monte_carlo_agreement(self, rng):
        demands = [Normal(40.0, 10.0), Normal(60.0, 20.0), Normal(30.0, 5.0)]
        agg = DemandAggregate()
        for demand in demands:
            agg = agg.add(demand)
        sharing = 170.0
        draws = sum(rng.normal(d.mean, d.std, 300_000) for d in demands)
        empirical = float(np.mean(draws > sharing))
        assert outage_probability(agg, sharing) == pytest.approx(empirical, abs=0.004)


class TestEffectiveBandwidth:
    def test_total_closed_form(self):
        agg = DemandAggregate(total_mean=100.0, total_variance=400.0)
        c = risk_quantile(0.05)
        assert effective_bandwidth_total(agg, 0.05) == pytest.approx(100.0 + c * 20.0)

    def test_individual_sums_to_total(self):
        # Eq. (5): sum_i (mu_i + c sigma_i^2 / sqrt(sum sigma^2)) telescopes.
        demands = [Normal(40.0, 10.0), Normal(60.0, 20.0), Normal(30.0, 5.0)]
        agg = DemandAggregate()
        for demand in demands:
            agg = agg.add(demand)
        total = sum(effective_bandwidth_of(d, agg, 0.05) for d in demands)
        assert total == pytest.approx(effective_bandwidth_total(agg, 0.05))

    def test_individual_exceeds_mean_for_stochastic(self):
        demand = Normal(50.0, 10.0)
        agg = DemandAggregate().add(demand)
        assert effective_bandwidth_of(demand, agg, 0.05) > demand.mean

    def test_deterministic_demand_effective_is_mean(self):
        demand = Normal.deterministic(50.0)
        agg = DemandAggregate().add(demand)
        assert effective_bandwidth_of(demand, agg, 0.05) == pytest.approx(50.0)

    def test_multiplexing_discount(self):
        # One demand alone pays c*sigma; among others its surcharge shrinks.
        demand = Normal(50.0, 10.0)
        alone = DemandAggregate().add(demand)
        crowded = alone.add(Normal(50.0, 30.0))
        assert effective_bandwidth_of(demand, crowded, 0.05) < effective_bandwidth_of(
            demand, alone, 0.05
        )


class TestOccupancyRatio:
    def test_matches_definition(self):
        agg = DemandAggregate(total_mean=100.0, total_variance=400.0)
        occ = occupancy_ratio(50.0, agg, 1000.0, 0.05)
        expected = (50.0 + effective_bandwidth_total(agg, 0.05)) / 1000.0
        assert occ == pytest.approx(expected)

    def test_below_one_iff_admissible(self):
        # O_L < 1 <=> Eq. (4) with S_L = C_L - D_L (the paper's equivalence).
        capacity, reserved = 1000.0, 300.0
        sharing = capacity - reserved
        for mean, var in [(500.0, 100.0), (650.0, 2000.0), (690.0, 10.0), (800.0, 0.0)]:
            agg = DemandAggregate(total_mean=mean, total_variance=var)
            below_one = occupancy_ratio(reserved, agg, capacity, 0.05) < 1.0
            assert below_one == is_admissible(agg, sharing, 0.05)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            occupancy_ratio(0.0, DemandAggregate(), 0.0, 0.05)

    def test_empty_link_occupancy_is_deterministic_share(self):
        assert occupancy_ratio(250.0, DemandAggregate(), 1000.0, 0.05) == pytest.approx(0.25)
