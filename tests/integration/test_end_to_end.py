"""End-to-end integration: framework + simulator under mixed workloads."""

import numpy as np
import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.manager import NetworkManager
from repro.stochastic import Normal
from repro.simulation import DataPlane, run_batch, run_online
from repro.simulation.jobs import ActiveJob, JobSpec
from repro.simulation.workload import (
    WorkloadConfig,
    assign_poisson_arrivals,
    generate_jobs,
)
from repro.topology import TINY_SPEC, build_datacenter

pytestmark = pytest.mark.slow


class TestMixedTenantDatacenter:
    def test_long_mixed_session_preserves_invariants(self, tiny_tree):
        """Admit/run/release a stream of mixed requests; invariants hold
        throughout and the datacenter drains back to pristine."""
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        plane = DataPlane(tiny_tree, np.random.default_rng(0))
        rng = np.random.default_rng(42)
        active = []
        for step in range(400):
            # Occasionally admit a new tenant of a random kind.
            if rng.uniform() < 0.3:
                kind = rng.integers(3)
                n = int(rng.integers(2, 8))
                if kind == 0:
                    request = DeterministicVC(n_vms=n, bandwidth=float(rng.uniform(10, 300)))
                elif kind == 1:
                    request = HomogeneousSVC(
                        n_vms=n, mean=float(rng.uniform(10, 300)), std=float(rng.uniform(0, 100))
                    )
                else:
                    request = HeterogeneousSVC(
                        n_vms=n,
                        demands=tuple(
                            Normal(float(rng.uniform(10, 300)), float(rng.uniform(0, 80)))
                            for _ in range(n)
                        ),
                    )
                tenancy = manager.request(request)
                if tenancy is not None:
                    spec = JobSpec(
                        job_id=1000 + step, n_vms=n, compute_time=int(rng.integers(5, 30)),
                        mean_rate=100.0, std_rate=30.0, flow_volume=float(rng.uniform(100, 2000)),
                    )
                    job = ActiveJob(spec=spec, tenancy=tenancy, start_time=step)
                    plane.start_job(job)
                    active.append(job)
            # Advance the data plane and retire completed jobs.
            plane.step(step)
            still_active = []
            for job in active:
                done = job.network_done and job.compute_end <= step
                if done:
                    plane.remove_job(job.spec.job_id)
                    manager.release(job.tenancy)
                else:
                    still_active.append(job)
            active = still_active
            # Invariant: the probabilistic guarantee holds on every link.
            assert manager.max_occupancy() < 1.0
            assert manager.state.total_free_slots >= 0
        for job in active:
            plane.remove_job(job.spec.job_id)
            manager.release(job.tenancy)
        assert manager.state.is_pristine()


class TestScenarioConsistency:
    @pytest.fixture(scope="class")
    def tree(self):
        return build_datacenter(TINY_SPEC)

    def test_batch_conservation_of_jobs(self, tree):
        specs = generate_jobs(
            WorkloadConfig(num_jobs=12, mean_job_size=5.0, max_job_size=16),
            np.random.default_rng(5),
        )
        for model in ("mean-vc", "percentile-vc", "svc"):
            result = run_batch(tree, specs, model=model, rng=np.random.default_rng(6))
            assert len(result.records) + len(result.unschedulable) == 12

    def test_online_determinism_across_models_inputs(self, tree):
        specs = generate_jobs(
            WorkloadConfig(num_jobs=12, mean_job_size=5.0, max_job_size=16),
            np.random.default_rng(7),
        )
        specs = assign_poisson_arrivals(
            specs, 0.5, tree.total_slots, 5.0, 350.0, np.random.default_rng(8)
        )
        first = run_online(tree, specs, model="svc", rng=np.random.default_rng(9))
        second = run_online(tree, specs, model="svc", rng=np.random.default_rng(9))
        assert first.num_rejected == second.num_rejected
        assert first.occupancy_samples == second.occupancy_samples

    def test_epsilon_tightening_monotone_in_rejections(self, tree):
        # More risk headroom (smaller epsilon) can only reserve more.
        specs = generate_jobs(
            WorkloadConfig(num_jobs=25, mean_job_size=6.0, max_job_size=20),
            np.random.default_rng(10),
        )
        specs = assign_poisson_arrivals(
            specs, 0.8, tree.total_slots, 6.0, 350.0, np.random.default_rng(11)
        )
        loose = run_online(tree, specs, model="svc", epsilon=0.2, rng=np.random.default_rng(12))
        tight = run_online(tree, specs, model="svc", epsilon=0.01, rng=np.random.default_rng(12))
        assert loose.num_rejected <= tight.num_rejected

    def test_batch_vs_online_runtime_same_ballpark(self, tree):
        # The same jobs run in both drivers: realized runtimes are bounded by
        # compute + transfer behaviour, not by the driver.
        specs = generate_jobs(
            WorkloadConfig(num_jobs=10, mean_job_size=5.0, max_job_size=16),
            np.random.default_rng(13),
        )
        batch = run_batch(tree, specs, model="svc", rng=np.random.default_rng(14))
        stamped = assign_poisson_arrivals(
            specs, 0.3, tree.total_slots, 5.0, 350.0, np.random.default_rng(15)
        )
        online = run_online(tree, stamped, model="svc", rng=np.random.default_rng(14))
        assert batch.average_running_time > 0
        if not np.isnan(online.average_running_time):
            ratio = online.average_running_time / batch.average_running_time
            assert 0.3 < ratio < 3.0
