"""Command-line interface."""

import pytest

from repro.cli import build_parser, experiment_overrides, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig9", "--scale", "tiny", "--seed", "3"])
        assert args.experiment == "fig9"
        assert args.scale == "tiny"
        assert args.seed == 3

    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.scale == "small"
        assert args.seed == 0

    def test_all_is_a_choice(self):
        assert build_parser().parse_args(["all"]).experiment == "all"

    def test_ablations_are_choices(self):
        parser = build_parser()
        assert parser.parse_args(["ablation-epsilon"]).experiment == "ablation-epsilon"
        assert parser.parse_args(["validate-outage"]).experiment == "validate-outage"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--scale", "galactic"])


class TestOverrideFlags:
    def test_epsilon_and_allocator_parse(self):
        args = build_parser().parse_args(
            ["fig7", "--epsilon", "0.02", "--allocator", "baseline"]
        )
        assert args.epsilon == 0.02
        assert args.allocator == "baseline"

    def test_overrides_default_to_none(self):
        args = build_parser().parse_args(["fig5"])
        assert args.epsilon is None
        assert args.allocator is None

    def test_unknown_allocator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--allocator", "magic"])

    def test_epsilon_forwarded_to_matching_parameter(self):
        def runner(scale, seed, epsilon=0.05):
            pass

        assert experiment_overrides(runner, epsilon=0.02) == {"epsilon": 0.02}

    def test_epsilon_forwarded_as_singleton_sweep(self):
        def runner(scale, seed, epsilons=(0.01, 0.05)):
            pass

        assert experiment_overrides(runner, epsilon=0.02) == {"epsilons": (0.02,)}

    def test_allocator_resolved_by_name(self):
        def runner(scale, seed, allocator=None):
            pass

        overrides = experiment_overrides(runner, allocator="baseline")
        assert set(overrides) == {"allocator"}
        assert overrides["allocator"] is not None

    def test_unsupported_override_is_reported_not_raised(self, caplog):
        def runner(scale, seed):
            pass

        with caplog.at_level("WARNING", logger="repro.cli"):
            overrides = experiment_overrides(runner, epsilon=0.02, allocator="baseline")
        assert overrides == {}
        assert "--epsilon" in caplog.text and "--allocator" in caplog.text


class TestHarnessFlags:
    def test_parallel_flags_parse(self):
        args = build_parser().parse_args(
            ["all", "--workers", "4", "--run-dir", "/tmp/sweep", "--resume"]
        )
        assert args.workers == 4
        assert args.run_dir == "/tmp/sweep"
        assert args.resume is True

    def test_parallel_flags_default_to_sequential(self):
        args = build_parser().parse_args(["fig5"])
        assert args.workers == 1
        assert args.run_dir is None
        assert args.resume is False

    def test_resume_requires_run_dir(self):
        assert main(["fig8", "--scale", "tiny", "--resume"]) == 2

    @pytest.mark.slow
    def test_run_dir_reuse_without_resume_exits_2(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        assert main(["fig8", "--scale", "tiny", "--run-dir", run_dir]) == 0
        capsys.readouterr()
        assert main(["fig8", "--scale", "tiny", "--run-dir", run_dir]) == 2

    @pytest.mark.slow
    def test_workers_and_resume_reproduce_sequential_output(self, tmp_path, capsys):
        assert main(["fig8", "--scale", "tiny"]) == 0
        sequential = capsys.readouterr().out
        run_dir = str(tmp_path / "run")
        assert (
            main(["fig8", "--scale", "tiny", "--workers", "2", "--run-dir", run_dir])
            == 0
        )
        assert capsys.readouterr().out == sequential
        assert (
            main(["fig8", "--scale", "tiny", "--run-dir", run_dir, "--resume"]) == 0
        )
        assert capsys.readouterr().out == sequential


class TestServeRouting:
    def test_serve_is_dispatched_before_experiment_parsing(self, monkeypatch):
        import repro.service.server as server

        seen = {}

        def fake_serve_main(argv):
            seen["argv"] = argv
            return 0

        monkeypatch.setattr(server, "serve_main", fake_serve_main)
        assert main(["serve", "--port", "0", "--scale", "tiny"]) == 0
        assert seen["argv"] == ["--port", "0", "--scale", "tiny"]

    def test_serve_parser_defaults(self):
        from repro.service.server import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.port == 7421
        assert args.scale == "small"
        assert args.allocator == "default"
        assert args.mode == "online"
        assert args.workers == 4
        assert args.epsilon == 0.05

    def test_serve_parser_rejects_unknown_mode(self):
        from repro.service.server import build_serve_parser

        with pytest.raises(SystemExit):
            build_serve_parser().parse_args(["--mode", "psychic"])


@pytest.mark.slow
class TestMain:
    def test_runs_one_experiment(self, capsys):
        exit_code = main(["fig10", "--scale", "tiny"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Fig. 10" in captured.out
