"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig9", "--scale", "tiny", "--seed", "3"])
        assert args.experiment == "fig9"
        assert args.scale == "tiny"
        assert args.seed == 3

    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.scale == "small"
        assert args.seed == 0

    def test_all_is_a_choice(self):
        assert build_parser().parse_args(["all"]).experiment == "all"

    def test_ablations_are_choices(self):
        parser = build_parser()
        assert parser.parse_args(["ablation-epsilon"]).experiment == "ablation-epsilon"
        assert parser.parse_args(["validate-outage"]).experiment == "validate-outage"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--scale", "galactic"])


@pytest.mark.slow
class TestMain:
    def test_runs_one_experiment(self, capsys):
        exit_code = main(["fig10", "--scale", "tiny"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Fig. 10" in captured.out
