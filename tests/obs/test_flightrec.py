"""Flight recorder: bounded ring, trigger-driven dumps, metric mirror."""

import json
import os

import pytest

from repro.faults.failpoints import FailpointRegistry
from repro.obs import instruments
from repro.obs.flightrec import (
    FlightRecorder,
    configure_flight_recorder,
    flight_recorder,
    reset_flight_recorder,
)


class TestRing:
    def test_events_are_ordered_and_sequenced(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record("admission", outcome="admitted", request_id=1)
        recorder.record("admission", outcome="rejected", request_id=2)
        events = recorder.events()
        assert [event["kind"] for event in events] == ["admission", "admission"]
        assert [event["seq"] for event in events] == [1, 2]
        assert all(event["pid"] == os.getpid() for event in events)
        assert events[1]["outcome"] == "rejected"

    def test_ring_is_bounded_and_keeps_the_newest(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(10):
            recorder.record("tick", index=index)
        events = recorder.events()
        assert len(events) == 3
        assert [event["index"] for event in events] == [7, 8, 9]
        assert len(recorder) == 3

    def test_events_limit_returns_the_tail(self):
        recorder = FlightRecorder(capacity=8)
        for index in range(5):
            recorder.record("tick", index=index)
        assert [event["index"] for event in recorder.events(limit=2)] == [3, 4]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_record_never_raises(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record(object())  # kind coerced via str(); must not throw


class TestDumps:
    def test_dump_to_writes_one_json_document(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        recorder.record("degradation", to_state="read_only")
        path = tmp_path / "deep" / "flight.json"
        payload = recorder.dump_to(str(path), trigger="test")
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(payload))
        assert on_disk["trigger"] == "test"
        assert on_disk["pid"] == os.getpid()
        assert on_disk["recorded_total"] == 1
        assert on_disk["events"][0]["kind"] == "degradation"
        assert not path.with_suffix(".json.tmp").exists()  # atomic rename

    def test_maybe_dump_without_directory_is_a_noop(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("crash")
        assert recorder.maybe_dump("crash") is None

    def test_maybe_dump_writes_sequenced_files(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        recorder.dump_dir = str(tmp_path)
        recorder.record("crash")
        first = recorder.maybe_dump("crash")
        second = recorder.maybe_dump("sigusr2")
        assert first != second
        for path, trigger in ((first, "crash"), (second, "sigusr2")):
            name = os.path.basename(path)
            assert name.startswith(f"flight-{os.getpid()}-")
            assert json.loads(open(path).read())["trigger"] == trigger

    def test_auto_dump_can_be_disabled(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        recorder.dump_dir = str(tmp_path)
        recorder.auto_dump = False
        assert recorder.maybe_dump("crash") is None
        assert list(tmp_path.iterdir()) == []


class TestGlobalRecorder:
    def test_configure_sets_directory_and_auto_dump(self, tmp_path):
        reset_flight_recorder()
        try:
            recorder = configure_flight_recorder(
                dump_dir=str(tmp_path), auto_dump=False
            )
            assert recorder is flight_recorder()
            assert recorder.dump_dir == str(tmp_path)
            assert recorder.auto_dump is False
        finally:
            reset_flight_recorder()


class TestMetricMirror:
    def test_events_and_dumps_are_counted_by_label(self, fresh_registry, tmp_path):
        recorder = FlightRecorder(capacity=4)
        recorder.dump_dir = str(tmp_path)
        recorder.record("wal_error")
        recorder.record("wal_error")
        recorder.record("cluster_decision")
        recorder.maybe_dump("sigusr2")
        snapshot = fresh_registry.snapshot()
        events = {
            row["labels"]["kind"]: row["value"]
            for row in snapshot["repro_flight_events_total"]["series"]
        }
        assert events["wal_error"] == 2
        assert events["cluster_decision"] == 1
        dumps = {
            row["labels"]["trigger"]: row["value"]
            for row in snapshot["repro_flight_dumps_total"]["series"]
        }
        assert dumps["sigusr2"] == 1

    def test_counter_cache_survives_a_registry_reset(self, fresh_registry):
        recorder = FlightRecorder(capacity=4)
        recorder.record("wal_error")  # cached against fresh_registry
        replacement = instruments.reset_global_registry()
        try:
            recorder.record("wal_error")  # must re-resolve, not hit a dead cache
            series = replacement.snapshot()["repro_flight_events_total"]["series"]
            counted = {
                row["labels"]["kind"]: row["value"]
                for row in series
                if row["labels"]["kind"] == "wal_error"
            }
            assert counted == {"wal_error": 1}
        finally:
            instruments.reset_global_registry()

    def test_disabled_obs_keeps_recording_but_not_counting(self, fresh_registry):
        recorder = FlightRecorder(capacity=4)
        instruments.configure(enabled=False)
        try:
            recorder.record("wal_error")
        finally:
            instruments.configure(enabled=True)
        # The ring has the event (crash triage works without metrics)...
        assert [event["kind"] for event in recorder.events()] == ["wal_error"]
        # ...but the mirror counted nothing (the family was never touched).
        assert "repro_flight_events_total" not in fresh_registry.snapshot()


class TestChaosInjectionEvents:
    def test_failpoint_triggers_land_in_the_global_ring(self, fresh_registry):
        reset_flight_recorder()
        try:
            registry = FailpointRegistry(seed=0)
            registry.arm("journal.write", mode="delay", delay_s=0.0, every=1)
            registry.hit("journal.write", sleep=lambda _s: None)
            events = [
                event
                for event in flight_recorder().events()
                if event["kind"] == "chaos_injection"
            ]
            assert len(events) == 1
            assert events[0]["failpoint"] == "journal.write"
            assert events[0]["mode"] == "delay"
            assert events[0]["hit"] == 1
        finally:
            reset_flight_recorder()
