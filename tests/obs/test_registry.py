"""Registry primitives: histograms/percentiles, shard merge, JSON snapshots."""

import json
import math
import threading

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ShardedHistogram,
)


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_and_arithmetic(self):
        gauge = Gauge()
        gauge.set(3.0)
        gauge.inc(2.0)
        gauge.dec(1.0)
        assert gauge.value == 4.0

    def test_callback_wins_and_failure_reads_zero(self):
        gauge = Gauge()
        gauge.set(7.0)
        gauge.set_function(lambda: 42.0)
        assert gauge.value == 42.0
        gauge.set_function(lambda: 1 / 0)
        assert gauge.value == 0.0

    def test_non_finite_snapshot_is_sanitized(self):
        gauge = Gauge()
        gauge.set_function(lambda: float("nan"))
        assert gauge.snapshot() == 0.0


class TestHistogramPercentiles:
    def test_known_uniform_distribution_within_bucket_width(self):
        # Uniform on (0, 1] against 0.1-wide buckets: the interpolation
        # error of any percentile is bounded by one bucket width.
        bounds = [round(0.1 * i, 1) for i in range(1, 11)]
        hist = Histogram(bounds)
        for k in range(1, 1001):
            hist.observe(k / 1000.0)
        for pct in (10, 50, 90, 99):
            estimate = hist.percentile(pct)
            assert abs(estimate - pct / 100.0) <= 0.1 + 1e-9, (pct, estimate)
        assert abs(hist.mean - 0.5005) < 1e-9
        assert hist.count == 1000

    def test_empty_histogram_reports_zeros(self):
        hist = Histogram([1.0, 2.0])
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == 0.0 and snap["p99"] == 0.0
        assert snap["min"] == 0.0 and snap["max"] == 0.0
        assert math.isfinite(snap["mean"])

    def test_overflow_bucket_reports_observed_max(self):
        # Every sample saturates past the last bound: interpolation is
        # meaningless there, so the estimator must return the true max.
        hist = Histogram([1.0, 2.0])
        for value in (5.0, 9.0, 7.0):
            hist.observe(value)
        assert hist.percentile(50) == 9.0
        assert hist.percentile(99) == 9.0

    def test_sparse_buckets_interpolate_between_bounds(self):
        hist = Histogram([0.1, 0.2, 0.5, 1.0])
        for _ in range(10):
            hist.observe(0.05)
        for _ in range(10):
            hist.observe(0.9)
        p50 = hist.percentile(50)
        assert 0.0 <= p50 <= 0.1
        p90 = hist.percentile(90)
        assert 0.5 <= p90 <= 1.0

    def test_percentile_bounds_validated(self):
        hist = Histogram([1.0])
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            hist.percentile(-1)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram([1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([])

    def test_merge_requires_identical_bounds(self):
        left, right = Histogram([1.0, 2.0]), Histogram([1.0, 3.0])
        with pytest.raises(ValueError):
            left.merge(right)

    def test_merge_combines_counts_and_extremes(self):
        left, right = Histogram([1.0, 2.0]), Histogram([1.0, 2.0])
        left.observe(0.5)
        right.observe(1.5)
        right.observe(10.0)
        left.merge(right)
        assert left.count == 3
        assert left._max == 10.0
        assert left._min == 0.5


class TestShardedHistogram:
    def test_concurrent_writers_merge_losslessly(self):
        sharded = ShardedHistogram([0.25, 0.5, 0.75, 1.0])
        per_thread, threads = 1000, 4

        def writer(offset: float) -> None:
            for k in range(per_thread):
                sharded.observe((k % 100) / 100.0 + offset)

        workers = [
            threading.Thread(target=writer, args=(i * 0.001,)) for i in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        merged = sharded.merged()
        assert merged.count == per_thread * threads
        assert sharded.count == per_thread * threads
        assert 0.0 <= sharded.percentile(50) <= 1.0

    def test_snapshot_shape_matches_plain_histogram(self):
        sharded = ShardedHistogram([1.0])
        sharded.observe(0.5)
        assert set(sharded.snapshot()) == set(Histogram([1.0]).snapshot())


class TestMetricsRegistry:
    def test_idempotent_resolution_and_kind_guard(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help", label="a")
        assert registry.counter("x_total", label="a") is a
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "counts").inc(3)
        registry.gauge("g", "gauges", kind="plain").set(1.5)
        registry.gauge("g", "gauges", kind="fn").set_function(lambda: float("inf"))
        hist = registry.histogram("h_seconds", "hist", buckets=(0.1, 1.0))
        hist.observe(0.05)
        sharded = registry.histogram(
            "hs_seconds", "sharded hist", buckets=(0.1, 1.0), sharded=True
        )
        sharded.observe(0.5)
        payload = json.dumps(registry.snapshot())
        decoded = json.loads(payload)
        assert decoded["c_total"]["series"][0]["value"] == 3
        # The inf-returning function gauge must have been sanitized.
        by_kind = {
            entry["labels"]["kind"]: entry["value"]
            for entry in decoded["g"]["series"]
        }
        assert by_kind == {"plain": 1.5, "fn": 0.0}

    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", allocator="svc").inc(2)
        hist = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = registry.render_prometheus()
        assert '# TYPE req_total counter' in text
        assert 'req_total{allocator="svc"} 2' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert text.endswith("\n")

    def test_family_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.counter("a_total")
        assert registry.family_names() == ["a_total", "b_total"]


class TestExpositionEdgeCases:
    """Prometheus text-format corners: escaping, empty series, bad callbacks."""

    def test_label_values_escape_quotes_backslashes_newlines(self):
        registry = MetricsRegistry()
        registry.counter("evil_total", "escaping", path='C:\\tmp\\"x"\nend').inc()
        text = registry.render_prometheus()
        assert 'path="C:\\\\tmp\\\\\\"x\\"\\nend"' in text
        # The exposition must stay line-oriented: the raw newline in the
        # label value must not have produced an extra line.
        body = [line for line in text.splitlines() if line.startswith("evil_total")]
        assert len(body) == 1 and body[0].endswith("} 1")

    def test_empty_window_histogram_renders_zero_series(self):
        registry = MetricsRegistry()
        registry.histogram("idle_seconds", "never observed", buckets=(0.1, 1.0))
        text = registry.render_prometheus()
        assert 'idle_seconds_bucket{le="0.1"} 0' in text
        assert 'idle_seconds_bucket{le="+Inf"} 0' in text
        assert "idle_seconds_sum 0" in text
        assert "idle_seconds_count 0" in text
        # The snapshot side must be JSON-clean too (no inf min/max leaking).
        json.dumps(registry.snapshot())

    def test_raising_gauge_callback_renders_zero(self):
        registry = MetricsRegistry()

        def explode() -> float:
            raise RuntimeError("torn-down manager")

        registry.gauge("shaky", "raising callback").set_function(explode)
        text = registry.render_prometheus()
        assert "shaky 0" in text
        assert registry.snapshot()["shaky"]["series"][0]["value"] == 0.0
