"""Metric-name contract: the wired system vs METRICS_SCHEMA.json."""

from pathlib import Path

from repro.obs.schema import (
    SCHEMA_FILENAME,
    bootstrap_registry,
    diff_schema,
    load_schema,
    registry_families,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestDiffSchema:
    def test_identical_is_clean(self):
        families = {"a_total": "counter", "b_seconds": "histogram"}
        assert diff_schema(families, dict(families)) == ([], [], [])

    def test_missing_and_unexpected(self):
        expected = {"a_total": "counter", "gone_total": "counter"}
        actual = {"a_total": "counter", "new_total": "counter"}
        missing, unexpected, mismatched = diff_schema(expected, actual)
        assert missing == ["gone_total"]
        assert unexpected == ["new_total"]
        assert mismatched == []

    def test_kind_mismatch(self):
        missing, unexpected, mismatched = diff_schema(
            {"a": "counter"}, {"a": "gauge"}
        )
        assert missing == [] and unexpected == []
        assert mismatched == ["a: schema says counter, registry says gauge"]


class TestCheckedInSchema:
    def test_no_drift_against_live_registry(self, fresh_registry):
        # The tier-1 twin of scripts/check_metrics_schema.py: boot the
        # miniature fully-wired system and require an exact name/kind match
        # with the committed contract.
        schema_path = REPO_ROOT / SCHEMA_FILENAME
        assert schema_path.exists(), "METRICS_SCHEMA.json missing from repo root"
        expected = load_schema(schema_path)
        actual = registry_families(bootstrap_registry())
        missing, unexpected, mismatched = diff_schema(expected, actual)
        assert not missing, f"schema families not emitted: {missing}"
        assert not unexpected, f"unregistered families emitted: {unexpected}"
        assert not mismatched, f"metric kinds drifted: {mismatched}"

    def test_bootstrap_covers_all_layers(self, fresh_registry):
        families = registry_families(bootstrap_registry())
        # One representative family per subsystem: allocator, network,
        # outage monitor, service.
        assert families["repro_admission_allocate_seconds"] == "histogram"
        assert families["repro_network_link_occupancy"] == "gauge"
        assert families["repro_outage_empirical_rate"] == "gauge"
        assert families["repro_service_events_total"] == "counter"
