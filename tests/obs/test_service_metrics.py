"""Service-layer telemetry: metrics endpoint, latency summary, top view."""

import json

from repro.abstractions import HomogeneousSVC
from repro.manager.network_manager import NetworkManager
from repro.service.client import ServiceClient
from repro.service.concurrency import (
    OUTCOME_ADMITTED,
    OUTCOME_REJECTED,
    AdmissionService,
    LatencyWindow,
)
from repro.service.server import AdmissionTCPServer
from repro.service.top import render_top
from repro.topology import TINY_SPEC, build_datacenter


def tiny_service():
    return AdmissionService(
        NetworkManager(build_datacenter(TINY_SPEC), epsilon=0.05), workers=2
    )


class TestLatencyWindow:
    def test_empty_summary_is_json_safe(self):
        summary = LatencyWindow(maxlen=16).summary()
        assert summary["count"] == 0
        assert summary["window"] == 0
        assert summary["window_limit"] == 16
        for key in ("mean_ms", "p50_ms", "p90_ms", "p99_ms"):
            assert summary[key] == 0.0
        json.dumps(summary)

    def test_single_sample_summary(self):
        window = LatencyWindow(maxlen=16)
        window.observe(0.010)
        summary = window.summary()
        assert summary["count"] == 1 and summary["window"] == 1
        assert summary["p50_ms"] == summary["p99_ms"] == 10.0
        assert summary["mean_ms"] == 10.0

    def test_bad_samples_are_clamped(self):
        window = LatencyWindow(maxlen=16)
        window.observe(float("nan"))
        window.observe(-5.0)
        summary = window.summary()
        assert summary["p99_ms"] == 0.0 and summary["mean_ms"] == 0.0
        json.dumps(summary)

    def test_window_caveat_fields_expose_truncation(self):
        window = LatencyWindow(maxlen=4)
        for k in range(10):
            window.observe(k / 1000.0)
        summary = window.summary()
        assert summary["count"] == 10  # lifetime
        assert summary["window"] == 4  # percentile basis
        assert summary["window_limit"] == 4


class TestServiceMetricsEndpoint:
    def test_metrics_payload_is_json_clean_and_mirrors_counters(
        self, fresh_registry
    ):
        with tiny_service() as service:
            ticket = service.submit(HomogeneousSVC(n_vms=3, mean=80.0, std=30.0))
            assert ticket.outcome == OUTCOME_ADMITTED
            oversize = service.submit(
                HomogeneousSVC(
                    n_vms=service.manager.state.total_slots + 1, mean=10.0, std=1.0
                )
            )
            assert oversize.outcome == OUTCOME_REJECTED
            payload = service.metrics()
        decoded = json.loads(json.dumps(payload))
        snapshot = decoded["metrics"]
        by_event = {
            entry["labels"]["event"]: entry["value"]
            for entry in snapshot["repro_service_events_total"]["series"]
        }
        assert by_event["submitted"] == 2
        assert by_event["admitted"] == 1
        assert by_event["rejected"] == 1
        latency = snapshot["repro_service_admission_latency_seconds"]["series"][0]
        assert latency["value"]["count"] == 2
        text = decoded["prometheus"]
        assert 'repro_service_events_total{event="admitted"} 1' in text
        assert "repro_service_uptime_seconds" in text
        assert "repro_network_tenants 1" in text
        assert "repro_outage_link_seconds_total" in text

    def test_tcp_roundtrip_serves_metrics(self, fresh_registry):
        with tiny_service() as service:
            server = AdmissionTCPServer(("127.0.0.1", 0), service)
            import threading

            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                port = server.server_address[1]
                with ServiceClient(host="127.0.0.1", port=port) as client:
                    client.submit(HomogeneousSVC(n_vms=2, mean=50.0, std=20.0))
                    payload = client.metrics()
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5.0)
        assert "repro_service_events_total" in payload["metrics"]
        assert payload["prometheus"].startswith("# ")


class TestRenderTop:
    def test_frame_contains_all_sections(self, fresh_registry):
        with tiny_service() as service:
            service.submit(HomogeneousSVC(n_vms=3, mean=80.0, std=30.0))
            stats = service.stats()
            metrics = service.metrics()["metrics"]
        frame = render_top(stats, metrics)
        assert "svc-repro top — mode=online workers=2" in frame
        assert "requests submitted=1  admitted=1" in frame
        assert "machine" in frame  # per-level occupancy table
        assert "headroom" in frame
        assert "latency(ms)" in frame and "(window 1/" in frame
        assert "empirical outage rate" in frame

    def test_frame_degrades_without_metrics(self):
        # A server run with --no-metrics returns an empty snapshot; the
        # dashboard must still render the stats-only sections.
        stats = {
            "mode": "online",
            "workers": 4,
            "uptime_s": 12.0,
            "counters": {"submitted": 0},
            "queue": {"ready": 0, "parked": 0},
            "admission_latency": {},
            "occupancy": {"by_level": []},
            "slots": {},
        }
        frame = render_top(stats, {})
        assert "svc-repro top — mode=online workers=4" in frame
        assert "empirical outage" not in frame
