"""Instrument facades: admission counters/traces, outage monitor, gauges."""

import json

from repro.abstractions.requests import HeterogeneousSVC, HomogeneousSVC
from repro.allocation import SVCHeterogeneousAllocator, SVCHeterogeneousExactAllocator
from repro.manager.network_manager import NetworkManager
from repro.network import NetworkState
from repro.obs import instruments
from repro.obs.instruments import (
    PHASE_COMBINE,
    PHASE_TABLE_BUILD,
    REASON_NO_FEASIBLE_SUBTREE,
    REASON_NO_FREE_SLOTS,
    admission_instruments,
    bind_network_gauges,
    outage_monitor,
)
from repro.topology.builder import TINY_SPEC, build_datacenter
from tests.conftest import build_star_tree


class TestAdmissionInstruments:
    def test_admit_and_reject_counters(self, fresh_registry):
        obs = admission_instruments()
        trace = obs.start("svc-dp")
        assert trace is not None  # sample_every=1 in the fixture
        trace.add_phase(PHASE_COMBINE, 0.001)
        obs.done("svc-dp", 0.002, admitted=True, trace=trace, n_vms=4)
        obs.start("svc-dp")
        obs.done("svc-dp", 0.001, admitted=False, reason=REASON_NO_FREE_SLOTS)

        requests = fresh_registry.get(
            "repro_admission_requests_total", allocator="svc-dp"
        )
        admitted = fresh_registry.get(
            "repro_admission_admitted_total", allocator="svc-dp"
        )
        rejected = fresh_registry.get(
            "repro_admission_rejected_total",
            allocator="svc-dp",
            reason=REASON_NO_FREE_SLOTS,
        )
        assert requests.value == 2
        assert admitted.value == 1
        assert rejected.value == 1
        phase = fresh_registry.get("repro_admission_phase_seconds", phase=PHASE_COMBINE)
        assert phase.count == 1
        assert obs.tracer.recent()[-1]["meta"]["n_vms"] == 4

    def test_cache_accounting(self, fresh_registry):
        obs = admission_instruments()
        obs.cache("machine", lookups=10, hits=7)
        obs.cache("machine", lookups=0, hits=0)  # no-op, not a divide-by-zero
        lookups = fresh_registry.get(
            "repro_admission_cache_lookups_total", cache="machine"
        )
        hits = fresh_registry.get("repro_admission_cache_hits_total", cache="machine")
        assert lookups.value == 10
        assert hits.value == 7

    def test_allocator_end_to_end_records_phases_and_caches(self, fresh_registry):
        # Drive the real fast-DP allocator: every request is traced
        # (sample_every=1), so phase histograms and cache counters move.
        manager = NetworkManager(build_datacenter(TINY_SPEC), epsilon=0.05)
        assert manager.request(HomogeneousSVC(n_vms=4, mean=100.0, std=30.0))
        assert (
            manager.request(HomogeneousSVC(n_vms=10**6, mean=100.0, std=30.0)) is None
        )
        hist = fresh_registry.get(
            "repro_admission_allocate_seconds", allocator="svc-dp"
        )
        assert hist.count == 2
        table_build = fresh_registry.get(
            "repro_admission_phase_seconds", phase=PHASE_TABLE_BUILD
        )
        assert table_build.count >= 1
        lookups = fresh_registry.get(
            "repro_admission_cache_lookups_total", cache="machine"
        )
        assert lookups.value > 0

    def test_exact_het_allocator_is_instrumented(self, fresh_registry):
        # The exact subset DP must feed the same counter/histogram families
        # as the other allocators — dispatcher stats and `svc-repro top`
        # undercounted while it bypassed repro.obs.
        tree = build_star_tree(slots=(2, 2), capacities=(1000.0, 1000.0))
        allocator = SVCHeterogeneousExactAllocator()
        state = NetworkState(tree, epsilon=0.05)
        assert allocator.allocate(state, HeterogeneousSVC.uniform(3, 100.0, 30.0), 1)
        # 6 VMs > 4 total slots: rejected before any table is built.
        assert allocator.allocate(state, HeterogeneousSVC.uniform(6, 100.0, 30.0), 2) is None
        # Saturate both uplinks: a 3-VM request must split but cannot.
        for link in state.links.values():
            if state.tree.node(link.link.child).is_machine:
                link.add_deterministic(999, link.capacity)
        assert allocator.allocate(state, HeterogeneousSVC.uniform(3, 100.0, 30.0), 3) is None

        name = allocator.name
        requests = fresh_registry.get("repro_admission_requests_total", allocator=name)
        admitted = fresh_registry.get("repro_admission_admitted_total", allocator=name)
        assert requests.value == 3
        assert admitted.value == 1
        for reason in (REASON_NO_FREE_SLOTS, REASON_NO_FEASIBLE_SUBTREE):
            rejected = fresh_registry.get(
                "repro_admission_rejected_total", allocator=name, reason=reason
            )
            assert rejected.value == 1, reason
        latency = fresh_registry.get("repro_admission_allocate_seconds", allocator=name)
        assert latency.count == 3

    def test_het_fast_path_records_caches_and_phases(self, fresh_registry):
        # The heterogeneous fast path shares machine/vertex/effective tables;
        # its cache counters and DP-phase timings must land in the registry.
        state = NetworkState(build_datacenter(TINY_SPEC), epsilon=0.05)
        allocator = SVCHeterogeneousAllocator()
        assert allocator.allocate(state, HeterogeneousSVC.uniform(6, 100.0, 30.0), 1)
        for cache in ("het_machine", "het_vertex", "het_eff"):
            lookups = fresh_registry.get(
                "repro_admission_cache_lookups_total", cache=cache
            )
            assert lookups is not None and lookups.value > 0, cache
            hits = fresh_registry.get("repro_admission_cache_hits_total", cache=cache)
            assert hits is not None and hits.value >= 0, cache
        combine = fresh_registry.get("repro_admission_phase_seconds", phase=PHASE_COMBINE)
        assert combine.count >= 1
        latency = fresh_registry.get(
            "repro_admission_allocate_seconds", allocator="svc-het"
        )
        assert latency.count == 1

    def test_disabled_swaps_in_noop_facade(self, fresh_registry):
        instruments.configure(enabled=False)
        obs = admission_instruments()
        assert obs.start("svc-dp") is None
        obs.done("svc-dp", 0.001, admitted=True)  # must not touch the registry
        obs.cache("machine", 5, 5)
        assert fresh_registry.get(
            "repro_admission_requests_total", allocator="svc-dp"
        ) is None
        monitor = outage_monitor()
        monitor.record(5, 5)
        assert monitor.rate() == 0.0
        assert monitor.within_bound()


class TestOutageMonitor:
    def test_rate_and_bound(self, fresh_registry):
        monitor = outage_monitor()
        assert monitor.rate() == 0.0  # no load yet: no NaN, no crash
        monitor.record(outage_seconds=2, loaded_seconds=10)
        monitor.record(outage_seconds=0, loaded_seconds=10)
        assert monitor.rate() == 2 / 20
        monitor.set_epsilon(0.25)
        assert monitor.within_bound()
        assert not monitor.within_bound(epsilon=0.05)

    def test_rate_gauge_pulls_live_value(self, fresh_registry):
        monitor = outage_monitor()
        monitor.record(1, 4)
        gauge = fresh_registry.get("repro_outage_empirical_rate")
        assert gauge.value == 0.25


class TestNetworkGauges:
    def test_gauges_follow_manager_state(self, fresh_registry):
        manager = NetworkManager(build_datacenter(TINY_SPEC), epsilon=0.05)
        bind_network_gauges(fresh_registry, manager)
        tenancy = manager.request(HomogeneousSVC(n_vms=4, mean=100.0, std=30.0))
        assert tenancy is not None
        assert fresh_registry.get("repro_network_tenants").value == 1.0
        used = fresh_registry.get("repro_network_slots", state="used")
        assert used.value == 4.0
        occupancy = fresh_registry.get(
            "repro_network_link_occupancy", level="machine", stat="max"
        )
        assert occupancy is not None and occupancy.value >= 0.0
        manager.release(tenancy)
        assert fresh_registry.get("repro_network_tenants").value == 0.0
        assert fresh_registry.get("repro_network_slots", state="used").value == 0.0
        # The whole bound registry must stay JSON-clean with live callbacks.
        json.dumps(fresh_registry.snapshot())

    def test_headroom_gauges_track_mean_demand(self, fresh_registry):
        manager = NetworkManager(build_datacenter(TINY_SPEC), epsilon=0.05)
        bind_network_gauges(fresh_registry, manager)
        before = fresh_registry.get(
            "repro_network_headroom_mbps", level="machine", stat="min"
        ).value
        tenancy = manager.request(HomogeneousSVC(n_vms=3, mean=200.0, std=50.0))
        assert tenancy is not None
        after = fresh_registry.get(
            "repro_network_headroom_mbps", level="machine", stat="min"
        ).value
        # A spread tenant puts mean demand on some machine uplink, so the
        # worst-case headroom can only shrink (or stay equal if co-located).
        assert after <= before


class TestExperimentInstruments:
    def test_families_present_before_traffic(self, fresh_registry):
        instruments.experiment_instruments()
        completed = fresh_registry.get(
            "repro_experiment_cells_completed_total", experiment="none"
        )
        seconds = fresh_registry.get(
            "repro_experiment_cell_seconds", experiment="none"
        )
        assert completed.value == 0
        assert seconds.count == 0

    def test_cell_completed_records_count_and_wall_time(self, fresh_registry):
        obs = instruments.experiment_instruments()
        obs.cell_completed("fig8", 0.3)
        obs.cell_completed("fig8", 1.7)
        obs.cell_completed("fig9", 0.05)
        assert fresh_registry.get(
            "repro_experiment_cells_completed_total", experiment="fig8"
        ).value == 2
        histogram = fresh_registry.get(
            "repro_experiment_cell_seconds", experiment="fig8"
        )
        assert histogram.count == 2
        assert histogram.total == 2.0
        assert fresh_registry.get(
            "repro_experiment_cells_completed_total", experiment="fig9"
        ).value == 1

    def test_disabled_instrumentation_is_a_noop(self, fresh_registry):
        instruments.configure(enabled=False)
        obs = instruments.experiment_instruments()
        obs.cell_completed("fig8", 0.3)  # must not touch (or need) a registry
        instruments.configure(enabled=True)
        assert fresh_registry.get(
            "repro_experiment_cells_completed_total", experiment="fig8"
        ) is None
