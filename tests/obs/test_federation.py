"""Metrics federation: merging per-shard registry snapshots."""

import json

from repro.obs.federation import (
    federation_meta,
    histogram_from_snapshot,
    merge_snapshots,
)
from repro.obs.registry import MetricsRegistry


def registry_snapshot(admitted, latencies=()):
    registry = MetricsRegistry()
    registry.counter("requests_total", "requests", outcome="admitted").inc(admitted)
    hist = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
    for value in latencies:
        hist.observe(value)
    registry.gauge("free_slots", "free slots").set(10.0 + admitted)
    return registry.snapshot()


def rows(merged, family, **labels):
    return [
        row
        for row in merged.get(family, {}).get("series", [])
        if all(row["labels"].get(key) == value for key, value in labels.items())
    ]


class TestMergeSnapshots:
    def test_per_shard_series_keep_their_identity(self):
        merged = merge_snapshots(
            {"0": registry_snapshot(3), "1": registry_snapshot(5)}
        )
        for shard, expected in (("0", 3), ("1", 5)):
            (row,) = rows(merged, "requests_total", shard=shard)
            assert row["value"] == expected
            assert row["labels"]["outcome"] == "admitted"

    def test_counters_fold_into_a_cluster_aggregate(self):
        merged = merge_snapshots(
            {"0": registry_snapshot(3), "1": registry_snapshot(5)}
        )
        (aggregate,) = rows(merged, "requests_total", shard="all")
        assert aggregate["value"] == 8.0
        assert aggregate["labels"]["outcome"] == "admitted"

    def test_gauges_aggregate_by_sum(self):
        merged = merge_snapshots(
            {"0": registry_snapshot(3), "1": registry_snapshot(5)}
        )
        (aggregate,) = rows(merged, "free_slots", shard="all")
        assert aggregate["value"] == 13.0 + 15.0

    def test_histograms_are_rebuilt_and_merged_across_processes(self):
        merged = merge_snapshots(
            {
                "0": registry_snapshot(1, latencies=(0.05, 0.5)),
                "1": registry_snapshot(1, latencies=(5.0,)),
            }
        )
        (aggregate,) = rows(merged, "lat_seconds", shard="all")
        buckets = aggregate["value"]["buckets"]
        assert buckets == {"0.1": 1, "1.0": 1, "+Inf": 1}
        assert aggregate["value"]["count"] == 3
        assert aggregate["value"]["sum"] == 5.55

    def test_single_source_gets_no_duplicate_aggregate(self):
        merged = merge_snapshots({"0": registry_snapshot(3)})
        assert rows(merged, "requests_total", shard="all") == []
        assert len(rows(merged, "requests_total", shard="0")) == 1

    def test_dead_shard_snapshot_is_skipped(self):
        # A shard that failed its scrape contributes no series; the live
        # shard's rows (and the aggregate over the remaining sources)
        # survive so partial federation degrades instead of failing.
        merged = merge_snapshots({"0": registry_snapshot(3), "1": None})
        (row,) = rows(merged, "requests_total", shard="0")
        assert row["value"] == 3
        assert rows(merged, "requests_total", shard="1") == []

    def test_merged_snapshot_is_json_clean(self):
        merged = merge_snapshots(
            {"0": registry_snapshot(1, latencies=(0.2,)), "1": registry_snapshot(2)}
        )
        json.dumps(merged)


class TestHistogramFromSnapshot:
    def test_round_trip_preserves_distribution(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", "hist", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 3.0):
            hist.observe(value)
        clone = histogram_from_snapshot(hist.snapshot())
        assert clone.bounds == hist.bounds
        assert clone.counts == hist.counts
        assert clone.count == 3
        assert clone.total == hist.total

    def test_rejects_non_histogram_payloads(self):
        assert histogram_from_snapshot({"value": 3.0}) is None
        assert histogram_from_snapshot({"buckets": {}}) is None
        assert histogram_from_snapshot({"buckets": {"nan-bound": 1}}) is None


class TestFederationMeta:
    def test_meta_lists_sources_and_family_union(self):
        meta = federation_meta(
            {"1": registry_snapshot(1), "0": registry_snapshot(2), "coordinator": {}}
        )
        assert meta["shards"] == ["0", "1", "coordinator"]
        assert meta["families"] == 3  # requests_total, lat_seconds, free_slots
