"""Span tracer: deterministic sampling, phase accumulation, ring buffer."""

import json

import pytest

from repro.obs.tracing import SpanTracer


class TestSampling:
    def test_every_nth_call_is_sampled(self):
        tracer = SpanTracer(sample_every=3)
        results = [tracer.start("alloc") for _ in range(9)]
        live = [index for index, trace in enumerate(results) if trace is not None]
        assert live == [2, 5, 8]
        assert tracer.call_count == 9
        assert tracer.sampled_count == 3

    def test_sample_every_one_traces_everything(self):
        tracer = SpanTracer(sample_every=1)
        assert all(tracer.start("x") is not None for _ in range(5))

    def test_invalid_sampling_rate(self):
        with pytest.raises(ValueError):
            SpanTracer(sample_every=0)


class TestTraceLifecycle:
    def test_phases_accumulate(self):
        tracer = SpanTracer(sample_every=1)
        trace = tracer.start("alloc")
        trace.add_phase("combine", 0.25)
        trace.add_phase("combine", 0.25)
        trace.add_phase("prune", 0.1)
        assert trace.phases == {"combine": 0.5, "prune": 0.1}

    def test_finish_sets_duration_and_lands_in_ring(self):
        tracer = SpanTracer(sample_every=1, keep=4)
        trace = tracer.start("alloc")
        trace.annotate(admitted=True, n_vms=8)
        with trace.span("backtrack"):
            pass
        tracer.finish(trace)
        assert trace.duration_s is not None and trace.duration_s >= 0.0
        recent = tracer.recent()
        assert len(recent) == 1
        entry = recent[0]
        assert entry["name"] == "alloc"
        assert entry["meta"] == {"admitted": True, "n_vms": 8}
        assert entry["spans"][0]["name"] == "backtrack"
        json.dumps(recent)  # endpoint payload must survive serialization

    def test_ring_buffer_is_bounded(self):
        tracer = SpanTracer(sample_every=1, keep=3)
        for _ in range(10):
            tracer.finish(tracer.start("alloc"))
        assert len(tracer.recent(limit=100)) == 3
        # Newest last: ids keep increasing across the ring.
        ids = [entry["trace_id"] for entry in tracer.recent(limit=100)]
        assert ids == sorted(ids)
