"""Span tracer: deterministic sampling, phase offsets, distributed context."""

import json
import os

import pytest

from repro.obs.tracing import (
    SpanTracer,
    TraceContext,
    activate_context,
    current_context,
    record_remote_span,
    take_remote_spans,
)


class TestSampling:
    def test_every_nth_call_is_sampled(self):
        tracer = SpanTracer(sample_every=3)
        results = [tracer.start("alloc") for _ in range(9)]
        live = [index for index, trace in enumerate(results) if trace is not None]
        assert live == [2, 5, 8]
        assert tracer.call_count == 9
        assert tracer.sampled_count == 3

    def test_sample_every_one_traces_everything(self):
        tracer = SpanTracer(sample_every=1)
        assert all(tracer.start("x") is not None for _ in range(5))

    def test_invalid_sampling_rate(self):
        with pytest.raises(ValueError):
            SpanTracer(sample_every=0)


class TestSamplePhase:
    def test_phase_staggers_which_calls_are_sampled(self):
        # Two freshly-spawned workers with different phases must not pick
        # the same startup-biased Nth calls.
        sampled = {}
        for phase in (0, 1):
            tracer = SpanTracer(sample_every=4, phase=phase)
            results = [tracer.start("alloc") for _ in range(12)]
            sampled[phase] = {
                index for index, trace in enumerate(results) if trace is not None
            }
        assert sampled[0] == {3, 7, 11}
        assert sampled[1] == {2, 6, 10}
        assert not sampled[0] & sampled[1]

    def test_phase_preserves_long_run_rate_and_call_count(self):
        tracer = SpanTracer(sample_every=4, phase=3)
        results = [tracer.start("alloc") for _ in range(400)]
        assert sum(1 for trace in results if trace is not None) == 100
        assert tracer.call_count == 400  # the offset is not billed as calls

    def test_worker_configure_seeds_the_admission_tracer_phase(self, fresh_registry):
        # The shard child entry point staggers via configure(sample_phase=k);
        # the per-process admission tracer must pick it up.
        from repro.obs import instruments

        instruments.configure(sample_phase=3, sample_every=4)
        try:
            tracer = instruments.admission_instruments().tracer
            results = [tracer.start("admission") for _ in range(8)]
            live = [i for i, trace in enumerate(results) if trace is not None]
            assert live == [0, 4]
        finally:
            instruments.configure(sample_phase=0, sample_every=1)


class TestTraceContext:
    def test_dict_round_trip(self):
        context = TraceContext("1234-7", parent="coordinator", sampled=True)
        clone = TraceContext.from_dict(context.to_dict())
        assert clone.trace_id == "1234-7"
        assert clone.parent == "coordinator"
        assert clone.sampled is True

    def test_from_dict_rejects_non_contexts(self):
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict({"parent": "x"}) is None
        assert TraceContext.from_dict("1234-7") is None

    def test_child_keeps_the_trace_id(self):
        child = TraceContext("1234-7").child("shard0")
        assert child.trace_id == "1234-7"
        assert child.parent == "shard0"


class TestForcedSampling:
    def test_explicit_context_forces_a_trace(self):
        tracer = SpanTracer(sample_every=1000)
        trace = tracer.start("admission", context=TraceContext("99-1"))
        assert trace is not None
        assert trace.meta["trace_id_global"] == "99-1"

    def test_active_thread_context_forces_a_trace(self):
        tracer = SpanTracer(sample_every=1000)
        assert current_context() is None
        with activate_context(TraceContext("99-2")):
            assert current_context().trace_id == "99-2"
            trace = tracer.start("admission")
        assert current_context() is None
        assert trace is not None
        assert trace.meta["trace_id_global"] == "99-2"

    def test_unsampled_context_does_not_force(self):
        tracer = SpanTracer(sample_every=1000)
        context = TraceContext("99-3", sampled=False)
        assert tracer.start("admission", context=context) is None


class TestRemoteSpans:
    def test_take_returns_only_the_wanted_trace(self):
        record_remote_span("t-a", {"name": "allocate"})
        record_remote_span("t-b", {"name": "adopt"})
        record_remote_span("t-a", {"name": "journal"})
        taken = take_remote_spans("t-a")
        assert [span["name"] for span in taken] == ["allocate", "journal"]
        assert all(span["pid"] == os.getpid() for span in taken)
        # t-a is drained, t-b still buffered.
        assert take_remote_spans("t-a") == []
        assert [span["name"] for span in take_remote_spans("t-b")] == ["adopt"]

    def test_remote_spans_fold_into_the_trace_dump(self):
        tracer = SpanTracer(sample_every=1)
        trace = tracer.start("cluster_admission")
        trace.add_remote({"name": "shard0:allocate", "pid": 4242, "shard": 0})
        tracer.finish(trace)
        entry = tracer.recent()[-1]
        assert entry["remote_spans"] == [
            {"name": "shard0:allocate", "pid": 4242, "shard": 0}
        ]
        json.dumps(entry)


class TestTraceLifecycle:
    def test_phases_accumulate(self):
        tracer = SpanTracer(sample_every=1)
        trace = tracer.start("alloc")
        trace.add_phase("combine", 0.25)
        trace.add_phase("combine", 0.25)
        trace.add_phase("prune", 0.1)
        assert trace.phases == {"combine": 0.5, "prune": 0.1}

    def test_finish_sets_duration_and_lands_in_ring(self):
        tracer = SpanTracer(sample_every=1, keep=4)
        trace = tracer.start("alloc")
        trace.annotate(admitted=True, n_vms=8)
        with trace.span("backtrack"):
            pass
        tracer.finish(trace)
        assert trace.duration_s is not None and trace.duration_s >= 0.0
        recent = tracer.recent()
        assert len(recent) == 1
        entry = recent[0]
        assert entry["name"] == "alloc"
        assert entry["meta"] == {"admitted": True, "n_vms": 8}
        assert entry["spans"][0]["name"] == "backtrack"
        json.dumps(recent)  # endpoint payload must survive serialization

    def test_ring_buffer_is_bounded(self):
        tracer = SpanTracer(sample_every=1, keep=3)
        for _ in range(10):
            tracer.finish(tracer.start("alloc"))
        assert len(tracer.recent(limit=100)) == 3
        # Newest last: ids keep increasing across the ring.
        ids = [entry["trace_id"] for entry in tracer.recent(limit=100)]
        assert ids == sorted(ids)
