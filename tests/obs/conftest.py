"""Shared fixture: an isolated global registry per test.

The instruments module owns process-global state (registry + cached
facades); these tests mutate it, so each one runs against a fresh registry
and restores the default configuration afterwards.
"""

import pytest

from repro.obs import instruments


@pytest.fixture
def fresh_registry():
    registry = instruments.reset_global_registry()
    instruments.configure(enabled=True, sample_every=1)
    yield registry
    instruments.reset_global_registry()
    instruments.configure(enabled=True, sample_every=64)
