"""Observability over the wire: the ``obs`` op, top's reconnect loop, obs CLI."""

import json
import signal
import socket
import threading
import time

from repro.obs.flightrec import FlightRecorder
from repro.obs.obs_cli import obs_main
from repro.service.client import ServiceClient
from repro.service.top import top_main

from .test_server_e2e import mixed_request, read_ready, spawn_server


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestServerObsOp:
    def test_obs_op_returns_ring_traces_and_disk_dump(self, tmp_path):
        journal_dir = tmp_path / "journal"
        proc = spawn_server(journal_dir, extra_args=("--trace-sample", "1"))
        try:
            ready = read_ready(proc)
            with ServiceClient(port=ready["port"], timeout=10) as client:
                for index in range(3):
                    client.submit(mixed_request(index))
                obs = client.obs()
                assert obs["pid"] == ready["pid"]
                assert isinstance(obs["flight"], list)
                # --trace-sample 1 traces every admission server-side.
                assert len(obs["traces"]) == 3
                assert all("spans" in trace for trace in obs["traces"])

                dumped = client.obs(dump=True, limit=2)
                assert len(dumped["flight"]) <= 2  # limit bounds the ring tail
                # The server persisted its ring next to the journal.
                dump_path = dumped["dump_path"]
                assert dump_path is not None
                on_disk = json.loads(open(dump_path).read())
                assert on_disk["trigger"] == "request"
                assert on_disk["pid"] == ready["pid"]
                client.shutdown()
            proc.wait(30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(30)


class TestTopReconnect:
    def test_top_gives_up_after_max_reconnects(self, capsys):
        port = free_port()  # nothing listens here
        rc = top_main(
            [
                "--port",
                str(port),
                "--interval",
                "0.01",
                "--max-reconnects",
                "2",
                "--no-clear",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "cannot reach" in captured.err
        assert captured.out.count("reconnecting") == 2

    def test_top_survives_a_daemon_restart(self, tmp_path, capsys):
        journal_dir = tmp_path / "journal"
        port = free_port()
        proc = spawn_server(journal_dir, extra_args=("--port", str(port)))
        try:
            read_ready(proc)
            proc.send_signal(signal.SIGKILL)
            proc.wait(30)

            # top starts against the dead daemon, keeps retrying...
            result = {}

            def run_top():
                result["rc"] = top_main(
                    [
                        "--port",
                        str(port),
                        "--interval",
                        "0.2",
                        "--iterations",
                        "1",
                        "--max-reconnects",
                        "60",
                        "--no-clear",
                    ]
                )

            top_thread = threading.Thread(target=run_top, daemon=True)
            top_thread.start()
            time.sleep(0.5)

            # ...until the daemon comes back on the same port.
            proc = spawn_server(journal_dir, extra_args=("--port", str(port)))
            read_ready(proc)
            top_thread.join(30)
            assert not top_thread.is_alive(), "top never rendered a frame"
            with ServiceClient(port=port, timeout=10) as client:
                client.shutdown()
            proc.wait(30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(30)
        captured = capsys.readouterr()
        assert result["rc"] == 0
        assert "reconnecting" in captured.out
        assert "empirical outage rate" in captured.out  # a real frame rendered


class TestObsCliWorkdir:
    def test_workdir_mode_collects_disk_dumps(self, tmp_path, capsys):
        recorder = FlightRecorder(capacity=8)
        recorder.dump_dir = str(tmp_path / "svc" / "journal")
        recorder.record("degradation", to_state="read_only")
        recorder.maybe_dump("crash")
        out = tmp_path / "triage.json"
        rc = obs_main(
            ["dump", "--workdir", str(tmp_path / "svc"), "--out", str(out)]
        )
        assert rc == 0
        report = json.loads(out.read_text())
        (dump,) = report["dumps"]
        assert dump["trigger"] == "crash"
        assert dump["events"][0]["kind"] == "degradation"

    def test_workdir_mode_rejects_a_missing_directory(self, tmp_path, capsys):
        rc = obs_main(["dump", "--workdir", str(tmp_path / "nope")])
        assert rc == 2
        assert "no such directory" in capsys.readouterr().err
