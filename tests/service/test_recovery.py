"""Snapshot -> journal -> recovery round-trips under randomized crashes.

The protocol of every test: drive a journaled service through a randomized
admit/release sequence, "crash" by truncating the WAL at an arbitrary byte
position (simulating a torn final write), recover, and compare the
recovered :class:`NetworkState` field-for-field against a *never-crashed
replica* — a fresh manager that re-executes exactly the logical operations
recorded in the surviving journal prefix.  Occupancies, per-link resident
demands, free slots and the active tenancy set must all match.
"""

import shutil

import numpy as np
import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.manager.network_manager import NetworkManager
from repro.service.codec import network_state_to_dict, request_from_dict
from repro.service.concurrency import OUTCOME_ADMITTED, AdmissionService
from repro.service.journal import DurabilityStore, Journal, OP_ADMIT, OP_REJECT, OP_RELEASE
from repro.service.recovery import oracle_replay, recover_manager
from repro.stochastic import Normal


def random_request(rng: np.random.Generator):
    kind = rng.integers(0, 3)
    n_vms = int(rng.integers(2, 10))
    if kind == 0:
        return DeterministicVC(n_vms=n_vms, bandwidth=float(rng.uniform(40, 200)))
    if kind == 1:
        return HomogeneousSVC(
            n_vms=n_vms,
            mean=float(rng.uniform(40, 200)),
            std=float(rng.uniform(5, 80)),
        )
    return HeterogeneousSVC(
        n_vms=n_vms,
        demands=tuple(
            Normal(float(rng.uniform(40, 200)), float(rng.uniform(5, 60)))
            for _ in range(n_vms)
        ),
    )


def run_journaled_workload(tree, directory, seed, operations=60, snapshot_every=7):
    """Sequentially admit/release random requests through a journaled service."""
    rng = np.random.default_rng(seed)
    store = DurabilityStore(directory, snapshot_every=snapshot_every)
    manager = NetworkManager(tree)
    with AdmissionService(manager, store=store, workers=1) as service:
        active = []
        for _ in range(operations):
            if active and rng.random() < 0.35:
                victim = active.pop(int(rng.integers(0, len(active))))
                assert service.release(victim)
            else:
                ticket = service.submit(random_request(rng), wait=True)
                if ticket.outcome == OUTCOME_ADMITTED:
                    active.append(ticket.request_id)
    store.close()
    return manager


def replay_replica(tree, wal_path):
    """The never-crashed replica: re-execute the journaled logical ops.

    Each ``admit``/``reject`` record is re-run through a *fresh* manager's
    real admission path (allocator included), each ``release`` through its
    release path.  Admission control is deterministic given identical
    history, so the replica must reproduce the journaled allocations —
    asserted record by record — and end in the same state the journal
    encodes.
    """
    manager = NetworkManager(tree)
    for record in Journal.iter_records(wal_path):
        if record["op"] == OP_ADMIT:
            allocation = record["allocation"]
            tenancy = manager.request(request_from_dict(allocation["request"]))
            assert tenancy is not None, f"replica rejected journaled admit {record['seq']}"
            assert tenancy.request_id == allocation["request_id"]
        elif record["op"] == OP_REJECT:
            assert manager.request(request_from_dict(record["request"])) is None
        elif record["op"] == OP_RELEASE:
            manager.release(manager.tenancy(record["request_id"]))
    return manager


def crash_copy(source_dir, destination, wal_bytes):
    """Copy the durability directory and truncate its WAL at a byte offset."""
    shutil.copytree(source_dir, destination)
    wal = destination / "wal.jsonl"
    with open(wal, "r+b") as handle:
        handle.truncate(wal_bytes)
    return destination


def assert_state_matches(recovered: NetworkManager, replica: NetworkManager):
    assert network_state_to_dict(recovered.state) == network_state_to_dict(replica.state)
    assert sorted(t.request_id for t in recovered.tenancies()) == sorted(
        t.request_id for t in replica.tenancies()
    )
    assert recovered.active_tenancies == replica.active_tenancies
    for link_id, occupancy in replica.state.occupancies():
        # The replica's incremental aggregates carry ~1e-10 float residue
        # from its commit/release history; recovery re-commits only the
        # active allocations and is exact.
        assert recovered.state.occupancy_of(link_id) == pytest.approx(occupancy, abs=1e-6)
    assert recovered.admitted_count == replica.admitted_count
    assert recovered.rejected_count == replica.rejected_count


class TestCleanRecovery:
    def test_full_journal_recovery_matches_live_manager(self, tiny_tree, tmp_path):
        live = run_journaled_workload(tiny_tree, tmp_path / "j", seed=1)
        store = DurabilityStore(tmp_path / "j")
        recovered, report = recover_manager(store, tiny_tree)
        store.close()
        assert report.used_snapshot  # snapshot_every=7 over 60 ops
        assert_state_matches(recovered, live)
        assert recovered.next_request_id == live.next_request_id

    def test_recovery_without_snapshots_replays_whole_journal(self, tiny_tree, tmp_path):
        live = run_journaled_workload(
            tiny_tree, tmp_path / "j", seed=2, snapshot_every=10_000
        )
        store = DurabilityStore(tmp_path / "j")
        recovered, report = recover_manager(store, tiny_tree)
        store.close()
        assert not report.used_snapshot
        assert report.replayed_records > 0
        assert_state_matches(recovered, live)

    def test_recovered_manager_keeps_serving(self, tiny_tree, tmp_path):
        run_journaled_workload(tiny_tree, tmp_path / "j", seed=3, operations=30)
        store = DurabilityStore(tmp_path / "j")
        recovered, _ = recover_manager(store, tiny_tree)
        with AdmissionService(recovered, store=store, workers=1) as service:
            ticket = service.submit(HomogeneousSVC(n_vms=2, mean=50.0, std=10.0))
            assert ticket.outcome == OUTCOME_ADMITTED
        store.close()
        # The continued journal must still replay cleanly end to end.
        state, active = oracle_replay((tmp_path / "j") / "wal.jsonl", tiny_tree)
        assert network_state_to_dict(state) == network_state_to_dict(recovered.state)
        assert sorted(active) == sorted(t.request_id for t in recovered.tenancies())


class TestCrashAtArbitraryPositions:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_byte_level_crash_points(self, tiny_tree, tmp_path, seed):
        source = tmp_path / "source"
        run_journaled_workload(tiny_tree, source, seed=seed)
        wal_size = (source / "wal.jsonl").stat().st_size
        rng = np.random.default_rng(seed + 1000)
        offsets = sorted(
            {int(offset) for offset in rng.integers(1, wal_size, size=6)}
            | {wal_size, wal_size - 1}
        )
        for index, offset in enumerate(offsets):
            crashed = crash_copy(source, tmp_path / f"crash-{index}", wal_bytes=offset)
            store = DurabilityStore(crashed)
            recovered, _report = recover_manager(store, tiny_tree)
            store.close()
            replica = replay_replica(tiny_tree, crashed / "wal.jsonl")
            assert_state_matches(recovered, replica)

    def test_crash_on_record_boundaries(self, tiny_tree, tmp_path):
        source = tmp_path / "source"
        run_journaled_workload(tiny_tree, source, seed=21, operations=40)
        wal = source / "wal.jsonl"
        boundaries = []
        offset = 0
        with open(wal, "rb") as handle:
            for line in handle:
                offset += len(line)
                boundaries.append(offset)
        for index, offset in enumerate(boundaries[:: max(1, len(boundaries) // 8)]):
            crashed = crash_copy(source, tmp_path / f"boundary-{index}", wal_bytes=offset)
            store = DurabilityStore(crashed)
            recovered, _report = recover_manager(store, tiny_tree)
            store.close()
            replica = replay_replica(tiny_tree, crashed / "wal.jsonl")
            assert_state_matches(recovered, replica)

    def test_future_snapshot_is_distrusted_after_tail_loss(self, tiny_tree, tmp_path):
        """A snapshot covering lost WAL records must not resurrect them."""
        source = tmp_path / "source"
        run_journaled_workload(tiny_tree, source, seed=31, snapshot_every=3)
        # Truncate the WAL to half its records but keep every snapshot file.
        records = Journal.replay(source / "wal.jsonl")
        keep = len(records) // 2
        offset = 0
        with open(source / "wal.jsonl", "rb") as handle:
            for _ in range(keep):
                offset += len(handle.readline())
        crashed = crash_copy(source, tmp_path / "crash", wal_bytes=offset)
        store = DurabilityStore(crashed)
        recovered, report = recover_manager(store, tiny_tree)
        store.close()
        assert report.snapshot_seq <= keep
        replica = replay_replica(tiny_tree, crashed / "wal.jsonl")
        assert_state_matches(recovered, replica)


class TestOracleReplay:
    def test_oracle_agrees_with_recover_manager(self, tiny_tree, tmp_path):
        run_journaled_workload(tiny_tree, tmp_path / "j", seed=41)
        store = DurabilityStore(tmp_path / "j")
        recovered, _ = recover_manager(store, tiny_tree)
        store.close()
        state, active = oracle_replay((tmp_path / "j") / "wal.jsonl", tiny_tree)
        assert network_state_to_dict(state) == network_state_to_dict(recovered.state)
        assert sorted(active) == sorted(t.request_id for t in recovered.tenancies())


class TestIdempotencyIndexRebuild:
    """Keys are scanned over the WHOLE journal, not the post-snapshot
    suffix — a key whose tenancy was released before the last snapshot
    must still deduplicate after recovery (satellite of the cluster PR:
    the coordinator trusts this index for shard-side dedup)."""

    def test_index_survives_snapshot_and_seeds_dedup(self, tiny_tree, tmp_path):
        directory = tmp_path / "j"
        store = DurabilityStore(directory, snapshot_every=2)
        manager = NetworkManager(tiny_tree)
        admitted = {}
        with AdmissionService(manager, store=store, workers=1) as service:
            for index in range(4):
                ticket = service.submit(
                    HomogeneousSVC(n_vms=2, mean=40.0, std=8.0),
                    wait=True,
                    idempotency_key=f"key-{index}",
                )
                assert ticket.outcome == OUTCOME_ADMITTED
                admitted[f"key-{index}"] = ticket.request_id
            reject = service.submit(
                HomogeneousSVC(n_vms=10_000, mean=1.0, std=0.1),
                wait=True,
                idempotency_key="key-reject",
            )
            assert reject.outcome != OUTCOME_ADMITTED
            # Release one tenant, then keep admitting so later snapshots
            # no longer carry key-0's allocation.
            assert service.release(admitted["key-0"])
            for index in range(4, 8):
                ticket = service.submit(
                    HomogeneousSVC(n_vms=2, mean=40.0, std=8.0),
                    wait=True,
                    idempotency_key=f"key-{index}",
                )
                assert ticket.outcome == OUTCOME_ADMITTED
                admitted[f"key-{index}"] = ticket.request_id
        store.close()

        store = DurabilityStore(directory)
        recovered, report = recover_manager(store, tiny_tree)
        assert report.used_snapshot  # snapshot_every=2 guarantees several
        for key, request_id in admitted.items():
            assert report.idempotency_index[key] == {
                "outcome": "admitted",
                "request_id": request_id,
            }
        assert report.idempotency_index["key-reject"] == {
            "outcome": "rejected",
            "request_id": None,
        }

        active_before = recovered.active_tenancies
        with AdmissionService(
            recovered,
            store=store,
            workers=1,
            idempotency_index=report.idempotency_index,
        ) as service:
            for key in ("key-0", "key-3", "key-reject"):
                replay = service.submit(
                    HomogeneousSVC(n_vms=2, mean=40.0, std=8.0),
                    wait=True,
                    idempotency_key=key,
                )
                expected = report.idempotency_index[key]
                assert replay.outcome == expected["outcome"]
                assert replay.request_id == expected["request_id"]
            # Every replay deduplicated: nothing new was admitted.
            assert recovered.active_tenancies == active_before
            assert service.counters.deduped == 3
        store.close()
