"""End-to-end tests of the asyncio front door (``--frontend async``).

The async front door is the default, so these tests pin its specific
contracts: wire compatibility with the threaded protocol, one stalled
connection never blocking the event loop, typed sheds under failpoints,
and kill -9 recovery equal to the oracle replay of the surviving journal.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.abstractions import DeterministicVC, HomogeneousSVC
from repro.service.client import OverloadedError, ServiceClient
from repro.service.codec import network_state_to_dict
from repro.service.journal import DurabilityStore
from repro.service.recovery import oracle_replay, recover_manager
from repro.topology import TINY_SPEC, build_datacenter

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def spawn_async_server(extra_args=(), journal_dir=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--port",
        "0",
        "--scale",
        "tiny",
        "--frontend",
        "async",
        "--workers",
        "2",
    ]
    if journal_dir is not None:
        argv += ["--journal-dir", str(journal_dir)]
    argv += list(extra_args)
    return subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )


def read_ready(proc, timeout=30.0):
    result = {}

    def reader():
        line = proc.stdout.readline()
        if line:
            result.update(json.loads(line))

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    thread.join(timeout)
    if not result:
        proc.kill()
        pytest.fail("async server did not print a ready line in time")
    return result


def reap(proc):
    if proc.poll() is None:
        proc.kill()
        proc.wait(30)


class TestAsyncProtocol:
    def test_full_op_surface_over_one_connection(self):
        proc = spawn_async_server(
            ["--batch-max", "8", "--tenant-quota", "64", "--tenant-weight", "gold=3"]
        )
        try:
            ready = read_ready(proc)
            assert ready["frontend"] == "async"
            with ServiceClient(port=ready["port"], timeout=15) as client:
                assert client.ping()
                reply = client.submit(
                    HomogeneousSVC(n_vms=3, mean=60.0, std=20.0), tenant="gold"
                )
                assert reply["outcome"] == "admitted"
                assert client.status(reply["ticket"])["outcome"] == "admitted"
                stats = client.stats()
                assert stats["batching"]["batch_max"] == 8
                assert stats["tenants"]["quota"] == 64
                assert stats["tenants"]["weights"]["gold"] == 3
                metrics = client.metrics()
                assert "repro_service_batch_size" in metrics["prometheus"]
                assert client.release(reply["request_id"])["released"] == (
                    reply["request_id"]
                )
                client.shutdown()
            assert proc.wait(30) == 0
        finally:
            reap(proc)

    def test_malformed_lines_do_not_kill_the_connection(self):
        proc = spawn_async_server()
        try:
            ready = read_ready(proc)
            import socket

            with socket.create_connection(("127.0.0.1", ready["port"]), 10) as sock:
                handle = sock.makefile("rw")
                handle.write("{not json\n")
                handle.flush()
                assert json.loads(handle.readline())["ok"] is False
                handle.write(json.dumps({"op": "nope"}) + "\n")
                handle.flush()
                assert "unknown op" in json.loads(handle.readline())["error"]
                handle.write(json.dumps({"op": "ping"}) + "\n")
                handle.flush()
                assert json.loads(handle.readline())["pong"] is True
                handle.write(json.dumps({"op": "shutdown"}) + "\n")
                handle.flush()
                assert json.loads(handle.readline())["bye"] is True
            assert proc.wait(30) == 0
        finally:
            reap(proc)


class TestAsyncFailpoints:
    def test_stalled_connection_does_not_block_the_loop(self):
        # One response stalls for 2s; a second connection's ping must still
        # answer immediately, proving the stall pins a pool thread only.
        proc = spawn_async_server(
            ["--failpoints", "server.response_stall=delay:delay_s=2.0:max_hits=1"]
        )
        try:
            port = read_ready(proc)["port"]
            stalled = ServiceClient(port=port, timeout=15)
            stall_done = []

            def stalled_ping():
                stalled.ping()  # consumes the one delayed hit
                stall_done.append(time.monotonic())

            thread = threading.Thread(target=stalled_ping)
            started = time.monotonic()
            thread.start()
            time.sleep(0.3)  # let the stalled response enter the failpoint
            with ServiceClient(port=port, timeout=15) as other:
                assert other.ping()
                unstalled_elapsed = time.monotonic() - started
            thread.join(30)
            stalled.close()
            assert stall_done, "stalled ping never completed"
            assert stall_done[0] - started >= 1.5, "failpoint never stalled"
            assert unstalled_elapsed < 1.5, (
                "second connection waited out the stall: event loop blocked"
            )
            with ServiceClient(port=port, timeout=15) as client:
                client.shutdown()
            assert proc.wait(30) == 0
        finally:
            reap(proc)

    def test_queue_shed_failpoint_surfaces_typed_error(self):
        proc = spawn_async_server(
            ["--failpoints", "queue.accept=shed:max_hits=1"]
        )
        try:
            port = read_ready(proc)["port"]
            with ServiceClient(port=port, timeout=15) as client:
                with pytest.raises(OverloadedError) as excinfo:
                    client.submit(HomogeneousSVC(n_vms=2, mean=40.0, std=10.0))
                assert excinfo.value.retry_after is not None
                # The shed was injected once; the service itself is healthy.
                reply = client.submit(HomogeneousSVC(n_vms=2, mean=40.0, std=10.0))
                assert reply["outcome"] == "admitted"
                client.shutdown()
            assert proc.wait(30) == 0
        finally:
            reap(proc)


class TestAsyncKillRecovery:
    def test_kill_nine_then_oracle_recovery(self, tmp_path):
        journal_dir = tmp_path / "journal"
        proc = spawn_async_server(["--batch-max", "8"], journal_dir=journal_dir)
        try:
            port = read_ready(proc)["port"]
            admitted = []
            with ServiceClient(port=port, timeout=15) as client:
                for index in range(40):
                    request = (
                        HomogeneousSVC(n_vms=2 + index % 3, mean=70.0, std=25.0)
                        if index % 2
                        else DeterministicVC(n_vms=2, bandwidth=80.0)
                    )
                    reply = client.submit(request, tenant=f"t{index % 3}")
                    if reply.get("outcome") == "admitted":
                        admitted.append(reply["request_id"])
                    if len(admitted) > 5 and index % 4 == 0:
                        client.release(admitted.pop(0))
            proc.send_signal(signal.SIGKILL)
            proc.wait(30)
        finally:
            reap(proc)

        tree = build_datacenter(TINY_SPEC)
        store = DurabilityStore(journal_dir)
        recovered, report = recover_manager(store, tree)
        store.close()
        oracle_state, oracle_active = oracle_replay(journal_dir / "wal.jsonl", tree)
        assert network_state_to_dict(recovered.state) == (
            network_state_to_dict(oracle_state)
        )
        assert sorted(t.request_id for t in recovered.tenancies()) == (
            sorted(oracle_active)
        )
        assert report.last_seq > 0
