"""Batched admission equivalence: coalescing must never change a decision.

The batcher's contract (DESIGN: batching is amortization, not semantics) is
proven two ways:

* **Allocation layer** — replaying a request stream through one shared
  :class:`BatchContext` must produce bit-identical decisions *and* final
  network state versus fresh sequential calls, for hypothesis-generated
  streams over every request kind.
* **Service layer** — a single-worker service with ``batch_max`` 32 must
  resolve a recorded trace to exactly the outcomes of an unbatched service,
  with identical final occupancy fingerprints, while actually coalescing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.manager.network_manager import NetworkManager
from repro.service.codec import network_state_to_dict, request_shape_key
from repro.service.concurrency import AdmissionService
from repro.stochastic import Normal


def homogeneous(n_vms=4, mean=80.0, std=30.0):
    return HomogeneousSVC(n_vms=n_vms, mean=mean, std=std)


def run_sequential(tree, requests):
    manager = NetworkManager(tree)
    decisions = [manager.request(request) for request in requests]
    return decisions, network_state_to_dict(manager.state)


def run_batched(tree, requests):
    manager = NetworkManager(tree)
    context = manager.batch_context()
    decisions = [manager.request(request, batch=context) for request in requests]
    return decisions, network_state_to_dict(manager.state)


def describe(decisions):
    """Tenancy stream -> comparable (admitted?, id, placement) tuples."""
    return [
        (t.request_id, tuple(t.vm_machines)) if t is not None else None
        for t in decisions
    ]


# ----------------------------------------------------------------------
# Allocation layer
# ----------------------------------------------------------------------

homogeneous_streams = st.lists(
    st.builds(
        HomogeneousSVC,
        n_vms=st.integers(1, 10),
        mean=st.sampled_from([40.0, 80.0, 160.0]),
        std=st.sampled_from([10.0, 30.0]),
    ),
    min_size=1,
    max_size=25,
)

mixed_streams = st.lists(
    st.one_of(
        st.builds(
            HomogeneousSVC,
            n_vms=st.integers(1, 8),
            mean=st.sampled_from([50.0, 120.0]),
            std=st.just(20.0),
        ),
        st.builds(
            DeterministicVC,
            n_vms=st.integers(1, 6),
            bandwidth=st.sampled_from([60.0, 140.0]),
        ),
        st.integers(2, 5).map(
            lambda n: HeterogeneousSVC(
                n_vms=n,
                demands=tuple(Normal(50.0 + 10.0 * i, 12.0) for i in range(n)),
            )
        ),
    ),
    min_size=1,
    max_size=20,
)


class TestBatchContextEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(requests=homogeneous_streams)
    def test_homogeneous_streams_bit_identical(self, tiny_tree, requests):
        sequential = run_sequential(tiny_tree, requests)
        batched = run_batched(tiny_tree, requests)
        assert describe(batched[0]) == describe(sequential[0])
        assert batched[1] == sequential[1]

    @settings(max_examples=30, deadline=None)
    @given(requests=mixed_streams)
    def test_mixed_kind_streams_bit_identical(self, tiny_tree, requests):
        # Kind changes force context resets mid-batch; the dispatcher also
        # swaps allocator-specific contexts. Decisions must not notice.
        sequential = run_sequential(tiny_tree, requests)
        batched = run_batched(tiny_tree, requests)
        assert describe(batched[0]) == describe(sequential[0])
        assert batched[1] == sequential[1]

    def test_rejections_inside_a_batch(self, tiny_tree):
        # Saturate so later members reject: rejection paths share tables too.
        requests = [homogeneous(n_vms=12, mean=400.0, std=100.0) for _ in range(12)]
        sequential = run_sequential(tiny_tree, requests)
        batched = run_batched(tiny_tree, requests)
        admits = sum(1 for d in batched[0] if d is not None)
        assert describe(batched[0]) == describe(sequential[0])
        assert batched[1] == sequential[1]
        assert 0 < admits < len(requests), "trace must mix admits and rejects"


# ----------------------------------------------------------------------
# Service layer
# ----------------------------------------------------------------------


def recorded_trace():
    """A deterministic multi-tenant trace mixing shapes and load levels."""
    trace = []
    for index in range(48):
        tenant = ("gold", "silver", "bronze")[index % 3]
        if index % 5 == 4:
            request = homogeneous(n_vms=10, mean=300.0, std=80.0)  # heavy
        elif index % 2:
            request = homogeneous(n_vms=4, mean=80.0, std=30.0)
        else:
            request = homogeneous(n_vms=3, mean=60.0, std=20.0)
        trace.append((tenant, request))
    return trace


def serve_trace(tree, batch_max, weights=None):
    """Run the trace through a single-worker service; return outcomes+state.

    The trace is enqueued in arrival order before workers start, so the
    fair queue's serving order is deterministic and shared by both runs.
    """
    service = AdmissionService(
        NetworkManager(tree),
        workers=1,
        batch_max=batch_max,
        tenant_weights=weights,
        max_queue_depth=None,
    )
    service._running = True  # queue everything before any worker runs
    tickets = [
        service.submit(request, wait=False, tenant=tenant)
        for tenant, request in recorded_trace()
    ]
    service._running = False
    service.start()
    try:
        outcomes = []
        for ticket in tickets:
            assert ticket.wait(timeout=30.0), "worker never resolved a ticket"
            outcomes.append((ticket.outcome, ticket.detail))
        fingerprint = network_state_to_dict(service.manager.state)
        stats = service.stats()
    finally:
        service.stop()
    return outcomes, fingerprint, stats


class TestServiceBatchingEquivalence:
    def test_batched_equals_unbatched_on_recorded_trace(self, tiny_tree):
        weights = {"gold": 3}
        unbatched = serve_trace(tiny_tree, batch_max=1, weights=weights)
        batched = serve_trace(tiny_tree, batch_max=32, weights=weights)
        assert batched[0] == unbatched[0], "outcomes diverged under batching"
        assert batched[1] == unbatched[1], "final state diverged under batching"
        # The equivalence must not be vacuous: the batched run coalesced.
        batching = batched[2]["batching"]
        assert batching["coalesced"] > 0
        assert batching["coalesce_ratio"] > 0.0
        assert unbatched[2]["batching"]["coalesced"] == 0

    def test_shape_change_breaks_the_batch_not_the_order(self, tiny_tree):
        with AdmissionService(
            NetworkManager(tiny_tree), workers=1, batch_max=8
        ) as service:
            shapes = [
                service.submit(homogeneous(n_vms=2 + (i // 3))).outcome
                for i in range(9)
            ]
            assert all(outcome == "admitted" for outcome in shapes)

    def test_batch_stats_and_validation(self, tiny_tree):
        with pytest.raises(ValueError):
            AdmissionService(NetworkManager(tiny_tree), batch_max=0)
        with pytest.raises(ValueError):
            AdmissionService(NetworkManager(tiny_tree), batch_linger_s=-1.0)
        with AdmissionService(NetworkManager(tiny_tree), workers=1) as service:
            stats = service.stats()["batching"]
            assert stats["batch_max"] == 1
            assert stats["coalesce_ratio"] == 0.0


def test_shape_keys_partition_requests():
    same_a = homogeneous(n_vms=4, mean=80.0, std=30.0)
    same_b = homogeneous(n_vms=4, mean=80.0, std=30.0)
    assert request_shape_key(same_a) == request_shape_key(same_b)
    assert request_shape_key(same_a) != request_shape_key(
        homogeneous(n_vms=5, mean=80.0, std=30.0)
    )
    assert request_shape_key(DeterministicVC(n_vms=4, bandwidth=80.0)) != (
        request_shape_key(same_a)
    )
