"""WAL append/replay, torn-tail handling, snapshots, retention."""

import json

import pytest

from repro.service.journal import DurabilityStore, Journal, ReplaySummary


class TestJournal:
    def test_append_assigns_monotonic_seq(self, tmp_path):
        with Journal(tmp_path / "wal.jsonl") as journal:
            assert journal.append("admit", x=1) == 1
            assert journal.append("release", x=2) == 2
            assert journal.next_seq == 3

    def test_replay_returns_records_in_order(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with Journal(path) as journal:
            for index in range(5):
                journal.append("admit", index=index)
        records = Journal.replay(path)
        assert [r["seq"] for r in records] == [1, 2, 3, 4, 5]
        assert [r["index"] for r in records] == list(range(5))

    def test_replay_after_seq_filters(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with Journal(path) as journal:
            for _ in range(5):
                journal.append("admit")
        assert [r["seq"] for r in Journal.replay(path, after_seq=3)] == [4, 5]

    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with Journal(path) as journal:
            journal.append("admit", index=0)
            journal.append("admit", index=1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "op": "adm')  # torn mid-write
        summary = ReplaySummary()
        records = list(Journal.iter_records(path, summary=summary))
        assert [r["seq"] for r in records] == [1, 2]
        assert summary.torn_tail

    def test_out_of_order_seq_stops_replay(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        lines = [
            {"seq": 1, "op": "admit"},
            {"seq": 2, "op": "admit"},
            {"seq": 7, "op": "admit"},  # gap: untrusted from here on
            {"seq": 8, "op": "admit"},
        ]
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        assert [r["seq"] for r in Journal.replay(path)] == [1, 2]

    def test_reopen_truncates_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with Journal(path) as journal:
            journal.append("admit", index=0)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn')
        with Journal(path) as journal:
            # The torn line must not shadow the records appended after it.
            assert journal.append("admit", index=1) == 2
        records = Journal.replay(path)
        assert [r["seq"] for r in records] == [1, 2]
        assert [r["index"] for r in records] == [0, 1]

    def test_missing_file_replays_empty(self, tmp_path):
        assert Journal.replay(tmp_path / "absent.jsonl") == []


class TestDurabilityStore:
    def test_snapshot_round_trip(self, plain_store):
        plain_store.log_release(1)
        payload = {"hello": [1, 2, 3]}
        plain_store.write_snapshot(payload)
        seq, state = plain_store.latest_snapshot()
        assert seq == 1
        assert state == payload

    def test_latest_snapshot_skips_corrupt_files(self, plain_store):
        plain_store.log_release(1)
        plain_store.write_snapshot({"generation": "old"})
        plain_store.log_release(2)
        plain_store.write_snapshot({"generation": "new"})
        newest_seq, path = plain_store.snapshot_paths()[0]
        path.write_text("{ corrupt json")
        seq, state = plain_store.latest_snapshot()
        assert seq < newest_seq
        assert state == {"generation": "old"}

    def test_should_snapshot_counts_records(self, tmp_path):
        store = DurabilityStore(tmp_path / "j", snapshot_every=3)
        assert not store.should_snapshot()
        for request_id in range(3):
            store.log_release(request_id)
        assert store.should_snapshot()
        store.write_snapshot({})
        assert not store.should_snapshot()
        store.close()

    def test_snapshot_retention_prunes_old_files(self, tmp_path):
        store = DurabilityStore(tmp_path / "j", keep_snapshots=2)
        for round_ in range(5):
            store.log_release(round_)
            store.write_snapshot({"round": round_})
        assert len(store.snapshot_paths()) == 2
        _seq, state = store.latest_snapshot()
        assert state == {"round": 4}
        store.close()

    def test_config_round_trip(self, plain_store):
        assert plain_store.read_config() is None
        plain_store.write_config({"scale": "tiny", "epsilon": 0.02})
        assert plain_store.read_config() == {"scale": "tiny", "epsilon": 0.02}

    def test_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            DurabilityStore(tmp_path / "a", snapshot_every=0)
        with pytest.raises(ValueError):
            DurabilityStore(tmp_path / "b", keep_snapshots=0)
