"""The ``resize`` service operation: decisions, idempotency, stats, replay.

The stats tests pin the misattribution regression: resize outcomes have
their own tallies (``resized`` / ``resize_rejected`` counters plus the
manager's per-outcome counts) and must never leak into the admission
counters, ``rejection_rate``, or ``rejections_by_allocator``.
"""

from repro.abstractions import HomogeneousSVC
from repro.manager.network_manager import NetworkManager
from repro.service.concurrency import OUTCOME_ADMITTED, AdmissionService
from repro.service.journal import DurabilityStore, OP_RESIZE
from repro.service.recovery import recover_manager


def admitted_service(tree, store=None):
    manager = NetworkManager(tree)
    service = AdmissionService(manager, store=store, workers=1)
    service.start()
    ticket = service.submit(HomogeneousSVC(n_vms=4, mean=50.0, std=10.0), wait=True)
    assert ticket.outcome == OUTCOME_ADMITTED
    return manager, service, ticket.request_id


class TestServiceResize:
    def test_resize_decision_payload(self, tiny_tree):
        manager, service, rid = admitted_service(tiny_tree)
        with service:
            decision = service.resize(rid, new_n=6)
            assert decision["outcome"] in ("in_place", "replaced")
            assert decision["request_id"] == rid
            assert decision["n_vms"] == 6
            assert manager.tenancy(rid).n_vms == 6

    def test_unknown_request_id(self, tiny_tree):
        manager, service, rid = admitted_service(tiny_tree)
        with service:
            decision = service.resize(rid + 100, new_n=6)
            assert decision["outcome"] == "unknown"
            assert manager.tenancy(rid).n_vms == 4

    def test_idempotent_retry_is_deduplicated(self, tiny_tree, tmp_path):
        store = DurabilityStore(tmp_path / "j")
        manager, service, rid = admitted_service(tiny_tree, store=store)
        with service:
            first = service.resize(rid, new_n=7, idempotency_key="rs-1")
            assert first["n_vms"] == 7
            again = service.resize(rid, new_n=7, idempotency_key="rs-1")
            assert again["outcome"] == first["outcome"]
            assert "deduplicated" in again["detail"]
            # The retry resized nothing and journaled nothing new.
            assert manager.tenancy(rid).n_vms == 7
            assert service.counters.as_dict()["deduped"] == 1
            assert sum(manager.resize_counts.values()) == 1
        store.close()

    def test_accepted_shrink_requeues_parked_batch_requests(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        with AdmissionService(manager, workers=2, mode="batch") as service:
            blockers = []
            while True:
                ticket = service.submit(
                    HomogeneousSVC(n_vms=16, mean=150.0, std=50.0),
                    timeout_s=30.0,
                    wait_timeout=2.0,
                )
                if ticket.done and ticket.outcome == OUTCOME_ADMITTED:
                    blockers.append(ticket.request_id)
                else:
                    parked = ticket
                    break
            assert not parked.done  # parked, not rejected
            # Shrinking two blockers frees strictly more than one full
            # blocker footprint — room enough for the parked tenant.
            for blocker in blockers[:2]:
                decision = service.resize(blocker, new_n=1)
                assert decision["outcome"] in ("in_place", "replaced")
            assert parked.wait(10.0)
            assert parked.outcome == OUTCOME_ADMITTED


class TestResizeStatsAttribution:
    def test_resizes_do_not_move_admission_stats(self, tiny_tree):
        manager, service, rid = admitted_service(tiny_tree)
        with service:
            # One real rejection so rejection_rate has a defined baseline.
            rejected = service.submit(
                HomogeneousSVC(
                    n_vms=manager.state.total_slots + 1, mean=50.0, std=10.0
                ),
                wait=True,
            )
            assert rejected.outcome != OUTCOME_ADMITTED
            before = service.stats()

            service.resize(rid, new_n=6)                              # accepted
            service.resize(rid, new_n=2)                              # accepted
            denied = service.resize(rid, new_n=manager.state.total_slots + 1)
            assert denied["outcome"] == "rejected"

            after = service.stats()
            assert after["admitted_total"] == before["admitted_total"]
            assert after["rejected_total"] == before["rejected_total"]
            assert after["rejection_rate"] == before["rejection_rate"]
            assert (
                after["rejections_by_allocator"] == before["rejections_by_allocator"]
            )
            assert after["counters"]["admitted"] == before["counters"]["admitted"]
            assert after["counters"]["rejected"] == before["counters"]["rejected"]
            # ... the resize tallies moved instead.
            assert after["counters"]["resized"] == 2
            assert after["counters"]["resize_rejected"] == 1
            assert after["resizes"]["rejected"] == 1
            assert sum(after["resizes"].values()) == 3


class TestResizeReplay:
    def test_journaled_resizes_survive_recovery(self, tiny_tree, tmp_path):
        store = DurabilityStore(tmp_path / "j")
        manager, service, rid = admitted_service(tiny_tree, store=store)
        with service:
            service.resize(rid, new_n=9)
            service.resize(rid, new_mu=70.0)
            service.resize(rid, new_n=manager.state.total_slots + 1)  # rejected
            live_counts = dict(manager.resize_counts)
        store.close()

        store = DurabilityStore(tmp_path / "j")
        recovered, report = recover_manager(store, tiny_tree)
        store.close()
        tenancy = recovered.tenancy(rid)
        assert tenancy.n_vms == 9
        assert tenancy.request.mean == 70.0
        assert recovered.resize_counts == live_counts
        from repro.service.codec import network_state_to_dict

        assert network_state_to_dict(recovered.state) == network_state_to_dict(
            manager.state
        )

    def test_resize_records_in_wal(self, tiny_tree, tmp_path):
        from repro.service.journal import Journal

        store = DurabilityStore(tmp_path / "j")
        manager, service, rid = admitted_service(tiny_tree, store=store)
        with service:
            service.resize(rid, new_n=6, idempotency_key="k1")
        store.close()
        records = [
            record
            for record in Journal.iter_records(tmp_path / "j" / "wal.jsonl")
            if record["op"] == OP_RESIZE
        ]
        assert len(records) == 1
        assert records[0]["request_id"] == rid
        assert records[0]["idem"] == "k1"
        assert records[0]["allocation"] is not None
