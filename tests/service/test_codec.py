"""Round-trip fidelity of the service JSON codecs."""

import json
import math

import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.manager.network_manager import NetworkManager
from repro.service.codec import (
    CodecError,
    allocation_from_dict,
    allocation_to_dict,
    network_state_to_dict,
    normal_from_dict,
    normal_to_dict,
    request_from_dict,
    request_to_dict,
)
from repro.stochastic import Normal


class TestRequestRoundTrip:
    @pytest.mark.parametrize(
        "request_",
        [
            DeterministicVC(n_vms=5, bandwidth=150.0),
            HomogeneousSVC(n_vms=12, mean=200.0, std=80.0),
            HeterogeneousSVC(
                n_vms=3, demands=(Normal(50.0, 5.0), Normal(80.0, 0.0), Normal(10.0, 2.5))
            ),
        ],
    )
    def test_round_trip(self, request_):
        payload = request_to_dict(request_)
        json.dumps(payload)  # must be JSON-serializable as-is
        assert request_from_dict(payload) == request_

    def test_unknown_kind_rejected(self):
        with pytest.raises(CodecError, match="unknown request kind"):
            request_from_dict({"kind": "quantum", "n_vms": 3})

    def test_non_dict_rejected(self):
        with pytest.raises(CodecError):
            request_from_dict(["not", "a", "request"])

    def test_invalid_fields_surface_as_codec_error(self):
        with pytest.raises(CodecError):
            request_from_dict({"kind": "homogeneous", "n_vms": 0, "mean": 1.0, "std": 0.0})

    def test_normal_round_trip(self):
        demand = Normal(123.5, 7.25)
        assert normal_from_dict(normal_to_dict(demand)) == demand


class TestAllocationRoundTrip:
    def _admit(self, tree, request):
        manager = NetworkManager(tree, epsilon=0.05)
        tenancy = manager.request(request)
        assert tenancy is not None
        return tenancy.allocation

    def test_homogeneous_allocation(self, tiny_tree):
        allocation = self._admit(tiny_tree, HomogeneousSVC(n_vms=6, mean=150.0, std=60.0))
        decoded = allocation_from_dict(json.loads(json.dumps(allocation_to_dict(allocation))))
        assert decoded.request == allocation.request
        assert decoded.request_id == allocation.request_id
        assert decoded.host_node == allocation.host_node
        assert decoded.machine_counts == allocation.machine_counts
        assert decoded.link_demands == allocation.link_demands

    def test_heterogeneous_allocation_keeps_vm_identities(self, tiny_tree):
        request = HeterogeneousSVC(
            n_vms=5, demands=tuple(Normal(60.0 + 30 * i, 10.0 + i) for i in range(5))
        )
        allocation = self._admit(tiny_tree, request)
        decoded = allocation_from_dict(allocation_to_dict(allocation))
        assert decoded.machine_vms == allocation.machine_vms

    def test_nan_max_occupancy_round_trips(self, tiny_tree):
        allocation = self._admit(tiny_tree, DeterministicVC(n_vms=2, bandwidth=10.0))
        allocation.max_occupancy = float("nan")
        decoded = allocation_from_dict(allocation_to_dict(allocation))
        assert math.isnan(decoded.max_occupancy)


class TestNetworkStateDict:
    def test_committed_state_appears_field_for_field(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        tenancy = manager.request(HomogeneousSVC(n_vms=8, mean=150.0, std=60.0))
        payload = network_state_to_dict(manager.state)
        json.dumps(payload)
        occupied = {
            machine: count
            for machine, count in tenancy.allocation.machine_counts.items()
        }
        for machine, count in occupied.items():
            capacity = tiny_tree.node(machine).slot_capacity
            assert payload["free_slots"][str(machine)] == capacity - count
        for link_id, demand in tenancy.allocation.link_demands.items():
            entry = payload["links"][str(link_id)]["stochastic"][str(tenancy.request_id)]
            assert entry == {"mean": demand.mean, "std": demand.std}

    def test_equal_states_have_equal_dicts(self, tiny_tree):
        first = NetworkManager(tiny_tree, epsilon=0.05)
        second = NetworkManager(tiny_tree, epsilon=0.05)
        for manager in (first, second):
            manager.request(DeterministicVC(n_vms=4, bandwidth=100.0))
            manager.request(HomogeneousSVC(n_vms=4, mean=90.0, std=30.0))
        assert network_state_to_dict(first.state) == network_state_to_dict(second.state)

    def test_release_restores_pristine_dict(self, tiny_tree):
        manager = NetworkManager(tiny_tree, epsilon=0.05)
        before = network_state_to_dict(manager.state)
        tenancy = manager.request(HomogeneousSVC(n_vms=6, mean=120.0, std=40.0))
        assert network_state_to_dict(manager.state) != before
        manager.release(tenancy)
        assert network_state_to_dict(manager.state) == before
