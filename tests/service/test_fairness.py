"""Per-tenant fair queueing: DRR scheduling, quotas, starvation-freedom."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstractions import HomogeneousSVC
from repro.manager.network_manager import NetworkManager
from repro.service.codec import request_shape_key
from repro.service.concurrency import OUTCOME_ADMITTED, AdmissionService
from repro.service.errors import CODE_OVER_QUOTA, OverQuotaError
from repro.service.queue import DEFAULT_TENANT, FairRequestQueue, QueuedRequest


def entry(ticket_id, tenant=DEFAULT_TENANT, priority=0, shape=None, deadline=None):
    return QueuedRequest(
        ticket_id=ticket_id,
        request=HomogeneousSVC(n_vms=2, mean=10.0, std=1.0),
        priority=priority,
        deadline=deadline,
        tenant=tenant,
        shape=shape,
    )


def drain_order(queue, now=0.0):
    order = []
    while True:
        popped, expired = queue.pop_ready(now)
        assert not expired
        if popped is None:
            return order
        order.append((popped.tenant, popped.ticket_id))


class TestDeficitRoundRobin:
    def test_single_tenant_is_fifo_within_priority(self):
        queue = FairRequestQueue()
        queue.push(entry(1))
        queue.push(entry(2, priority=5))
        queue.push(entry(3))
        assert [t for _, t in drain_order(queue)] == [2, 1, 3]

    def test_equal_weights_alternate(self):
        queue = FairRequestQueue()
        for ticket in range(6):
            queue.push(entry(ticket, tenant="a" if ticket < 3 else "b"))
        tenants = [tenant for tenant, _ in drain_order(queue)]
        # One pop per visit at weight 1: strict alternation once both wait.
        assert tenants == ["a", "b", "a", "b", "a", "b"]

    def test_weighted_tenant_gets_proportional_share(self):
        queue = FairRequestQueue(weights={"gold": 3})
        for ticket in range(12):
            queue.push(entry(ticket, tenant="gold" if ticket % 2 else "silver"))
        tenants = [tenant for tenant, _ in drain_order(queue)]
        # In any window where both tenants still have work, gold serves 3x.
        first_eight = tenants[:8]
        assert first_eight.count("gold") == 6
        assert first_eight.count("silver") == 2

    def test_idle_tenant_banks_no_credit(self):
        queue = FairRequestQueue(weights={"burst": 5})
        # burst drains completely, then re-arrives alongside steady.
        queue.push(entry(0, tenant="burst"))
        popped, _ = queue.pop_ready(0.0)
        assert popped.tenant == "burst"
        for ticket in range(1, 9):
            queue.push(entry(ticket, tenant="burst" if ticket % 2 else "steady"))
        tenants = [tenant for tenant, _ in drain_order(queue)]
        # Deficits were dropped on retirement: burst restarts from zero and
        # steady is served within the first weight-5 lap, not after 5 pops.
        assert "steady" in tenants[:6]

    def test_pop_compatible_only_matches_canonical_head(self):
        shape_a = request_shape_key(HomogeneousSVC(n_vms=2, mean=10.0, std=1.0))
        shape_b = request_shape_key(HomogeneousSVC(n_vms=3, mean=10.0, std=1.0))
        queue = FairRequestQueue()
        queue.push(entry(1, tenant="a", shape=shape_a))
        queue.push(entry(2, tenant="b", shape=shape_b))
        leader, _ = queue.pop_ready(0.0)
        assert leader.ticket_id == 1
        # The canonical next pop is tenant b (shape_b): a shape_a coalesce
        # attempt must NOT skip past it.
        popped, _ = queue.pop_compatible(shape_a, 0.0)
        assert popped is None
        popped, _ = queue.pop_compatible(shape_b, 0.0)
        assert popped is not None and popped.ticket_id == 2

    def test_pop_compatible_never_matches_none_shape(self):
        queue = FairRequestQueue()
        queue.push(entry(1, shape=None))
        popped, _ = queue.pop_compatible(None, 0.0)
        assert popped is None
        popped, _ = queue.pop_ready(0.0)
        assert popped.ticket_id == 1

    def test_expired_entries_are_drained_not_served(self):
        queue = FairRequestQueue()
        queue.push(entry(1, tenant="a", deadline=1.0))
        queue.push(entry(2, tenant="a"))
        popped, expired = queue.pop_ready(now=5.0)
        assert popped.ticket_id == 2
        assert [e.ticket_id for e in expired] == [1]

    def test_tenant_depths_cover_ready_and_parked(self):
        queue = FairRequestQueue(mode="batch")
        queue.push(entry(1, tenant="a"))
        queue.push(entry(2, tenant="a"))
        popped, _ = queue.pop_ready(0.0)
        queue.park(popped)
        assert queue.tenant_depths() == {"a": 2}
        assert queue.tenant_depth("a") == 2
        assert queue.tenant_depth("ghost") == 0

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            FairRequestQueue(weights={"a": 0})
        queue = FairRequestQueue()
        with pytest.raises(ValueError):
            queue.set_weight("a", -1)


@settings(max_examples=60, deadline=None)
@given(
    arrivals=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 2)),
        min_size=1,
        max_size=60,
    ),
    weights=st.fixed_dictionaries(
        {},
        optional={
            "a": st.integers(1, 4),
            "b": st.integers(1, 4),
            "c": st.integers(1, 4),
        },
    ),
)
def test_no_tenant_starves(arrivals, weights):
    """DRR property: every backlogged tenant is served within one lap.

    With W = sum of active weights, a tenant with weight >= 1 waits at most
    W consecutive pops before its next pop, for any arrival pattern and any
    weight assignment — the starvation-freedom claim in docs/service.md.
    """
    queue = FairRequestQueue(weights=weights)
    for ticket, (tenant, priority) in enumerate(arrivals):
        queue.push(entry(ticket, tenant=tenant, priority=priority))
    backlog = {tenant for tenant, _ in arrivals}
    lap_bound = sum(queue.weight_of(t) for t in backlog)
    served = drain_order(queue)
    assert len(served) == len(arrivals)
    gap = {tenant: 0 for tenant in backlog}
    remaining = {
        tenant: sum(1 for t, _ in arrivals if t == tenant) for tenant in backlog
    }
    for tenant, _ticket in served:
        for other in backlog:
            if remaining[other] <= 0:
                continue
            if other == tenant:
                gap[other] = 0
            else:
                gap[other] += 1
                assert gap[other] <= lap_bound, (
                    f"tenant {other!r} waited {gap[other]} pops "
                    f"(bound {lap_bound})"
                )
        remaining[tenant] -= 1


class TestTenantQuota:
    def test_over_quota_shed_carries_code_and_retry_after(self, tiny_tree):
        service = AdmissionService(
            NetworkManager(tiny_tree), workers=1, tenant_quota=2
        )
        # Flag the service running without starting workers: the queue can
        # only fill, so the third submission from one tenant must shed.
        service._running = True
        try:
            for _ in range(2):
                service.submit(
                    HomogeneousSVC(n_vms=2, mean=10.0, std=1.0),
                    wait=False,
                    tenant="noisy",
                )
            with pytest.raises(OverQuotaError) as excinfo:
                service.submit(
                    HomogeneousSVC(n_vms=2, mean=10.0, std=1.0),
                    wait=False,
                    tenant="noisy",
                )
            assert excinfo.value.code == CODE_OVER_QUOTA
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after > 0.0
            # Other tenants are unaffected: the shed is per-tenant.
            ticket = service.submit(
                HomogeneousSVC(n_vms=2, mean=10.0, std=1.0),
                wait=False,
                tenant="quiet",
            )
            assert ticket.outcome is None  # queued, not shed
            stats = service.stats()
            assert stats["counters"]["shed"] == 1
            assert stats["tenants"]["depths"] == {"noisy": 2, "quiet": 1}
        finally:
            service.stop()

    def test_quota_drains_and_recovers(self, tiny_tree):
        with AdmissionService(
            NetworkManager(tiny_tree), workers=1, tenant_quota=1
        ) as service:
            # With workers running the slice drains, so sequential submits
            # from one tenant all land despite the quota of one.
            for _ in range(4):
                ticket = service.submit(
                    HomogeneousSVC(n_vms=2, mean=10.0, std=1.0), tenant="t"
                )
                assert ticket.outcome == OUTCOME_ADMITTED
                service.release(ticket.request_id)
