"""Queue disciplines: priority order, FIFO ties, deadlines, batch parking."""

import pytest

from repro.abstractions import HomogeneousSVC
from repro.service.queue import MODE_BATCH, MODE_ONLINE, QueuedRequest, RequestQueue


def entry(ticket_id, priority=0, deadline=None):
    return QueuedRequest(
        ticket_id=ticket_id,
        request=HomogeneousSVC(n_vms=2, mean=10.0, std=1.0),
        priority=priority,
        deadline=deadline,
    )


class TestOrdering:
    def test_fifo_within_priority(self):
        queue = RequestQueue(MODE_ONLINE)
        for ticket_id in (1, 2, 3):
            queue.push(entry(ticket_id))
        popped = [queue.pop_ready(0.0)[0].ticket_id for _ in range(3)]
        assert popped == [1, 2, 3]

    def test_higher_priority_first(self):
        queue = RequestQueue(MODE_ONLINE)
        queue.push(entry(1, priority=0))
        queue.push(entry(2, priority=5))
        queue.push(entry(3, priority=1))
        popped = [queue.pop_ready(0.0)[0].ticket_id for _ in range(3)]
        assert popped == [2, 3, 1]

    def test_empty_queue_pops_none(self):
        queue = RequestQueue(MODE_ONLINE)
        ready, expired = queue.pop_ready(0.0)
        assert ready is None and expired == []


class TestDeadlines:
    def test_pop_drains_expired_entries(self):
        queue = RequestQueue(MODE_ONLINE)
        queue.push(entry(1, deadline=5.0))
        queue.push(entry(2, deadline=100.0))
        ready, expired = queue.pop_ready(now=10.0)
        assert ready.ticket_id == 2
        assert [e.ticket_id for e in expired] == [1]

    def test_expire_sweeps_ready_and_parked(self):
        queue = RequestQueue(MODE_BATCH)
        queue.push(entry(1, deadline=5.0))
        parked = entry(2, deadline=6.0)
        queue.push(parked)
        popped, _ = queue.pop_ready(0.0)
        queue.park(popped)
        expired = queue.expire(now=10.0)
        assert sorted(e.ticket_id for e in expired) == [1, 2]
        assert len(queue) == 0

    def test_no_deadline_never_expires(self):
        queue = RequestQueue(MODE_ONLINE)
        queue.push(entry(1))
        assert queue.expire(now=1e12) == []
        assert queue.pop_ready(1e12)[0].ticket_id == 1


class TestTieBreaking:
    """Priority and arrival order are the only keys — deadlines never
    reorder the heap, they only expire entries at pop time."""

    def test_equal_priority_is_fifo_regardless_of_deadlines(self):
        queue = RequestQueue(MODE_ONLINE)
        queue.push(entry(1, deadline=100.0))
        queue.push(entry(2, deadline=5.0))  # tighter deadline, later arrival
        queue.push(entry(3))
        popped = [queue.pop_ready(0.0)[0].ticket_id for _ in range(3)]
        assert popped == [1, 2, 3]

    def test_priority_beats_earlier_deadline(self):
        queue = RequestQueue(MODE_ONLINE)
        queue.push(entry(1, priority=0, deadline=1.0))
        queue.push(entry(2, priority=3, deadline=1000.0))
        ready, expired = queue.pop_ready(now=0.5)
        assert ready.ticket_id == 2
        assert expired == []

    def test_expired_ties_drain_in_arrival_order(self):
        queue = RequestQueue(MODE_ONLINE)
        queue.push(entry(1, deadline=5.0))
        queue.push(entry(2, deadline=5.0))
        queue.push(entry(3, deadline=100.0))
        ready, expired = queue.pop_ready(now=10.0)
        assert ready.ticket_id == 3
        assert [e.ticket_id for e in expired] == [1, 2]

    def test_parked_retry_keeps_original_seq_among_equal_priorities(self):
        queue = RequestQueue(MODE_BATCH)
        queue.push(entry(1))
        queue.push(entry(2))
        first, _ = queue.pop_ready(0.0)
        queue.park(first)
        queue.push(entry(3))  # arrives while ticket 1 waits parked
        queue.requeue_parked()
        order = [queue.pop_ready(0.0)[0].ticket_id for _ in range(3)]
        assert order == [1, 2, 3]

    def test_sort_key_is_priority_then_seq(self):
        high_late = entry(1, priority=5)
        high_late.seq = 9
        low_early = entry(2, priority=0)
        low_early.seq = 1
        assert high_late.sort_key() < low_early.sort_key()
        first = entry(3)
        second = entry(4)
        second.seq = 1  # push() assigns seq; deadlines are not in the key
        assert first.sort_key() < second.sort_key()


class TestBatchParking:
    def test_online_mode_rejects_parking(self):
        queue = RequestQueue(MODE_ONLINE)
        with pytest.raises(ValueError, match="batch mode"):
            queue.park(entry(1))

    def test_parked_requests_keep_fifo_position_on_retry(self):
        queue = RequestQueue(MODE_BATCH)
        for ticket_id in (1, 2, 3):
            queue.push(entry(ticket_id))
        first, _ = queue.pop_ready(0.0)
        queue.park(first)  # rejected, waits for a departure
        assert queue.parked_count == 1
        assert queue.requeue_parked() == 1
        # Ticket 1 arrived first, so it is retried before 2 and 3.
        order = [queue.pop_ready(0.0)[0].ticket_id for _ in range(3)]
        assert order == [1, 2, 3]

    def test_drain_returns_everything_in_order(self):
        queue = RequestQueue(MODE_BATCH)
        for ticket_id in (1, 2):
            queue.push(entry(ticket_id))
        popped, _ = queue.pop_ready(0.0)
        queue.park(popped)
        drained = queue.drain()
        assert [e.ticket_id for e in drained] == [1, 2]
        assert len(queue) == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown queue mode"):
            RequestQueue("bursty")
