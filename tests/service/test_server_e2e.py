"""End-to-end daemon tests: concurrent clients, kill -9, recovery, stats.

This is the acceptance scenario of the service layer: start ``svc-repro
serve`` as a real subprocess, hammer it with mixed SVC/deterministic
requests from several client threads, SIGKILL it mid-stream, then recover
from journal+snapshot and verify the reconstructed per-link occupancy and
active tenancy set exactly match a single-threaded oracle replay of the
surviving journal.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.abstractions import DeterministicVC, HomogeneousSVC
from repro.service.client import ServiceClient
from repro.service.codec import network_state_to_dict
from repro.service.journal import DurabilityStore
from repro.service.recovery import oracle_replay, recover_manager
from repro.topology import TINY_SPEC, build_datacenter

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def spawn_server(journal_dir, extra_args=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--scale",
            "tiny",
            "--journal-dir",
            str(journal_dir),
            "--snapshot-every",
            "40",
            "--workers",
            "4",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    return proc


def read_ready(proc, timeout=30.0):
    """The first stdout line is the machine-readable ready record."""
    result = {}

    def reader():
        line = proc.stdout.readline()
        if line:
            result.update(json.loads(line))

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    thread.join(timeout)
    if not result:
        proc.kill()
        pytest.fail("server did not print a ready line in time")
    return result


def mixed_request(index):
    if index % 2:
        return HomogeneousSVC(n_vms=2 + index % 4, mean=80.0, std=30.0)
    return DeterministicVC(n_vms=2 + index % 3, bandwidth=90.0)


class TestKillRecovery:
    TOTAL_PER_THREAD = 90
    CLIENT_THREADS = 4
    KILL_AFTER = 220  # acknowledged operations before SIGKILL (>= 200 required)

    def test_concurrent_stream_kill_and_oracle_recovery(self, tmp_path):
        journal_dir = tmp_path / "journal"
        proc = spawn_server(journal_dir)
        try:
            ready = read_ready(proc)
            port = ready["port"]
            acknowledged = [0]
            counter_lock = threading.Lock()
            stats_seen = {}

            def client_stream(seed):
                admitted = []
                try:
                    with ServiceClient(port=port, timeout=10) as client:
                        for index in range(self.TOTAL_PER_THREAD):
                            reply = client.submit(mixed_request(seed * 1000 + index))
                            with counter_lock:
                                acknowledged[0] += 1
                            if reply.get("outcome") == "admitted":
                                admitted.append(reply["request_id"])
                            if len(admitted) > 4 and index % 3 == 0:
                                client.release(admitted.pop(0))
                                with counter_lock:
                                    acknowledged[0] += 1
                except (ConnectionError, OSError, json.JSONDecodeError):
                    pass  # the server was killed under us — expected

            threads = [
                threading.Thread(target=client_stream, args=(seed,))
                for seed in range(self.CLIENT_THREADS)
            ]
            for thread in threads:
                thread.start()

            deadline = time.time() + 60
            while time.time() < deadline:
                with counter_lock:
                    count = acknowledged[0]
                if count >= 100 and not stats_seen:
                    with ServiceClient(port=port, timeout=10) as client:
                        stats_seen.update(client.stats())
                if count >= self.KILL_AFTER:
                    break
                time.sleep(0.005)
            assert acknowledged[0] >= self.KILL_AFTER, "stream never reached kill point"

            # The daemon dies mid-stream with clients still submitting.
            proc.send_signal(signal.SIGKILL)
            for thread in threads:
                thread.join(30)
            proc.wait(30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(30)

        # ------------------------------------------------------------------
        # Stats endpoint (sampled mid-stream, before the kill).
        # ------------------------------------------------------------------
        assert stats_seen, "stats endpoint was never sampled"
        latency = stats_seen["admission_latency"]
        assert latency["count"] > 0
        for key in ("p50_ms", "p90_ms", "p99_ms"):
            assert latency[key] >= 0.0
        levels = {row["label"] for row in stats_seen["occupancy"]["by_level"]}
        assert levels == {"machine", "ToR", "aggregation"}

        # ------------------------------------------------------------------
        # Recovery must equal the single-threaded oracle replay.
        # ------------------------------------------------------------------
        tree = build_datacenter(TINY_SPEC)
        store = DurabilityStore(journal_dir)
        recovered, report = recover_manager(store, tree)
        store.close()
        oracle_state, oracle_active = oracle_replay(journal_dir / "wal.jsonl", tree)
        assert network_state_to_dict(recovered.state) == network_state_to_dict(oracle_state)
        assert sorted(t.request_id for t in recovered.tenancies()) == sorted(oracle_active)
        for link_id, occupancy in oracle_state.occupancies():
            assert recovered.state.occupancy_of(link_id) == pytest.approx(occupancy, abs=1e-6)
        # The stream really was mixed and non-trivial.
        assert report.last_seq >= 200


class TestCleanRestart:
    def test_state_survives_shutdown_and_restart(self, tmp_path):
        journal_dir = tmp_path / "journal"
        proc = spawn_server(journal_dir)
        try:
            port = read_ready(proc)["port"]
            with ServiceClient(port=port, timeout=10) as client:
                admitted = []
                for index in range(10):
                    reply = client.submit(mixed_request(index))
                    if reply.get("outcome") == "admitted":
                        admitted.append(reply["request_id"])
                assert admitted
                client.shutdown()
            proc.wait(30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(30)

        proc = spawn_server(journal_dir)
        try:
            ready = read_ready(proc)
            port = ready["port"]
            with ServiceClient(port=port, timeout=10) as client:
                stats = client.stats()
                assert stats["active_tenancies"] == len(admitted)
                # The restarted daemon keeps serving over the recovered state.
                reply = client.submit(HomogeneousSVC(n_vms=2, mean=40.0, std=10.0))
                assert reply["outcome"] in ("admitted", "rejected")
                client.shutdown()
            proc.wait(30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(30)
