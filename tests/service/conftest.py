"""Shared fixtures for the service-layer tests."""

from __future__ import annotations

import pytest

from repro.service.journal import DurabilityStore


@pytest.fixture()
def store(tmp_path) -> DurabilityStore:
    """A fresh durability directory with frequent snapshots."""
    with DurabilityStore(tmp_path / "journal", snapshot_every=5) as handle:
        yield handle


@pytest.fixture()
def plain_store(tmp_path) -> DurabilityStore:
    """A durability directory that never snapshots automatically."""
    with DurabilityStore(tmp_path / "journal") as handle:
        yield handle
