"""AdmissionService behaviour: concurrency, modes, deadlines, stats."""

import threading

import pytest

from repro.abstractions import DeterministicVC, HomogeneousSVC
from repro.manager.network_manager import NetworkManager
from repro.service.concurrency import (
    OUTCOME_ADMITTED,
    OUTCOME_EXPIRED,
    OUTCOME_QUEUED,
    OUTCOME_REJECTED,
    AdmissionService,
    LatencyWindow,
)
from repro.service.recovery import oracle_replay
from repro.service.codec import network_state_to_dict


@pytest.fixture()
def service(tiny_tree):
    with AdmissionService(NetworkManager(tiny_tree), workers=2) as svc:
        yield svc


def small_svc():
    return HomogeneousSVC(n_vms=3, mean=80.0, std=30.0)


def huge_svc(tree):
    return HomogeneousSVC(n_vms=tree.total_slots + 1, mean=10.0, std=1.0)


class TestSubmitRelease:
    def test_admit_then_release(self, service):
        ticket = service.submit(small_svc())
        assert ticket.outcome == OUTCOME_ADMITTED
        assert ticket.request_id is not None
        assert service.release(ticket.request_id)
        assert not service.release(ticket.request_id)  # already gone

    def test_online_reject_is_immediate(self, tiny_tree, service):
        ticket = service.submit(huge_svc(tiny_tree))
        assert ticket.outcome == OUTCOME_REJECTED

    def test_rejection_names_the_allocator(self, tiny_tree, service):
        # The detail string and the stats payload both attribute rejections
        # to the algorithm that refused (here Algorithm 1's DP, "svc-dp").
        ticket = service.submit(huge_svc(tiny_tree))
        assert ticket.outcome == OUTCOME_REJECTED
        assert ticket.detail == "no valid placement (allocator=svc-dp)"
        stats = service.stats()
        assert stats["rejections_by_allocator"] == {"svc-dp": 1}

    def test_rejection_attribution_tallies_per_allocator(self, tiny_tree, service):
        service.submit(huge_svc(tiny_tree))
        service.submit(huge_svc(tiny_tree))
        service.submit(small_svc())  # success must not disturb the tally
        stats = service.stats()
        assert stats["rejections_by_allocator"] == {"svc-dp": 2}
        assert stats["counters"]["rejected"] == 2

    def test_submit_accepts_wire_payloads(self, service):
        ticket = service.submit({"kind": "deterministic", "n_vms": 2, "bandwidth": 50.0})
        assert ticket.outcome == OUTCOME_ADMITTED

    def test_status_reports_ticket(self, service):
        ticket = service.submit(small_svc())
        status = service.status(ticket.ticket_id)
        assert status["outcome"] == OUTCOME_ADMITTED
        assert status["request_id"] == ticket.request_id
        assert service.status(999_999) is None

    def test_submit_after_stop_raises(self, tiny_tree):
        svc = AdmissionService(NetworkManager(tiny_tree)).start()
        svc.stop()
        with pytest.raises(RuntimeError, match="not running"):
            svc.submit(small_svc())


class TestConcurrentClients:
    def test_many_threads_agree_with_oracle_journal(self, tiny_tree, plain_store):
        """4 submitting threads; the final state must equal the WAL replay."""
        manager = NetworkManager(tiny_tree)
        with AdmissionService(manager, store=plain_store, workers=4) as svc:
            def client(seed):
                admitted = []
                for index in range(25):
                    if index % 2:
                        request = small_svc()
                    else:
                        request = DeterministicVC(n_vms=2, bandwidth=60.0)
                    ticket = svc.submit(request, wait=True)
                    if ticket.outcome == OUTCOME_ADMITTED:
                        admitted.append(ticket.request_id)
                    if len(admitted) > 3:
                        svc.release(admitted.pop(0))

            threads = [threading.Thread(target=client, args=(s,)) for s in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        state, active = oracle_replay(plain_store.wal_path, tiny_tree)
        assert network_state_to_dict(state) == network_state_to_dict(manager.state)
        assert sorted(active) == sorted(t.request_id for t in manager.tenancies())

    def test_every_ticket_resolves(self, tiny_tree):
        with AdmissionService(NetworkManager(tiny_tree), workers=3) as svc:
            tickets = [svc.submit(small_svc(), wait=False) for _ in range(40)]
            for ticket in tickets:
                assert ticket.wait(10.0), "ticket never resolved"
                assert ticket.outcome in (OUTCOME_ADMITTED, OUTCOME_REJECTED)


class TestBatchMode:
    def test_rejected_request_waits_and_retries_on_departure(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        with AdmissionService(manager, mode="batch", workers=2) as svc:
            blockers = []
            while True:
                ticket = svc.submit(
                    HomogeneousSVC(n_vms=16, mean=150.0, std=50.0),
                    timeout_s=30.0,
                    wait_timeout=2.0,
                )
                if ticket.done and ticket.outcome == OUTCOME_ADMITTED:
                    blockers.append(ticket.request_id)
                else:
                    waiter = ticket
                    break
            assert not waiter.done  # parked, not rejected
            assert svc.release(blockers[0])
            assert waiter.wait(5.0)
            assert waiter.outcome == OUTCOME_ADMITTED

    def test_parked_request_expires_at_deadline(self, tiny_tree):
        with AdmissionService(NetworkManager(tiny_tree), mode="batch", workers=2) as svc:
            blockers = []
            while True:
                ticket = svc.submit(
                    HomogeneousSVC(n_vms=16, mean=150.0, std=50.0),
                    timeout_s=0.3,
                    wait_timeout=2.0,
                )
                if ticket.done and ticket.outcome == OUTCOME_ADMITTED:
                    blockers.append(ticket.request_id)
                else:
                    waiter = ticket
                    break
            assert waiter.wait(5.0)
            assert waiter.outcome == OUTCOME_EXPIRED


class TestStats:
    def test_stats_payload_shape(self, tiny_tree, service):
        admitted = service.submit(small_svc())
        service.submit(huge_svc(tiny_tree))
        service.release(admitted.request_id)
        stats = service.stats()
        counters = stats["counters"]
        assert counters["submitted"] == 2
        assert counters["admitted"] == 1
        assert counters["rejected"] == 1
        assert counters["released"] == 1
        assert stats["active_tenancies"] == 0
        latency = stats["admission_latency"]
        assert latency["count"] == 2
        for key in ("p50_ms", "p90_ms", "p99_ms", "mean_ms"):
            assert latency[key] >= 0.0
        labels = [row["label"] for row in stats["occupancy"]["by_level"]]
        assert labels == ["machine", "ToR", "aggregation"]
        assert stats["slots"]["total"] == tiny_tree.total_slots
        assert stats["durability"] == {"enabled": False}

    def test_queued_outcome_via_describe(self, tiny_tree):
        svc = AdmissionService(NetworkManager(tiny_tree))
        # Not started: submission is refused, so build a ticket by hand.
        with pytest.raises(RuntimeError):
            svc.submit(small_svc())
        svc.start()
        try:
            ticket = svc.submit(small_svc(), wait=False)
            assert ticket.describe()["outcome"] in (
                OUTCOME_QUEUED,
                OUTCOME_ADMITTED,
                OUTCOME_REJECTED,
            )
            assert ticket.wait(10.0)
        finally:
            svc.stop()


class TestLatencyWindow:
    def test_percentiles_of_known_samples(self):
        window = LatencyWindow()
        for value in range(1, 101):  # 1ms .. 100ms
            window.observe(value / 1000.0)
        summary = window.summary()
        assert summary["count"] == 100
        assert summary["p50_ms"] == pytest.approx(50.0, abs=1.0)
        assert summary["p99_ms"] == pytest.approx(99.0, abs=1.0)
        assert summary["mean_ms"] == pytest.approx(50.5, abs=0.1)

    def test_empty_window_is_all_zero(self):
        summary = LatencyWindow().summary()
        assert summary["count"] == 0
        assert summary["p50_ms"] == 0.0
        assert summary["mean_ms"] == 0.0
