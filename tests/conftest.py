"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.network import NetworkState
from repro.stochastic import Normal
from repro.topology import (
    TINY_SPEC,
    Tree,
    build_datacenter,
    build_two_machine_example,
)


@pytest.fixture(scope="session")
def tiny_tree() -> Tree:
    """16 machines / 64 slots, three levels — shared read-only topology."""
    return build_datacenter(TINY_SPEC)


@pytest.fixture()
def two_machine_tree() -> Tree:
    """The Fig. 3 worked-example topology (2 machines x 5 slots, C=50)."""
    return build_two_machine_example()


@pytest.fixture()
def tiny_state(tiny_tree: Tree) -> NetworkState:
    """A fresh network state over the tiny datacenter, epsilon = 0.05."""
    return NetworkState(tiny_tree, epsilon=0.05)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def homogeneous_request() -> HomogeneousSVC:
    return HomogeneousSVC(n_vms=8, mean=200.0, std=80.0)


@pytest.fixture()
def deterministic_request() -> DeterministicVC:
    return DeterministicVC(n_vms=8, bandwidth=200.0)


@pytest.fixture()
def heterogeneous_request() -> HeterogeneousSVC:
    demands = tuple(Normal(100.0 + 60.0 * i, 20.0 + 5.0 * i) for i in range(6))
    return HeterogeneousSVC(n_vms=6, demands=demands)


def build_star_tree(slots=(4, 4), capacities=(100.0, 100.0)) -> Tree:
    """A one-switch tree with configurable machines — handy for hand analysis."""
    tree = Tree()
    switch = tree.add_switch("sw", level=1)
    for index, (slot, cap) in enumerate(zip(slots, capacities)):
        machine = tree.add_machine(f"m{index}", slot_capacity=slot)
        tree.attach(machine, switch, cap)
    return tree.freeze()
