"""Per-level utilization snapshots."""

from repro.abstractions import DeterministicVC, HomogeneousSVC
from repro.manager import NetworkManager
from repro.network import NetworkState, format_utilization, utilization_by_level


class TestUtilizationByLevel:
    def test_levels_present(self, tiny_tree):
        state = NetworkState(tiny_tree)
        rows = utilization_by_level(state)
        assert [row.level for row in rows] == [0, 1, 2]

    def test_idle_network_is_zero(self, tiny_tree):
        state = NetworkState(tiny_tree)
        for row in utilization_by_level(state):
            assert row.mean_occupancy == 0.0
            assert row.max_occupancy == 0.0
            assert row.mean_deterministic_share == 0.0

    def test_link_counts(self, tiny_tree):
        rows = utilization_by_level(NetworkState(tiny_tree))
        by_level = {row.level: row.num_links for row in rows}
        assert by_level[0] == len(tiny_tree.machine_ids)
        assert by_level[1] == len(tiny_tree.nodes_at_level(1))
        assert by_level[2] == len(tiny_tree.nodes_at_level(2))

    def test_labels(self, tiny_tree):
        rows = utilization_by_level(NetworkState(tiny_tree))
        assert [row.label for row in rows] == ["machine", "ToR", "aggregation"]

    def test_loaded_network_shows_pressure(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(HomogeneousSVC(n_vms=10, mean=300.0, std=100.0))
        rows = {row.level: row for row in utilization_by_level(manager.state)}
        assert rows[0].max_occupancy > 0.0
        manager.release(tenancy)

    def test_deterministic_share_tracked(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        manager.request(DeterministicVC(n_vms=8, bandwidth=200.0))
        rows = {row.level: row for row in utilization_by_level(manager.state)}
        assert rows[0].mean_deterministic_share > 0.0

    def test_mean_bounded_by_max(self, tiny_tree):
        manager = NetworkManager(tiny_tree)
        manager.request(HomogeneousSVC(n_vms=12, mean=250.0, std=80.0))
        for row in utilization_by_level(manager.state):
            assert row.mean_occupancy <= row.max_occupancy + 1e-12


class TestFormatUtilization:
    def test_renders_all_levels(self, tiny_tree):
        text = format_utilization(NetworkState(tiny_tree))
        assert "machine" in text
        assert "ToR" in text
        assert "aggregation" in text
        assert len(text.splitlines()) == 4  # header + 3 levels


class TestLevelSamplingInScenario:
    def test_online_level_samples(self, tiny_tree):
        import numpy as np

        from repro.experiments.common import online_workload
        from repro.experiments.config import TINY_SCALE
        from repro.simulation import run_online

        specs = online_workload(TINY_SCALE, 0, load=0.5, total_slots=tiny_tree.total_slots)
        result = run_online(
            tiny_tree, specs, model="svc", rng=np.random.default_rng(0), track_levels=True
        )
        assert len(result.level_occupancy_samples) == result.num_arrivals
        _t, sample = result.level_occupancy_samples[-1]
        assert set(sample) == {0, 1, 2}
        assert result.mean_level_occupancy(0) >= 0.0

    def test_disabled_by_default(self, tiny_tree):
        import math

        import numpy as np

        from repro.experiments.common import online_workload
        from repro.experiments.config import TINY_SCALE
        from repro.simulation import run_online

        specs = online_workload(TINY_SCALE, 0, load=0.5, total_slots=tiny_tree.total_slots)
        result = run_online(tiny_tree, specs, model="svc", rng=np.random.default_rng(0))
        assert result.level_occupancy_samples == []
        assert math.isnan(result.mean_level_occupancy(2))
