"""NetworkState: slots, commit/release lifecycle, datacenter-wide views."""

import pytest

from repro.abstractions import HomogeneousSVC
from repro.allocation.base import Allocation
from repro.network import NetworkState
from repro.stochastic.normal import Normal
from tests.conftest import build_star_tree


def make_allocation(tree, request, counts, demands, request_id=1):
    host = tree.root_id
    return Allocation(
        request=request,
        request_id=request_id,
        host_node=host,
        machine_counts=counts,
        link_demands=demands,
    )


@pytest.fixture()
def star_state():
    tree = build_star_tree(slots=(4, 4), capacities=(1000.0, 1000.0))
    return tree, NetworkState(tree, epsilon=0.05)


class TestSlots:
    def test_initial_slots(self, star_state):
        tree, state = star_state
        assert state.total_slots == 8
        assert state.total_free_slots == 8
        assert state.used_slots == 0
        for machine in tree.machine_ids:
            assert state.free_slots(machine) == 4

    def test_commit_occupies(self, star_state):
        tree, state = star_state
        m0, m1 = tree.machine_ids
        request = HomogeneousSVC(n_vms=5, mean=10.0, std=1.0)
        alloc = make_allocation(
            tree, request, {m0: 2, m1: 3}, {m0: Normal(20.0, 2.0), m1: Normal(20.0, 2.0)}
        )
        state.commit(alloc)
        assert state.free_slots(m0) == 2
        assert state.free_slots(m1) == 1
        assert state.used_slots == 5

    def test_overcommit_rejected(self, star_state):
        tree, state = star_state
        m0, m1 = tree.machine_ids
        request = HomogeneousSVC(n_vms=6, mean=10.0, std=1.0)
        alloc = make_allocation(tree, request, {m0: 5, m1: 1}, {})
        with pytest.raises(ValueError):
            state.commit(alloc)

    def test_release_restores(self, star_state):
        tree, state = star_state
        m0, m1 = tree.machine_ids
        request = HomogeneousSVC(n_vms=4, mean=10.0, std=1.0)
        alloc = make_allocation(
            tree, request, {m0: 2, m1: 2}, {m0: Normal(20.0, 2.0), m1: Normal(20.0, 2.0)}
        )
        state.commit(alloc)
        state.release(alloc)
        assert state.is_pristine()

    def test_double_release_detected(self, star_state):
        tree, state = star_state
        m0, m1 = tree.machine_ids
        request = HomogeneousSVC(n_vms=4, mean=10.0, std=1.0)
        alloc = make_allocation(tree, request, {m0: 2, m1: 2}, {})
        state.commit(alloc)
        state.release(alloc)
        with pytest.raises(ValueError):
            state.release(alloc)


class TestLinkCommit:
    def test_stochastic_commit_records_demands(self, star_state):
        tree, state = star_state
        m0, m1 = tree.machine_ids
        request = HomogeneousSVC(n_vms=4, mean=100.0, std=30.0)
        demand = Normal(200.0, 42.0)
        alloc = make_allocation(tree, request, {m0: 2, m1: 2}, {m0: demand, m1: demand})
        state.commit(alloc)
        assert state.links[m0].stochastic_demand_of(1) == demand
        assert state.links[m0].deterministic_total == 0.0

    def test_deterministic_commit_goes_to_reserved(self, star_state):
        from repro.abstractions import DeterministicVC

        tree, state = star_state
        m0, m1 = tree.machine_ids
        request = DeterministicVC(n_vms=4, bandwidth=100.0)
        alloc = make_allocation(
            tree, request, {m0: 2, m1: 2},
            {m0: Normal.deterministic(200.0), m1: Normal.deterministic(200.0)},
        )
        state.commit(alloc)
        assert state.links[m0].deterministic_total == 200.0
        assert state.links[m0].num_stochastic_demands == 0

    def test_max_occupancy_over_links(self, star_state):
        tree, state = star_state
        m0, m1 = tree.machine_ids
        request = HomogeneousSVC(n_vms=4, mean=100.0, std=0.0)
        alloc = make_allocation(
            tree, request, {m0: 1, m1: 3},
            {m0: Normal.deterministic(100.0), m1: Normal.deterministic(100.0)},
        )
        state.commit(alloc)
        assert state.max_occupancy() == pytest.approx(0.1)

    def test_occupancies_iterates_all_links(self, star_state):
        tree, state = star_state
        pairs = dict(state.occupancies())
        assert set(pairs) == {link.link_id for link in tree.links}
        assert all(value == 0.0 for value in pairs.values())

    def test_risk_constant_matches_epsilon(self, star_state):
        _tree, state = star_state
        assert state.risk_c == pytest.approx(1.6449, abs=1e-4)
        assert state.epsilon == 0.05
