"""LinkState bookkeeping: D_L, stochastic aggregates, occupancy, release."""

import pytest

from repro.network.link_state import LinkState
from repro.stochastic.aggregate import risk_quantile
from repro.stochastic.normal import Normal
from repro.topology.nodes import Link

RISK_C = risk_quantile(0.05)


@pytest.fixture()
def link_state() -> LinkState:
    return LinkState(Link(link_id=1, child=1, parent=2, capacity=1000.0))


class TestAccounting:
    def test_fresh_link_is_idle(self, link_state):
        assert link_state.is_idle
        assert link_state.sharing_bandwidth == 1000.0
        assert link_state.num_stochastic_demands == 0

    def test_deterministic_reservation_shrinks_sharing(self, link_state):
        link_state.add_deterministic(1, 300.0)
        assert link_state.deterministic_total == 300.0
        assert link_state.sharing_bandwidth == 700.0

    def test_stochastic_demand_tracked(self, link_state):
        link_state.add_stochastic(1, Normal(100.0, 20.0))
        link_state.add_stochastic(2, Normal(50.0, 10.0))
        agg = link_state.aggregate()
        assert agg.total_mean == pytest.approx(150.0)
        assert agg.total_variance == pytest.approx(500.0)
        assert link_state.num_stochastic_demands == 2

    def test_demand_of_request_retrievable(self, link_state):
        demand = Normal(100.0, 20.0)
        link_state.add_stochastic(7, demand)
        assert link_state.stochastic_demand_of(7) == demand
        assert link_state.stochastic_demand_of(8) is None

    def test_deterministic_of_request(self, link_state):
        link_state.add_deterministic(3, 120.0)
        assert link_state.deterministic_reservation_of(3) == 120.0
        assert link_state.deterministic_reservation_of(4) == 0.0

    def test_duplicate_request_rejected(self, link_state):
        link_state.add_stochastic(1, Normal(10.0, 1.0))
        with pytest.raises(ValueError):
            link_state.add_stochastic(1, Normal(10.0, 1.0))
        with pytest.raises(ValueError):
            link_state.add_deterministic(1, 10.0)

    def test_negative_reservation_rejected(self, link_state):
        with pytest.raises(ValueError):
            link_state.add_deterministic(1, -5.0)

    def test_remove_restores_idle(self, link_state):
        link_state.add_stochastic(1, Normal(100.0, 20.0))
        link_state.add_deterministic(2, 50.0)
        link_state.remove_request(1)
        link_state.remove_request(2)
        assert link_state.is_idle
        assert link_state.mean_total == 0.0
        assert link_state.var_total == 0.0
        assert link_state.deterministic_total == 0.0

    def test_remove_absent_is_noop(self, link_state):
        link_state.remove_request(99)
        assert link_state.is_idle

    def test_many_add_remove_cycles_do_not_drift(self, link_state):
        demand = Normal(123.456, 78.9)
        for cycle in range(200):
            link_state.add_stochastic(cycle, demand)
            link_state.remove_request(cycle)
        assert link_state.mean_total == pytest.approx(0.0, abs=1e-6)
        assert link_state.var_total == pytest.approx(0.0, abs=1e-6)

    def test_totals_exactly_zero_after_last_tenant_departs(self, link_state):
        # Regression: subtracting per-tenant variance left float residue in
        # var_total after the last stochastic tenant departed.  The totals
        # must be *exactly* zero once no tenant remains — 0.0, not 1e-13.
        demand = Normal(123.456789, 98.7654321)
        for cycle in range(1000):
            link_state.add_stochastic(2 * cycle, demand)
            link_state.add_deterministic(2 * cycle + 1, 77.7777)
            link_state.remove_request(2 * cycle)
            link_state.remove_request(2 * cycle + 1)
            assert link_state.mean_total == 0.0
            assert link_state.var_total == 0.0
            assert link_state.deterministic_total == 0.0
        assert link_state.is_idle

    def test_totals_zeroed_even_with_overlapping_tenants(self, link_state):
        # Interleaved arrivals/departures: residue only snaps to zero when the
        # *last* tenant leaves; partial departures still subtract normally.
        a, b = Normal(100.1, 31.7), Normal(55.5, 12.3)
        link_state.add_stochastic(1, a)
        link_state.add_stochastic(2, b)
        link_state.remove_request(1)
        assert link_state.mean_total == pytest.approx(b.mean)
        link_state.remove_request(2)
        assert link_state.mean_total == 0.0
        assert link_state.var_total == 0.0


class TestOccupancy:
    def test_empty_link_zero_occupancy(self, link_state):
        assert link_state.occupancy(RISK_C) == 0.0

    def test_deterministic_only(self, link_state):
        link_state.add_deterministic(1, 250.0)
        assert link_state.occupancy(RISK_C) == pytest.approx(0.25)

    def test_stochastic_occupancy_formula(self, link_state):
        link_state.add_stochastic(1, Normal(100.0, 20.0))
        expected = (100.0 + RISK_C * 20.0) / 1000.0
        assert link_state.occupancy(RISK_C) == pytest.approx(expected)

    def test_occupancy_with_extra_candidate(self, link_state):
        link_state.add_stochastic(1, Normal(100.0, 20.0))
        probe = link_state.occupancy_with(RISK_C, extra_mean=50.0, extra_var=400.0)
        expected = (150.0 + RISK_C * (400.0 + 400.0) ** 0.5) / 1000.0
        assert probe == pytest.approx(expected)

    def test_occupancy_with_extra_deterministic(self, link_state):
        link_state.add_deterministic(1, 100.0)
        probe = link_state.occupancy_with(RISK_C, extra_deterministic=200.0)
        assert probe == pytest.approx(0.3)

    def test_probe_does_not_mutate(self, link_state):
        link_state.add_stochastic(1, Normal(100.0, 20.0))
        before = link_state.occupancy(RISK_C)
        link_state.occupancy_with(RISK_C, extra_mean=500.0, extra_var=100.0)
        assert link_state.occupancy(RISK_C) == before

    def test_mixed_occupancy(self, link_state):
        link_state.add_deterministic(1, 200.0)
        link_state.add_stochastic(2, Normal(300.0, 50.0))
        expected = (200.0 + 300.0 + RISK_C * 50.0) / 1000.0
        assert link_state.occupancy(RISK_C) == pytest.approx(expected)
