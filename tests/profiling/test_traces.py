"""Rate traces and synthetic generators."""

import numpy as np
import pytest

from repro.profiling import (
    RateTrace,
    synthetic_constant_trace,
    synthetic_normal_trace,
    synthetic_phased_trace,
)


class TestRateTrace:
    def test_moments(self):
        trace = RateTrace(samples=(10.0, 20.0, 30.0))
        assert trace.mean == pytest.approx(20.0)
        assert trace.std == pytest.approx(10.0)
        assert len(trace) == 3

    def test_percentile(self):
        trace = RateTrace(samples=tuple(float(x) for x in range(101)))
        assert trace.percentile(95) == pytest.approx(95.0)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            RateTrace(samples=(1.0,))

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            RateTrace(samples=(1.0, -2.0))


class TestSyntheticGenerators:
    def test_constant_trace(self):
        trace = synthetic_constant_trace(150.0, duration=10)
        assert trace.mean == 150.0
        assert trace.std == 0.0

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            synthetic_constant_trace(-1.0)

    def test_normal_trace_moments(self, rng):
        trace = synthetic_normal_trace(300.0, 50.0, rng, duration=50_000)
        assert trace.mean == pytest.approx(300.0, rel=0.02)
        assert trace.std == pytest.approx(50.0, rel=0.05)

    def test_normal_trace_respects_cap(self, rng):
        trace = synthetic_normal_trace(900.0, 400.0, rng, duration=5_000, cap=1000.0)
        assert max(trace.samples) <= 1000.0
        assert min(trace.samples) >= 0.0

    def test_phased_trace_bimodal(self, rng):
        trace = synthetic_phased_trace(
            50.0, 800.0, rng, duration=50_000, high_fraction=0.3, jitter=0.0
        )
        values = set(np.round(trace.samples, 6))
        assert values == {50.0, 800.0}
        high_share = np.mean(np.asarray(trace.samples) > 400.0)
        assert high_share == pytest.approx(0.3, abs=0.02)

    def test_phased_trace_volatility_exceeds_normal(self, rng):
        # The motivating property: phased workloads have a coefficient of
        # variation far above a comparable-mean noisy workload.
        phased = synthetic_phased_trace(50.0, 800.0, rng, duration=20_000)
        steady = synthetic_normal_trace(phased.mean, 30.0, rng, duration=20_000)
        assert phased.std / phased.mean > 3 * (steady.std / steady.mean)

    def test_phased_fraction_validated(self, rng):
        with pytest.raises(ValueError):
            synthetic_phased_trace(1.0, 2.0, rng, high_fraction=1.5)
