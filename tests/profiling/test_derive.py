"""Request derivation from profiling traces."""

import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.manager import NetworkManager
from repro.profiling import (
    RateTrace,
    derive_deterministic_vc,
    derive_heterogeneous_svc,
    derive_homogeneous_svc,
    fit_demand,
    synthetic_normal_trace,
    synthetic_phased_trace,
)


@pytest.fixture()
def traces(rng):
    return [synthetic_normal_trace(200.0, 60.0, rng, duration=2_000) for _ in range(5)]


class TestFitDemand:
    def test_moment_fit(self):
        trace = RateTrace(samples=(10.0, 20.0, 30.0))
        demand = fit_demand(trace)
        assert demand.mean == pytest.approx(20.0)
        assert demand.std == pytest.approx(10.0)

    def test_recovers_generator_parameters(self, rng):
        trace = synthetic_normal_trace(300.0, 40.0, rng, duration=100_000)
        demand = fit_demand(trace)
        assert demand.mean == pytest.approx(300.0, rel=0.01)
        assert demand.std == pytest.approx(40.0, rel=0.05)


class TestDeriveRequests:
    def test_homogeneous_pools_samples(self, traces):
        request = derive_homogeneous_svc(traces)
        assert isinstance(request, HomogeneousSVC)
        assert request.n_vms == 5
        assert request.mean == pytest.approx(200.0, rel=0.05)
        assert request.std == pytest.approx(60.0, rel=0.1)

    def test_heterogeneous_per_vm_fits(self, rng):
        traces = [
            synthetic_normal_trace(100.0, 10.0, rng, duration=5_000),
            synthetic_normal_trace(400.0, 80.0, rng, duration=5_000),
        ]
        request = derive_heterogeneous_svc(traces)
        assert isinstance(request, HeterogeneousSVC)
        assert request.demands[0].mean == pytest.approx(100.0, rel=0.05)
        assert request.demands[1].mean == pytest.approx(400.0, rel=0.05)

    def test_deterministic_percentile(self, traces):
        request = derive_deterministic_vc(traces, percentile=95.0)
        assert isinstance(request, DeterministicVC)
        # 95th percentile of Normal(200, 60): about 200 + 1.645*60.
        assert request.bandwidth == pytest.approx(200.0 + 1.645 * 60.0, rel=0.05)

    def test_empty_trace_list_rejected(self):
        with pytest.raises(ValueError):
            derive_homogeneous_svc([])
        with pytest.raises(ValueError):
            derive_heterogeneous_svc([])
        with pytest.raises(ValueError):
            derive_deterministic_vc([])

    def test_pooling_weights_by_length(self):
        short = RateTrace(samples=(0.0, 0.0))
        long = RateTrace(samples=(100.0,) * 8)
        request = derive_homogeneous_svc([short, long])
        assert request.mean == pytest.approx(80.0)


class TestEndToEndProfiledTenant:
    def test_profiled_request_is_admittable(self, tiny_tree, rng):
        # Profile a phased MapReduce-like app, derive an SVC request, admit it.
        traces = [
            synthetic_phased_trace(20.0, 500.0, rng, duration=1_000, cap=1000.0)
            for _ in range(6)
        ]
        request = derive_homogeneous_svc(traces)
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(request)
        assert tenancy is not None
        manager.release(tenancy)

    def test_svc_cheaper_than_percentile_reservation(self, rng):
        # The economic argument of the paper: for volatile workloads the SVC
        # effective bandwidth sits well below a 95th-percentile reservation.
        traces = [
            synthetic_phased_trace(20.0, 500.0, rng, duration=5_000) for _ in range(8)
        ]
        svc = derive_homogeneous_svc(traces)
        pctl = derive_deterministic_vc(traces, percentile=95.0)
        n = svc.n_vms
        svc_effective = n * svc.mean + 1.645 * (n ** 0.5) * svc.std
        pctl_reserved = n * pctl.bandwidth
        assert svc_effective < pctl_reserved
