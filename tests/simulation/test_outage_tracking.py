"""Outage instrumentation of the data plane (validation of Eq. 1)."""

import numpy as np

from repro.abstractions import HomogeneousSVC
from repro.manager import NetworkManager
from repro.simulation.engine import DataPlane
from repro.simulation.jobs import ActiveJob, JobSpec
from tests.conftest import build_star_tree


def run_plane(tree, request, spec, steps, rng, epsilon=0.4):
    plane = DataPlane(tree, rng, track_outages=True)
    manager = NetworkManager(tree, epsilon=epsilon)
    tenancy = manager.request(request)
    assert tenancy is not None
    plane.start_job(ActiveJob(spec=spec, tenancy=tenancy, start_time=0))
    for step in range(steps):
        plane.step(step)
    return plane


class TestOutageTracking:
    def test_no_outages_for_light_demand(self, rng):
        tree = build_star_tree(slots=(2, 2), capacities=(1000.0, 1000.0))
        spec = JobSpec(
            job_id=1, n_vms=4, compute_time=50, mean_rate=50.0,
            std_rate=0.0, flow_volume=1e9,
        )
        plane = run_plane(tree, HomogeneousSVC(n_vms=4, mean=50.0, std=0.0), spec, 30, rng)
        outage, loaded = plane.outage_statistics()
        assert outage == 0
        assert loaded > 0

    def test_outages_detected_when_demand_exceeds_capacity(self, rng):
        # Demand mean far above a thin link: every loaded second is an outage.
        tree = build_star_tree(slots=(2, 2), capacities=(100.0, 100.0))
        spec = JobSpec(
            job_id=1, n_vms=4, compute_time=50, mean_rate=400.0,
            std_rate=0.0, flow_volume=1e9,
        )
        plane = run_plane(
            tree, HomogeneousSVC(n_vms=4, mean=10.0, std=1.0), spec, 20, rng, epsilon=0.4
        )
        outage, loaded = plane.outage_statistics()
        assert loaded > 0
        assert outage > 0
        # With two 400-demand flows per direction on 100-capacity links,
        # every loaded link-second on a crossing link is an outage.
        assert outage >= loaded // 2

    def test_tracking_disabled_by_default(self, tiny_tree, rng):
        plane = DataPlane(tiny_tree, rng)
        manager = NetworkManager(tiny_tree)
        spec = JobSpec(
            job_id=1, n_vms=8, compute_time=10, mean_rate=500.0,
            std_rate=100.0, flow_volume=1e9,
        )
        tenancy = manager.request(HomogeneousSVC(n_vms=8, mean=200.0, std=50.0))
        plane.start_job(ActiveJob(spec=spec, tenancy=tenancy, start_time=0))
        for step in range(5):
            plane.step(step)
        assert plane.outage_statistics() == (0, 0)

    def test_outage_rate_bounded_by_loaded(self, tiny_tree):
        rng = np.random.default_rng(3)
        plane = DataPlane(tiny_tree, rng, track_outages=True)
        manager = NetworkManager(tiny_tree, epsilon=0.2)
        for job_id in range(4):
            tenancy = manager.request(HomogeneousSVC(n_vms=6, mean=300.0, std=200.0))
            if tenancy is None:
                continue
            spec = JobSpec(
                job_id=job_id, n_vms=6, compute_time=50, mean_rate=300.0,
                std_rate=200.0, flow_volume=1e9,
            )
            plane.start_job(ActiveJob(spec=spec, tenancy=tenancy, start_time=0))
        for step in range(50):
            plane.step(step)
        outage, loaded = plane.outage_statistics()
        assert 0 <= outage <= loaded
