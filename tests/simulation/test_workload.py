"""Workload generator and abstraction adapters (Section VI-A)."""

import numpy as np
import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.simulation.workload import (
    ABSTRACTION_MODELS,
    WorkloadConfig,
    assign_poisson_arrivals,
    generate_jobs,
    make_request,
)
from repro.stochastic.normal import Normal, truncated_moments


class TestWorkloadConfig:
    def test_defaults_follow_paper(self):
        config = WorkloadConfig()
        assert config.num_jobs == 500
        assert config.mean_job_size == 49.0
        assert config.compute_time_range == (200, 500)
        assert config.rate_choices == (100.0, 200.0, 300.0, 400.0, 500.0)
        assert config.deviation is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_jobs": 0},
            {"min_job_size": 0},
            {"min_job_size": 10, "max_job_size": 5},
            {"deviation": 1.5},
            {"compute_time_range": (300, 200)},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)

    def test_mean_compute_time(self):
        assert WorkloadConfig().mean_compute_time == 350.0


class TestGenerateJobs:
    def test_count_and_ids(self, rng):
        specs = generate_jobs(WorkloadConfig(num_jobs=50), rng)
        assert len(specs) == 50
        assert [spec.job_id for spec in specs] == list(range(50))

    def test_sizes_within_bounds(self, rng):
        config = WorkloadConfig(num_jobs=300, min_job_size=2, max_job_size=100)
        specs = generate_jobs(config, rng)
        assert all(2 <= spec.n_vms <= 100 for spec in specs)

    def test_sizes_roughly_exponential(self):
        config = WorkloadConfig(num_jobs=4000, mean_job_size=49.0, max_job_size=10_000)
        specs = generate_jobs(config, np.random.default_rng(0))
        mean_size = np.mean([spec.n_vms for spec in specs])
        assert mean_size == pytest.approx(49.0, rel=0.1)

    def test_compute_times_in_range(self, rng):
        specs = generate_jobs(WorkloadConfig(num_jobs=200), rng)
        assert all(200 <= spec.compute_time <= 500 for spec in specs)

    def test_rates_from_choices(self, rng):
        specs = generate_jobs(WorkloadConfig(num_jobs=200), rng)
        assert all(spec.mean_rate in {100, 200, 300, 400, 500} for spec in specs)

    def test_fixed_deviation(self, rng):
        specs = generate_jobs(WorkloadConfig(num_jobs=100, deviation=0.3), rng)
        for spec in specs:
            assert spec.std_rate == pytest.approx(0.3 * spec.mean_rate)

    def test_random_deviation_below_mean(self, rng):
        specs = generate_jobs(WorkloadConfig(num_jobs=200), rng)
        assert all(spec.std_rate <= spec.mean_rate for spec in specs)

    def test_flow_volume_scales_with_rate(self, rng):
        specs = generate_jobs(WorkloadConfig(num_jobs=200), rng)
        for spec in specs:
            ratio = spec.flow_volume / spec.mean_rate
            assert 200 <= ratio <= 500

    def test_heterogeneous_vm_rates(self, rng):
        specs = generate_jobs(WorkloadConfig(num_jobs=50, heterogeneous=True), rng)
        for spec in specs:
            assert spec.vm_rates is not None
            assert len(spec.vm_rates) == spec.n_vms
            assert all(mu in {100, 200, 300, 400, 500} for mu, _sd in spec.vm_rates)

    def test_deterministic_given_seed(self):
        a = generate_jobs(WorkloadConfig(num_jobs=20), np.random.default_rng(3))
        b = generate_jobs(WorkloadConfig(num_jobs=20), np.random.default_rng(3))
        assert a == b


class TestPoissonArrivals:
    def test_arrival_times_nondecreasing(self, rng):
        specs = generate_jobs(WorkloadConfig(num_jobs=100), np.random.default_rng(0))
        stamped = assign_poisson_arrivals(specs, 0.6, 480, 12.0, 350.0, rng)
        times = [spec.submit_time for spec in stamped]
        assert times == sorted(times)

    def test_rate_matches_load_formula(self):
        # lambda = load * M / (N * Tc); mean inter-arrival = 1 / lambda.
        specs = generate_jobs(
            WorkloadConfig(num_jobs=3000, mean_job_size=12.0), np.random.default_rng(0)
        )
        stamped = assign_poisson_arrivals(
            specs, 0.6, 480, 12.0, 350.0, np.random.default_rng(1)
        )
        lam = 0.6 * 480 / (12.0 * 350.0)
        horizon = stamped[-1].submit_time
        assert len(stamped) / horizon == pytest.approx(lam, rel=0.1)

    def test_rejects_nonpositive_load(self, rng):
        with pytest.raises(ValueError):
            assign_poisson_arrivals([], 0.0, 480, 12.0, 350.0, rng)

    def test_original_specs_untouched(self, rng):
        specs = generate_jobs(WorkloadConfig(num_jobs=10), np.random.default_rng(0))
        assign_poisson_arrivals(specs, 0.5, 480, 12.0, 350.0, rng)
        assert all(spec.submit_time == 0.0 for spec in specs)


class TestMakeRequest:
    def spec(self, **overrides):
        from repro.simulation.jobs import JobSpec

        params = dict(
            job_id=0, n_vms=10, compute_time=300, mean_rate=300.0,
            std_rate=150.0, flow_volume=1e5,
        )
        params.update(overrides)
        return JobSpec(**params)

    def test_models_enumerated(self):
        assert set(ABSTRACTION_MODELS) == {"mean-vc", "percentile-vc", "svc"}

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            make_request(self.spec(), "oktopus")

    def test_mean_vc_without_cap(self):
        request = make_request(self.spec(), "mean-vc")
        assert isinstance(request, DeterministicVC)
        assert request.bandwidth == pytest.approx(300.0)

    def test_percentile_vc_without_cap(self):
        request = make_request(self.spec(), "percentile-vc")
        assert request.bandwidth == pytest.approx(300.0 + 1.6449 * 150.0, abs=0.1)

    def test_svc_without_cap(self):
        request = make_request(self.spec(), "svc")
        assert isinstance(request, HomogeneousSVC)
        assert request.mean == 300.0
        assert request.std == 150.0

    def test_rate_cap_truncates_profile(self):
        spec = self.spec(mean_rate=500.0, std_rate=450.0)
        request = make_request(spec, "svc", rate_cap=1000.0)
        expected = truncated_moments(Normal(500.0, 450.0), 0.0, 1000.0)
        assert request.mean == pytest.approx(expected.mean)
        assert request.std == pytest.approx(expected.std)

    def test_percentile_vc_never_exceeds_cap(self):
        spec = self.spec(mean_rate=500.0, std_rate=450.0)
        request = make_request(spec, "percentile-vc", rate_cap=1000.0)
        assert request.bandwidth <= 1000.0

    def test_cap_noop_for_narrow_profile(self):
        spec = self.spec(mean_rate=100.0, std_rate=5.0)
        capped = make_request(spec, "svc", rate_cap=1000.0)
        assert capped.mean == pytest.approx(100.0, abs=1e-6)
        assert capped.std == pytest.approx(5.0, rel=1e-3)

    def test_heterogeneous_svc_request(self):
        spec = self.spec(
            n_vms=3, vm_rates=((100.0, 10.0), (200.0, 20.0), (300.0, 30.0))
        )
        request = make_request(spec, "svc")
        assert isinstance(request, HeterogeneousSVC)
        assert request.demands[2] == Normal(300.0, 30.0)

    def test_heterogeneous_vc_uses_max(self):
        spec = self.spec(
            n_vms=3, vm_rates=((100.0, 10.0), (200.0, 20.0), (300.0, 30.0))
        )
        mean_vc = make_request(spec, "mean-vc")
        pctl_vc = make_request(spec, "percentile-vc")
        assert mean_vc.bandwidth == pytest.approx(300.0)
        assert pctl_vc.bandwidth == pytest.approx(300.0 + 1.6449 * 30.0, abs=0.1)
