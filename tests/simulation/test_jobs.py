"""Job specifications and active-job bookkeeping."""

import pytest

from repro.abstractions import DeterministicVC, HomogeneousSVC
from repro.manager import NetworkManager
from repro.simulation.jobs import ActiveJob, JobSpec


def make_spec(**overrides):
    params = dict(
        job_id=1,
        n_vms=4,
        compute_time=300,
        mean_rate=200.0,
        std_rate=50.0,
        flow_volume=10_000.0,
    )
    params.update(overrides)
    return JobSpec(**params)


class TestJobSpec:
    def test_ring_flows_cover_every_task(self):
        spec = make_spec(n_vms=5)
        flows = spec.ring_flows()
        assert len(flows) == 5
        sources = [src for src, _ in flows]
        destinations = [dst for _, dst in flows]
        assert sorted(sources) == list(range(5))
        assert sorted(destinations) == list(range(5))

    def test_no_self_flows_for_multi_vm(self):
        spec = make_spec(n_vms=3)
        assert all(src != dst for src, dst in spec.ring_flows())

    def test_single_vm_job_has_no_flows(self):
        assert make_spec(n_vms=1).ring_flows() == []

    def test_rate_of_vm_homogeneous(self):
        spec = make_spec()
        assert spec.rate_of_vm(2) == (200.0, 50.0)

    def test_rate_of_vm_heterogeneous(self):
        rates = ((100.0, 10.0), (200.0, 20.0), (300.0, 30.0), (400.0, 40.0))
        spec = make_spec(vm_rates=rates)
        assert spec.is_heterogeneous
        assert spec.rate_of_vm(2) == (300.0, 30.0)

    def test_vm_rates_length_checked(self):
        with pytest.raises(ValueError):
            make_spec(vm_rates=((1.0, 0.1),))

    @pytest.mark.parametrize(
        "field,value",
        [("n_vms", 0), ("compute_time", -1), ("mean_rate", -1.0), ("flow_volume", -1.0)],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            make_spec(**{field: value})


class TestActiveJob:
    def _place(self, tiny_tree, spec, request):
        manager = NetworkManager(tiny_tree)
        tenancy = manager.request(request)
        assert tenancy is not None
        return ActiveJob(spec=spec, tenancy=tenancy, start_time=10)

    def test_flow_state_initialized(self, tiny_tree):
        spec = make_spec(n_vms=6)
        job = self._place(tiny_tree, spec, HomogeneousSVC(n_vms=6, mean=200.0, std=50.0))
        assert len(job.remaining) == 6
        assert (job.remaining == spec.flow_volume).all()
        assert len(job.flow_machines) == 6
        assert job.network_end is None

    def test_compute_end(self, tiny_tree):
        spec = make_spec(compute_time=250)
        job = self._place(tiny_tree, spec, HomogeneousSVC(n_vms=4, mean=200.0, std=50.0))
        assert job.compute_end == 260

    def test_svc_flows_uncapped(self, tiny_tree):
        job = self._place(tiny_tree, make_spec(), HomogeneousSVC(n_vms=4, mean=200.0, std=50.0))
        assert all(cap == float("inf") for cap in job.flow_caps)

    def test_deterministic_flows_capped_at_reservation(self, tiny_tree):
        job = self._place(tiny_tree, make_spec(), DeterministicVC(n_vms=4, bandwidth=150.0))
        assert all(cap == 150.0 for cap in job.flow_caps)

    def test_single_vm_job_network_done_immediately(self, tiny_tree):
        spec = make_spec(n_vms=1)
        job = self._place(tiny_tree, spec, HomogeneousSVC(n_vms=1, mean=200.0, std=50.0))
        assert job.network_done
        assert job.completion_time() == job.compute_end

    def test_completion_time_none_while_running(self, tiny_tree):
        job = self._place(tiny_tree, make_spec(), HomogeneousSVC(n_vms=4, mean=200.0, std=50.0))
        assert job.completion_time() is None

    def test_completion_is_max_of_phases(self, tiny_tree):
        job = self._place(tiny_tree, make_spec(compute_time=100), HomogeneousSVC(n_vms=4, mean=200.0, std=50.0))
        job.network_end = 500
        assert job.completion_time() == 500
        job.network_end = 50
        assert job.completion_time() == job.compute_end

    def test_flow_machines_follow_placement(self, tiny_tree):
        spec = make_spec(n_vms=4)
        job = self._place(tiny_tree, spec, HomogeneousSVC(n_vms=4, mean=200.0, std=50.0))
        placement = job.tenancy.vm_machines
        for (src, dst), (src_m, dst_m) in zip(spec.ring_flows(), job.flow_machines):
            assert src_m == placement[src]
            assert dst_m == placement[dst]
