"""Max-min fair sharing: hand-checkable cases plus fairness properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.maxmin import build_incidence, max_min_fair_rates


def rates_for(demands, paths, capacities):
    link_of_entry, flow_ptr = build_incidence(paths, len(capacities))
    return max_min_fair_rates(
        np.asarray(demands, dtype=float), link_of_entry, flow_ptr,
        np.asarray(capacities, dtype=float),
    )


class TestHandCases:
    def test_no_flows(self):
        assert len(rates_for([], [], [10.0])) == 0

    def test_single_flow_demand_limited(self):
        rates = rates_for([5.0], [[0]], [10.0])
        assert rates[0] == pytest.approx(5.0)

    def test_single_flow_capacity_limited(self):
        rates = rates_for([50.0], [[0]], [10.0])
        assert rates[0] == pytest.approx(10.0)

    def test_equal_split_on_shared_link(self):
        rates = rates_for([50.0, 50.0], [[0], [0]], [10.0])
        assert rates[0] == pytest.approx(5.0)
        assert rates[1] == pytest.approx(5.0)

    def test_small_demand_releases_share(self):
        # Flow 0 wants only 2; flow 1 takes the rest of the 10-unit link.
        rates = rates_for([2.0, 50.0], [[0], [0]], [10.0])
        assert rates[0] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(8.0)

    def test_classic_three_flow_two_link(self):
        # Textbook example: flows A (link 0), B (link 1), C (links 0+1),
        # both capacities 1: C gets 0.5 at its bottleneck, A and B fill up.
        rates = rates_for([10.0, 10.0, 10.0], [[0], [1], [0, 1]], [1.0, 1.0])
        assert rates[2] == pytest.approx(0.5)
        assert rates[0] == pytest.approx(0.5)
        assert rates[1] == pytest.approx(0.5)

    def test_asymmetric_bottlenecks(self):
        # C crosses a thin link 0 (cap 1) and a fat link 1 (cap 10) shared
        # with B: C is bottlenecked at 0.5 by link 0, B gets 10 - 0.5.
        rates = rates_for([10.0, 20.0, 10.0], [[0], [1], [0, 1]], [1.0, 10.0])
        assert rates[0] == pytest.approx(0.5)
        assert rates[2] == pytest.approx(0.5)
        assert rates[1] == pytest.approx(9.5)

    def test_linkless_flow_gets_demand(self):
        rates = rates_for([7.0, 5.0], [[], [0]], [10.0])
        assert rates[0] == pytest.approx(7.0)
        assert rates[1] == pytest.approx(5.0)

    def test_zero_demand_flow(self):
        rates = rates_for([0.0, 5.0], [[0], [0]], [10.0])
        assert rates[0] == 0.0
        assert rates[1] == pytest.approx(5.0)

    def test_unequal_demands_waterfill(self):
        # Demands 1, 3, 10 on a 9-unit link: 1 + 3 + 5 (fair residual).
        rates = rates_for([1.0, 3.0, 10.0], [[0], [0], [0]], [9.0])
        assert rates[0] == pytest.approx(1.0)
        assert rates[1] == pytest.approx(3.0)
        assert rates[2] == pytest.approx(5.0)

    def test_incidence_bounds_checked(self):
        with pytest.raises(ValueError):
            build_incidence([[5]], num_links=2)

    def test_bad_ptr_rejected(self):
        with pytest.raises(ValueError):
            max_min_fair_rates(
                np.ones(2), np.zeros(1, dtype=int), np.zeros(1, dtype=int), np.ones(1)
            )


@st.composite
def random_networks(draw):
    num_links = draw(st.integers(min_value=1, max_value=6))
    num_flows = draw(st.integers(min_value=1, max_value=12))
    capacities = [
        draw(st.floats(min_value=0.5, max_value=100.0)) for _ in range(num_links)
    ]
    demands = [draw(st.floats(min_value=0.0, max_value=50.0)) for _ in range(num_flows)]
    paths = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=num_links - 1),
                unique=True,
                max_size=num_links,
            )
        )
        for _ in range(num_flows)
    ]
    return demands, paths, capacities


class TestFairnessProperties:
    @given(network=random_networks())
    @settings(max_examples=150, deadline=None)
    def test_rates_bounded_by_demand(self, network):
        demands, paths, capacities = network
        rates = rates_for(demands, paths, capacities)
        assert (rates <= np.asarray(demands) + 1e-6).all()
        assert (rates >= -1e-9).all()

    @given(network=random_networks())
    @settings(max_examples=150, deadline=None)
    def test_capacities_respected(self, network):
        demands, paths, capacities = network
        rates = rates_for(demands, paths, capacities)
        usage = np.zeros(len(capacities))
        for flow, path in enumerate(paths):
            for link in path:
                usage[link] += rates[flow]
        assert (usage <= np.asarray(capacities) + 1e-6).all()

    @given(network=random_networks())
    @settings(max_examples=150, deadline=None)
    def test_no_starved_flow_without_saturated_link(self, network):
        # Max-min property: a flow below its demand must cross a link whose
        # capacity is (nearly) exhausted and on which it is among the top
        # receivers.
        demands, paths, capacities = network
        rates = rates_for(demands, paths, capacities)
        usage = np.zeros(len(capacities))
        for flow, path in enumerate(paths):
            for link in path:
                usage[link] += rates[flow]
        for flow, path in enumerate(paths):
            if rates[flow] < demands[flow] - 1e-6:
                assert path, "a linkless flow can never be throttled"
                bottlenecked = False
                for link in path:
                    if usage[link] >= capacities[link] - 1e-6:
                        top = max(
                            rates[other]
                            for other, other_path in enumerate(paths)
                            if link in other_path
                        )
                        if rates[flow] >= top - 1e-6:
                            bottlenecked = True
                            break
                assert bottlenecked, f"flow {flow} throttled without a bottleneck"


@st.composite
def degenerate_networks(draw):
    """Adversarial inputs: zero-capacity links, duplicated demands spanning
    ten orders of magnitude, optionally-empty paths — the terrain where the
    water-filling loop's freeze condition and numerical-stall guard live."""
    num_links = draw(st.integers(min_value=1, max_value=5))
    num_flows = draw(st.integers(min_value=1, max_value=10))
    capacities = [
        draw(st.one_of(st.just(0.0), st.floats(min_value=0.0, max_value=1e3)))
        for _ in range(num_links)
    ]
    base_demand = draw(st.floats(min_value=0.0, max_value=100.0))
    demands = [
        draw(
            st.one_of(
                st.just(base_demand),  # ties: many flows freeze in one round
                st.floats(min_value=0.0, max_value=1e3),
                st.floats(min_value=0.0, max_value=1e-7),  # below/near tolerance
            )
        )
        for _ in range(num_flows)
    ]
    paths = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=num_links - 1),
                unique=True,
                max_size=num_links,
            )
        )
        for _ in range(num_flows)
    ]
    return demands, paths, capacities


class TestEdgeCaseProperties:
    @given(
        demands=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=0, max_size=20
        ),
        num_links=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_all_linkless_flows_get_exact_demand(self, demands, num_links):
        # No flow crosses any link: the allocation is the demand vector,
        # bit for bit, regardless of how many (unused) links exist.
        capacities = [10.0] * num_links
        rates = rates_for(demands, [[] for _ in demands], capacities)
        assert rates.tolist() == demands

    @given(network=degenerate_networks())
    @settings(max_examples=200, deadline=None)
    def test_degenerate_networks_converge_with_invariants(self, network):
        # The convergence loop must terminate (the stall guard's job when
        # float cancellation leaves no flow provably freezable) and the two
        # safety invariants must survive zero capacities and demand ties.
        demands, paths, capacities = network
        rates = rates_for(demands, paths, capacities)
        assert (rates >= 0.0).all()
        assert (rates <= np.asarray(demands) + 1e-6).all()
        usage = np.zeros(len(capacities))
        for flow, path in enumerate(paths):
            for link in path:
                usage[link] += rates[flow]
        assert (usage <= np.asarray(capacities) + 1e-6).all()

    @given(network=degenerate_networks())
    @settings(max_examples=200, deadline=None)
    def test_zero_capacity_links_starve_their_flows(self, network):
        demands, paths, capacities = network
        rates = rates_for(demands, paths, capacities)
        for flow, path in enumerate(paths):
            if any(capacities[link] == 0.0 for link in path):
                assert rates[flow] <= 1e-6

    @given(
        num_flows=st.integers(min_value=2, max_value=40),
        capacity=st.floats(min_value=1e-12, max_value=1e-6),
    )
    @settings(max_examples=100, deadline=None)
    def test_near_zero_capacity_ties_terminate(self, num_flows, capacity):
        # Every flow shares one hairline link with an identical demand just
        # above the freeze tolerance: per-flow shares and the fill level
        # agree to within float error, the regime the stall guard exists
        # for.  The call must return (not spin to _MAX_ROUNDS) and split
        # the link evenly.
        demands = [1e-8] * num_flows
        rates = rates_for(demands, [[0]] * num_flows, [capacity])
        assert (rates >= 0.0).all()
        assert rates.sum() <= capacity + 1e-9 or rates.sum() <= sum(demands) + 1e-9
