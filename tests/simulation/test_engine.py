"""Data-plane engine: directed paths, stepping, flow completion."""

import numpy as np
import pytest

from repro.abstractions import DeterministicVC, HomogeneousSVC
from repro.manager import NetworkManager
from repro.simulation.engine import DataPlane, directed_path
from repro.simulation.jobs import ActiveJob, JobSpec


def start_job(plane, manager, spec, request, start=0):
    tenancy = manager.request(request)
    assert tenancy is not None
    job = ActiveJob(spec=spec, tenancy=tenancy, start_time=start)
    plane.start_job(job)
    return job


def spec_with(**overrides):
    params = dict(
        job_id=overrides.pop("job_id", 1),
        n_vms=4,
        compute_time=10,
        mean_rate=100.0,
        std_rate=0.0,
        flow_volume=1000.0,
    )
    params.update(overrides)
    return JobSpec(**params)


class TestDirectedPath:
    def test_same_machine_empty(self, tiny_tree):
        machine = tiny_tree.machine_ids[0]
        assert directed_path(tiny_tree, machine, machine) == []

    def test_same_rack_one_up_one_down(self, tiny_tree):
        a, b = tiny_tree.machine_ids[0], tiny_tree.machine_ids[1]
        path = directed_path(tiny_tree, a, b)
        assert path == [2 * a, 2 * b + 1]

    def test_direction_encoding_disjoint(self, tiny_tree):
        a, b = tiny_tree.machine_ids[0], tiny_tree.machine_ids[-1]
        forward = set(directed_path(tiny_tree, a, b))
        backward = set(directed_path(tiny_tree, b, a))
        # Same links, opposite directions: no shared directed entries.
        assert forward.isdisjoint(backward)
        assert {idx // 2 for idx in forward} == {idx // 2 for idx in backward}

    def test_cross_pod_path_length(self, tiny_tree):
        # machine -> ToR -> agg up, then agg -> ToR -> machine down: 6 hops.
        a, b = tiny_tree.machine_ids[0], tiny_tree.machine_ids[-1]
        assert len(directed_path(tiny_tree, a, b)) == 6


class TestStepping:
    def test_deterministic_progress(self, tiny_tree, rng):
        # sigma = 0 and generous capacity: each flow moves mean_rate per step.
        plane = DataPlane(tiny_tree, rng)
        manager = NetworkManager(tiny_tree)
        spec = spec_with(flow_volume=250.0, mean_rate=100.0)
        job = start_job(plane, manager, spec, HomogeneousSVC(n_vms=4, mean=100.0, std=0.0))
        finished = plane.step(0)
        assert finished == []
        plane.step(1)
        finished = plane.step(2)
        assert finished == [spec.job_id]
        assert job.network_end == 3
        assert np.all(job.remaining <= 1e-9)

    def test_rate_limited_job_is_slower(self, tiny_tree, rng):
        # A deterministic-VC job capped at 50 needs twice the steps of an
        # uncapped SVC job with the same demand.
        plane = DataPlane(tiny_tree, rng)
        manager = NetworkManager(tiny_tree)
        capped_spec = spec_with(job_id=1, flow_volume=100.0, mean_rate=100.0)
        start_job(plane, manager, capped_spec, DeterministicVC(n_vms=4, bandwidth=50.0))
        done_at = None
        for step in range(5):
            if plane.step(step):
                done_at = step + 1
                break
        assert done_at == 2  # 100 volume at 50/s

    def test_active_job_count(self, tiny_tree, rng):
        plane = DataPlane(tiny_tree, rng)
        manager = NetworkManager(tiny_tree)
        start_job(plane, manager, spec_with(job_id=1), HomogeneousSVC(n_vms=4, mean=1.0, std=0.0))
        start_job(plane, manager, spec_with(job_id=2), HomogeneousSVC(n_vms=4, mean=1.0, std=0.0))
        assert plane.active_jobs == 2
        plane.remove_job(1)
        assert plane.active_jobs == 1

    def test_duplicate_job_rejected(self, tiny_tree, rng):
        plane = DataPlane(tiny_tree, rng)
        manager = NetworkManager(tiny_tree)
        job = start_job(plane, manager, spec_with(), HomogeneousSVC(n_vms=4, mean=1.0, std=0.0))
        with pytest.raises(ValueError):
            plane.start_job(job)

    def test_remove_unknown_job_raises_and_leaves_plane_clean(self, tiny_tree, rng):
        # Regression: remove_job used to mark the flow matrix dirty *before*
        # discovering the job id was unknown, so the bare KeyError left the
        # plane scheduled for a pointless rebuild.  Now it's a descriptive
        # ValueError and the plane state is untouched.
        plane = DataPlane(tiny_tree, rng)
        manager = NetworkManager(tiny_tree)
        spec = spec_with(job_id=1, flow_volume=1000.0, mean_rate=100.0)
        start_job(plane, manager, spec, HomogeneousSVC(n_vms=4, mean=100.0, std=0.0))
        plane.step(0)
        remaining_before = plane.remaining_volume(1).copy()
        with pytest.raises(ValueError, match="not active"):
            plane.remove_job(99)
        assert plane.active_jobs == 1
        # The active job keeps progressing normally after the failed remove.
        plane.step(1)
        assert np.all(plane.remaining_volume(1) <= remaining_before)

    def test_remove_unknown_job_on_empty_plane(self, tiny_tree, rng):
        plane = DataPlane(tiny_tree, rng)
        with pytest.raises(ValueError, match="0 active jobs"):
            plane.remove_job(1)
        assert plane.step(0) == []

    def test_progress_preserved_across_job_events(self, tiny_tree, rng):
        # Adding a second job mid-flight must not reset the first one.
        plane = DataPlane(tiny_tree, rng)
        manager = NetworkManager(tiny_tree)
        spec1 = spec_with(job_id=1, flow_volume=1000.0, mean_rate=100.0)
        job1 = start_job(plane, manager, spec1, HomogeneousSVC(n_vms=4, mean=100.0, std=0.0))
        plane.step(0)
        spec2 = spec_with(job_id=2, flow_volume=1000.0, mean_rate=10.0)
        start_job(plane, manager, spec2, HomogeneousSVC(n_vms=4, mean=10.0, std=0.0))
        plane.step(1)
        assert np.allclose(plane.remaining_volume(1), 1000.0 - 2 * 100.0)

    def test_congestion_shares_capacity(self, rng):
        # Two SVC jobs, each a 2-VM ring crossing the same 100-capacity
        # machine links; demands of 100 each direction fit exactly, but
        # four flows over one link of 100 capacity each way do not: the
        # per-flow rate collapses to the fair share.
        from tests.conftest import build_star_tree
        from repro.manager import NetworkManager

        tree = build_star_tree(slots=(2, 2), capacities=(100.0, 100.0))
        plane = DataPlane(tree, rng)
        manager = NetworkManager(tree, epsilon=0.4)
        jobs = []
        for job_id in (1, 2):
            spec = JobSpec(
                job_id=job_id, n_vms=2, compute_time=5, mean_rate=100.0,
                std_rate=0.0, flow_volume=1000.0,
            )
            request = HomogeneousSVC(n_vms=2, mean=30.0, std=5.0)
            tenancy = manager.request(request)
            assert tenancy is not None
            job = ActiveJob(spec=spec, tenancy=tenancy, start_time=0)
            plane.start_job(job)
            jobs.append(job)
        plane.step(0)
        # Whether the two jobs were co-located or split, no link direction
        # may carry more than its 100-capacity: total progress per step is
        # bounded accordingly.
        moved = sum(float(np.sum(1000.0 - job.remaining)) for job in jobs)
        assert moved <= 400.0 + 1e-6
        if any(len({m for m, _ in job.flow_machines}) > 1 for job in jobs):
            assert moved < 400.0 - 1e-6  # congestion actually bit

    def test_empty_plane_steps(self, tiny_tree, rng):
        plane = DataPlane(tiny_tree, rng)
        assert plane.step(0) == []

    def test_stochastic_demands_move_volume(self, tiny_tree):
        rng = np.random.default_rng(7)
        plane = DataPlane(tiny_tree, rng)
        manager = NetworkManager(tiny_tree)
        spec = spec_with(std_rate=50.0, flow_volume=1e9)
        job = start_job(plane, manager, spec, HomogeneousSVC(n_vms=4, mean=100.0, std=50.0))
        for step in range(20):
            plane.step(step)
        moved = float(np.sum(1e9 - plane.remaining_volume(spec.job_id)))
        # 4 flows x 20 steps x ~100 mean; demand noise and clipping allow slack.
        assert 4_000.0 < moved < 12_000.0
