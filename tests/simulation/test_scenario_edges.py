"""Scenario driver edge cases and configuration paths."""

import numpy as np
import pytest

from repro.simulation.jobs import JobSpec
from repro.simulation.scenario import _resolve_rate_cap, run_batch, run_online
from repro.topology import TINY_SPEC, build_datacenter


@pytest.fixture(scope="module")
def tree():
    return build_datacenter(TINY_SPEC)


def tiny_spec(job_id, n_vms=2, submit=0.0, compute=5, rate=50.0, volume=100.0):
    return JobSpec(
        job_id=job_id, n_vms=n_vms, compute_time=compute, mean_rate=rate,
        std_rate=0.0, flow_volume=volume, submit_time=submit,
    )


class TestRateCapResolution:
    def test_nic_default(self, tree):
        assert _resolve_rate_cap(tree, "nic") == tree.min_machine_uplink_capacity

    def test_none_disables(self, tree):
        assert _resolve_rate_cap(tree, None) is None

    def test_explicit_number(self, tree):
        assert _resolve_rate_cap(tree, 512.0) == 512.0

    def test_rate_cap_none_runs(self, tree):
        specs = [tiny_spec(0)]
        result = run_batch(tree, specs, model="svc", rate_cap=None, rng=np.random.default_rng(0))
        assert result.records[0].completed


class TestBatchEdges:
    def test_empty_batch(self, tree):
        result = run_batch(tree, [], model="svc", rng=np.random.default_rng(0))
        assert result.records == []
        assert result.makespan == 0

    def test_single_compute_only_job(self, tree):
        spec = tiny_spec(0, n_vms=1, compute=7)
        result = run_batch(tree, [spec], model="svc", rng=np.random.default_rng(0))
        record = result.records[0]
        assert record.completion_time == 7
        assert record.running_time == 7

    def test_zero_compute_time_job(self, tree):
        spec = tiny_spec(0, n_vms=2, compute=0, volume=100.0, rate=100.0)
        result = run_batch(tree, [spec], model="svc", rng=np.random.default_rng(0))
        record = result.records[0]
        # Completion bounded by the network phase (1 s at rate 100).
        assert record.completion_time == 1

    def test_max_time_guard(self, tree):
        # A job that can never finish (zero demand, positive volume) trips
        # the runaway guard instead of hanging.
        spec = tiny_spec(0, n_vms=2, rate=0.0, volume=100.0)
        with pytest.raises(RuntimeError):
            run_batch(tree, [spec], model="svc", max_time=50, rng=np.random.default_rng(0))

    def test_head_of_line_blocking(self, tree):
        # A huge head job blocks a small one even though the small one fits.
        big = tiny_spec(0, n_vms=48, compute=20, rate=10.0, volume=10.0)
        filler = tiny_spec(1, n_vms=40, compute=30, rate=10.0, volume=10.0)
        small = tiny_spec(2, n_vms=2, compute=5, rate=10.0, volume=10.0)
        result = run_batch(
            tree, [filler, big, small], model="svc", rng=np.random.default_rng(0)
        )
        records = {rec.job_id: rec for rec in result.records}
        # The small job cannot start before the big one did.
        assert records[2].start_time >= records[0].start_time


class TestOnlineEdges:
    def test_no_drain_stops_at_horizon(self, tree):
        specs = [tiny_spec(0, submit=0.0, compute=500, volume=1e6, rate=10.0)]
        result = run_online(
            tree, specs, model="svc", drain=False, rng=np.random.default_rng(0)
        )
        # Job admitted but not completed: record absent of completion.
        assert result.num_rejected == 0
        assert not result.records[0].completed

    def test_idle_gap_fast_forward(self, tree):
        # Two arrivals 10,000 s apart: the driver must not crawl through the
        # idle gap second by second (max_time would trip if it did).
        specs = [
            tiny_spec(0, submit=0.0, compute=5, volume=10.0),
            tiny_spec(1, submit=10_000.0, compute=5, volume=10.0),
        ]
        result = run_online(
            tree, specs, model="svc", max_time=11_000, rng=np.random.default_rng(0)
        )
        assert all(rec.completed for rec in result.records)

    def test_simultaneous_arrivals(self, tree):
        specs = [tiny_spec(i, submit=3.0) for i in range(4)]
        result = run_online(tree, specs, model="svc", rng=np.random.default_rng(0))
        assert result.num_arrivals == 4
        assert all(rec.start_time == 3 for rec in result.records)

    def test_all_rejected_workload(self, tree):
        specs = [tiny_spec(i, n_vms=tree.total_slots + 1) for i in range(3)]
        result = run_online(tree, specs, model="svc", rng=np.random.default_rng(0))
        assert result.rejection_rate == 1.0
        assert all(rec.rejected for rec in result.records)
