"""Metric records and summary statistics."""

import math

import numpy as np
import pytest

from repro.simulation.metrics import (
    JobRecord,
    cdf_at,
    empirical_cdf,
    summarize_runtimes,
)


def record(job_id=1, submit=0.0, start=10, completion=110, compute=50):
    return JobRecord(
        job_id=job_id,
        n_vms=4,
        submit_time=submit,
        start_time=start,
        completion_time=completion,
        compute_time=compute,
    )


class TestJobRecord:
    def test_completed_record(self):
        rec = record()
        assert not rec.rejected
        assert rec.completed
        assert rec.waiting_time == 10.0
        assert rec.running_time == 100.0

    def test_rejected_record(self):
        rec = JobRecord(1, 4, 5.0, None, None, 50)
        assert rec.rejected
        assert not rec.completed
        assert rec.waiting_time is None
        assert rec.running_time is None

    def test_running_record(self):
        rec = JobRecord(1, 4, 5.0, 7, None, 50)
        assert not rec.rejected
        assert not rec.completed
        assert rec.waiting_time == 2.0
        assert rec.running_time is None


class TestSummaries:
    def test_summarize_runtimes(self):
        records = [record(start=0, completion=100), record(start=50, completion=250)]
        runtime, wait = summarize_runtimes(records)
        assert runtime == pytest.approx(150.0)
        assert wait == pytest.approx(25.0)

    def test_summarize_skips_incomplete(self):
        records = [record(), JobRecord(2, 4, 0.0, None, None, 50)]
        runtime, _ = summarize_runtimes(records)
        assert runtime == pytest.approx(100.0)

    def test_summarize_empty_is_nan(self):
        runtime, wait = summarize_runtimes([])
        assert math.isnan(runtime) and math.isnan(wait)


class TestCdf:
    def test_empirical_cdf_shape(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empirical_cdf_empty(self):
        xs, ps = empirical_cdf([])
        assert len(xs) == 0 and len(ps) == 0

    def test_cdf_at(self):
        values = [0.1, 0.5, 0.9, 0.95]
        assert cdf_at(values, 0.5) == pytest.approx(0.5)
        assert cdf_at(values, 1.0) == 1.0
        assert cdf_at(values, 0.0) == 0.0

    def test_cdf_at_empty_is_nan(self):
        assert math.isnan(cdf_at([], 0.5))

    def test_cdf_monotone(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 1, 100)
        points = [cdf_at(values, t) for t in np.linspace(0, 1, 11)]
        assert all(a <= b for a, b in zip(points, points[1:]))
