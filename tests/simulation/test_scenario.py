"""Batch and online scenario drivers."""

import numpy as np
import pytest

from repro.allocation import AdaptedTIVCAllocator
from repro.simulation.jobs import JobSpec
from repro.simulation.scenario import (
    allocator_for_model,
    run_batch,
    run_online,
)
from repro.simulation.workload import (
    WorkloadConfig,
    assign_poisson_arrivals,
    generate_jobs,
)
from repro.topology import TINY_SPEC, build_datacenter


@pytest.fixture(scope="module")
def tree():
    return build_datacenter(TINY_SPEC)


@pytest.fixture(scope="module")
def batch_specs():
    config = WorkloadConfig(num_jobs=10, mean_job_size=5.0, max_job_size=16)
    return generate_jobs(config, np.random.default_rng(11))


@pytest.fixture(scope="module")
def online_specs(tree):
    config = WorkloadConfig(num_jobs=15, mean_job_size=5.0, max_job_size=16)
    specs = generate_jobs(config, np.random.default_rng(12))
    return assign_poisson_arrivals(
        specs, 0.5, tree.total_slots, 5.0, 350.0, np.random.default_rng(13)
    )


class TestAllocatorForModel:
    def test_vc_models_use_oktopus(self):
        assert allocator_for_model("mean-vc").name == "oktopus"
        assert allocator_for_model("percentile-vc").name == "oktopus"

    def test_svc_uses_dispatch(self):
        assert allocator_for_model("svc").name == "dispatch"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            allocator_for_model("bogus")


class TestRunBatch:
    @pytest.mark.parametrize("model", ["mean-vc", "percentile-vc", "svc"])
    def test_all_jobs_complete(self, tree, batch_specs, model):
        result = run_batch(tree, batch_specs, model=model, rng=np.random.default_rng(1))
        assert len(result.records) + len(result.unschedulable) == len(batch_specs)
        assert all(rec.completed for rec in result.records)
        assert result.makespan > 0

    def test_makespan_is_last_completion(self, tree, batch_specs):
        result = run_batch(tree, batch_specs, model="svc", rng=np.random.default_rng(1))
        assert result.makespan == max(rec.completion_time for rec in result.records)

    def test_running_time_at_least_compute(self, tree, batch_specs):
        result = run_batch(tree, batch_specs, model="svc", rng=np.random.default_rng(1))
        for rec in result.records:
            assert rec.running_time >= rec.compute_time

    def test_fifo_start_order(self, tree, batch_specs):
        # Strict FIFO: start times are non-decreasing in job order.
        result = run_batch(tree, batch_specs, model="svc", rng=np.random.default_rng(1))
        records = sorted(result.records, key=lambda rec: rec.job_id)
        starts = [rec.start_time for rec in records]
        assert starts == sorted(starts)

    def test_custom_allocator_accepted(self, tree, batch_specs):
        result = run_batch(
            tree,
            batch_specs,
            model="svc",
            allocator=AdaptedTIVCAllocator(),
            rng=np.random.default_rng(1),
        )
        assert all(rec.completed for rec in result.records)

    def test_unschedulable_job_skipped(self, tree):
        impossible = JobSpec(
            job_id=0, n_vms=tree.total_slots + 1, compute_time=200,
            mean_rate=100.0, std_rate=0.0, flow_volume=100.0,
        )
        fits = JobSpec(
            job_id=1, n_vms=2, compute_time=200,
            mean_rate=100.0, std_rate=0.0, flow_volume=100.0,
        )
        result = run_batch(tree, [impossible, fits], model="svc", rng=np.random.default_rng(1))
        assert result.unschedulable == [0]
        assert len(result.records) == 1

    def test_deterministic_given_seeds(self, tree, batch_specs):
        a = run_batch(tree, batch_specs, model="svc", rng=np.random.default_rng(9))
        b = run_batch(tree, batch_specs, model="svc", rng=np.random.default_rng(9))
        assert a.makespan == b.makespan
        assert [rec.completion_time for rec in a.records] == [
            rec.completion_time for rec in b.records
        ]


class TestRunOnline:
    def test_arrivals_accounted(self, tree, online_specs):
        result = run_online(tree, online_specs, model="svc", rng=np.random.default_rng(2))
        assert result.num_arrivals == len(online_specs)
        assert len(result.records) == len(online_specs)
        assert 0.0 <= result.rejection_rate <= 1.0

    def test_samples_per_arrival(self, tree, online_specs):
        result = run_online(tree, online_specs, model="svc", rng=np.random.default_rng(2))
        assert len(result.concurrency_samples) == len(online_specs)
        assert len(result.occupancy_samples) == len(online_specs)

    def test_occupancy_samples_below_one(self, tree, online_specs):
        result = run_online(tree, online_specs, model="svc", rng=np.random.default_rng(2))
        assert all(0.0 <= occ < 1.0 for _t, occ in result.occupancy_samples)

    def test_drain_completes_admitted(self, tree, online_specs):
        result = run_online(
            tree, online_specs, model="svc", drain=True, rng=np.random.default_rng(2)
        )
        for rec in result.records:
            assert rec.rejected or rec.completed

    def test_rejected_records_have_no_start(self, tree, online_specs):
        result = run_online(tree, online_specs, model="percentile-vc", rng=np.random.default_rng(2))
        for rec in result.records:
            if rec.rejected:
                assert rec.start_time is None and rec.completion_time is None

    def test_start_not_before_submit(self, tree, online_specs):
        result = run_online(tree, online_specs, model="svc", rng=np.random.default_rng(2))
        for rec in result.records:
            if rec.start_time is not None:
                assert rec.start_time >= rec.submit_time

    def test_mean_vc_rejects_no_more_than_percentile(self, tree, online_specs):
        mean_res = run_online(tree, online_specs, model="mean-vc", rng=np.random.default_rng(2))
        pctl_res = run_online(
            tree, online_specs, model="percentile-vc", rng=np.random.default_rng(2)
        )
        assert mean_res.num_rejected <= pctl_res.num_rejected
