"""No test may bind a hardcoded TCP port.

Every test that opens a listening socket must ask the OS for an ephemeral
port (``--port 0`` / ``port=0``) and read the bound port back; hardcoded
ports collide when the suite runs in parallel workers or shares a CI host.
This scan enforces the convention for the whole ``tests/`` tree, so a
future test cannot quietly reintroduce a fixed port.
"""

import re
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent

#: Port-valued literals at bind sites.  Comparisons against parser
#: defaults (``args.port == 7421``) are fine — they never open a socket.
BIND_PATTERNS = (
    re.compile(r'"--port",\s*"(\d+)"'),  # argv lists
    re.compile(r"--port\s+(\d+)"),       # command strings
    re.compile(r"\bport=(\d+)"),         # keyword arguments
)


def test_tests_never_hardcode_a_port():
    offenders = []
    for path in sorted(TESTS_DIR.rglob("*.py")):
        if path == Path(__file__).resolve():
            continue
        text = path.read_text()
        for line_number, line in enumerate(text.splitlines(), start=1):
            for pattern in BIND_PATTERNS:
                for match in pattern.finditer(line):
                    if match.group(1) != "0":
                        offenders.append(
                            f"{path.relative_to(TESTS_DIR)}:{line_number}: "
                            f"{line.strip()}"
                        )
    assert not offenders, (
        "hardcoded ports in tests (use port 0 and read the bound port "
        "back):\n" + "\n".join(offenders)
    )
