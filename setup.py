"""Setup shim.

The offline environment lacks the ``wheel`` package that PEP 517 editable
installs require, so ``pip install -e .`` falls back to this legacy path
(``--no-use-pep517`` works too).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
