"""repro — reproduction of *Bandwidth Guarantee under Demand Uncertainty in
Multi-tenant Clouds* (Lei Yu and Haiying Shen, ICDCS 2014).

The package implements the paper end to end:

- the **SVC abstraction** (stochastic virtual clusters) and its deterministic
  special case (:mod:`repro.abstractions`);
- the **probabilistic bandwidth guarantee** machinery — min-of-normals link
  demands, CLT admission, effective bandwidth, occupancy ratios
  (:mod:`repro.stochastic`, :mod:`repro.network`);
- the **VM allocation algorithms** of Sections IV-V plus the Oktopus/TIVC and
  first-fit baselines (:mod:`repro.allocation`);
- the **network sharing framework** — network manager and rate limiting
  (:mod:`repro.manager`);
- a **flow-level datacenter simulator** and the two evaluation scenarios
  (:mod:`repro.simulation`);
- an **experiment harness** regenerating every figure of Section VI
  (:mod:`repro.experiments`, CLI: ``svc-repro``).

Quickstart::

    from repro import (
        HomogeneousSVC, NetworkManager, build_datacenter, SMALL_SPEC,
    )

    tree = build_datacenter(SMALL_SPEC)
    manager = NetworkManager(tree, epsilon=0.05)
    tenancy = manager.request(HomogeneousSVC(n_vms=20, mean=300.0, std=150.0))
    print(tenancy.allocation.machine_counts, manager.max_occupancy())
    manager.release(tenancy)
"""

from repro.abstractions import (
    DeterministicVC,
    HeterogeneousSVC,
    HomogeneousSVC,
    VirtualClusterRequest,
)
from repro.allocation import (
    AdaptedTIVCAllocator,
    Allocation,
    Allocator,
    FirstFitAllocator,
    GlobalMinMaxAllocator,
    OktopusAllocator,
    SVCHeterogeneousAllocator,
    SVCHeterogeneousExactAllocator,
    SVCHomogeneousAllocator,
)
from repro.manager import NetworkManager, Tenancy
from repro.network import LinkState, NetworkState
from repro.stochastic import Normal
from repro.topology import (
    DatacenterSpec,
    PAPER_SPEC,
    SMALL_SPEC,
    TINY_SPEC,
    Tree,
    build_datacenter,
    build_two_machine_example,
)

__version__ = "1.0.0"

__all__ = [
    "DeterministicVC",
    "HeterogeneousSVC",
    "HomogeneousSVC",
    "VirtualClusterRequest",
    "AdaptedTIVCAllocator",
    "Allocation",
    "Allocator",
    "FirstFitAllocator",
    "GlobalMinMaxAllocator",
    "OktopusAllocator",
    "SVCHeterogeneousAllocator",
    "SVCHeterogeneousExactAllocator",
    "SVCHomogeneousAllocator",
    "NetworkManager",
    "Tenancy",
    "LinkState",
    "NetworkState",
    "Normal",
    "DatacenterSpec",
    "PAPER_SPEC",
    "SMALL_SPEC",
    "TINY_SPEC",
    "Tree",
    "build_datacenter",
    "build_two_machine_example",
    "__version__",
]
