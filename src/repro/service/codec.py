"""JSON codecs for the admission service.

Everything the service persists (journal records, snapshots) or ships over
the wire (requests, stats) is plain JSON built from these converters.  Two
properties matter:

* **Round-trip fidelity** — ``x_from_dict(x_to_dict(v))`` reconstructs an
  equal value, so journal replay re-commits the exact allocation the live
  manager committed (field-for-field identical link state after recovery).
* **Canonical keys** — JSON objects key by string; integer ids are converted
  on the way out and back, and :func:`network_state_to_dict` emits a stable
  canonical form usable both as a snapshot payload and as a state
  fingerprint for equality checks in tests.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

from repro.abstractions.requests import (
    DeterministicVC,
    HeterogeneousSVC,
    HomogeneousSVC,
    VirtualClusterRequest,
)
from repro.allocation.base import Allocation
from repro.network.link_state import NetworkState
from repro.stochastic.normal import Normal


class CodecError(ValueError):
    """A payload could not be decoded (unknown kind, missing field, ...)."""


# ----------------------------------------------------------------------
# Normal
# ----------------------------------------------------------------------


def normal_to_dict(demand: Normal) -> Dict[str, float]:
    return {"mean": demand.mean, "std": demand.std}


def normal_from_dict(payload: Dict[str, Any]) -> Normal:
    try:
        return Normal(float(payload["mean"]), float(payload["std"]))
    except (KeyError, TypeError) as exc:
        raise CodecError(f"malformed normal payload: {payload!r}") from exc


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------

_KIND_DETERMINISTIC = "deterministic"
_KIND_HOMOGENEOUS = "homogeneous"
_KIND_HETEROGENEOUS = "heterogeneous"


def request_to_dict(request: VirtualClusterRequest) -> Dict[str, Any]:
    """Serialize any of the three request abstractions."""
    if isinstance(request, DeterministicVC):
        return {
            "kind": _KIND_DETERMINISTIC,
            "n_vms": request.n_vms,
            "bandwidth": request.bandwidth,
        }
    if isinstance(request, HomogeneousSVC):
        return {
            "kind": _KIND_HOMOGENEOUS,
            "n_vms": request.n_vms,
            "mean": request.mean,
            "std": request.std,
        }
    if isinstance(request, HeterogeneousSVC):
        return {
            "kind": _KIND_HETEROGENEOUS,
            "n_vms": request.n_vms,
            "demands": [normal_to_dict(d) for d in request.demands],
        }
    raise CodecError(f"unsupported request type {type(request).__name__}")


def request_shape_key(request: VirtualClusterRequest) -> Tuple[Any, ...]:
    """Coalescing key for the admission batcher.

    Two requests with equal shape keys take the same allocator path with the
    same per-request DP inputs (type, VM count, demand moments), so their
    vertex tables are interchangeable and one shared batch context may serve
    both.  Requests whose keys differ must never share a context.
    """
    if isinstance(request, DeterministicVC):
        return (_KIND_DETERMINISTIC, request.n_vms, request.bandwidth)
    if isinstance(request, HomogeneousSVC):
        return (_KIND_HOMOGENEOUS, request.n_vms, request.mean, request.std)
    if isinstance(request, HeterogeneousSVC):
        return (
            _KIND_HETEROGENEOUS,
            request.n_vms,
            tuple((d.mean, d.std) for d in request.demands),
        )
    raise CodecError(f"unsupported request type {type(request).__name__}")


def request_from_dict(payload: Dict[str, Any]) -> VirtualClusterRequest:
    """Decode a request payload, validating through the dataclass checks."""
    if not isinstance(payload, dict):
        raise CodecError(f"request payload must be an object, got {type(payload).__name__}")
    kind = payload.get("kind")
    try:
        if kind == _KIND_DETERMINISTIC:
            return DeterministicVC(
                n_vms=int(payload["n_vms"]), bandwidth=float(payload["bandwidth"])
            )
        if kind == _KIND_HOMOGENEOUS:
            return HomogeneousSVC(
                n_vms=int(payload["n_vms"]),
                mean=float(payload["mean"]),
                std=float(payload["std"]),
            )
        if kind == _KIND_HETEROGENEOUS:
            return HeterogeneousSVC(
                n_vms=int(payload["n_vms"]),
                demands=tuple(normal_from_dict(d) for d in payload["demands"]),
            )
    except CodecError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed {kind!r} request payload: {exc}") from exc
    raise CodecError(f"unknown request kind {kind!r}")


# ----------------------------------------------------------------------
# Allocations
# ----------------------------------------------------------------------


def allocation_to_dict(allocation: Allocation) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "request": request_to_dict(allocation.request),
        "request_id": allocation.request_id,
        "host_node": allocation.host_node,
        "machine_counts": {
            str(machine): count
            for machine, count in sorted(allocation.machine_counts.items())
        },
        "link_demands": {
            str(link): normal_to_dict(demand)
            for link, demand in sorted(allocation.link_demands.items())
        },
        "max_occupancy": (
            None if math.isnan(allocation.max_occupancy) else allocation.max_occupancy
        ),
    }
    if allocation.machine_vms is not None:
        payload["machine_vms"] = {
            str(machine): list(vms)
            for machine, vms in sorted(allocation.machine_vms.items())
        }
    return payload


def allocation_from_dict(payload: Dict[str, Any]) -> Allocation:
    try:
        machine_vms: Optional[Dict[int, tuple]] = None
        if "machine_vms" in payload:
            machine_vms = {
                int(machine): tuple(int(vm) for vm in vms)
                for machine, vms in payload["machine_vms"].items()
            }
        max_occupancy = payload.get("max_occupancy")
        return Allocation(
            request=request_from_dict(payload["request"]),
            request_id=int(payload["request_id"]),
            host_node=int(payload["host_node"]),
            machine_counts={
                int(machine): int(count)
                for machine, count in payload["machine_counts"].items()
            },
            link_demands={
                int(link): normal_from_dict(demand)
                for link, demand in payload["link_demands"].items()
            },
            machine_vms=machine_vms,
            max_occupancy=float("nan") if max_occupancy is None else float(max_occupancy),
        )
    except CodecError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed allocation payload: {exc}") from exc


# ----------------------------------------------------------------------
# Network state fingerprint
# ----------------------------------------------------------------------


def network_state_to_dict(state: NetworkState) -> Dict[str, Any]:
    """Canonical, JSON-ready description of the full reservation state.

    Contains every field the admission machinery reads — per-machine free
    slots and, per link, each resident request's deterministic reservation
    and stochastic demand moments.  Two states with equal dicts are
    indistinguishable to every allocator and occupancy query, which is the
    "field-for-field" equality the recovery tests assert.
    """
    links: Dict[str, Any] = {}
    for link_id in sorted(state.links):
        link_state = state.links[link_id]
        entry: Dict[str, Any] = {}
        deterministic = {
            str(rid): amount for rid, amount in sorted(link_state.deterministic_entries())
        }
        stochastic = {
            str(rid): normal_to_dict(demand)
            for rid, demand in sorted(link_state.stochastic_entries())
        }
        if deterministic:
            entry["deterministic"] = deterministic
        if stochastic:
            entry["stochastic"] = stochastic
        if entry:
            links[str(link_id)] = entry
    return {
        "epsilon": state.epsilon,
        "free_slots": {
            str(machine): state.free_slots(machine)
            for machine in sorted(state.tree.machine_ids)
        },
        "links": links,
    }
