"""Online admission-control service layer.

Turns the in-memory :class:`~repro.manager.network_manager.NetworkManager`
into a runnable daemon: a thread-safe front-end with a worker pool
(:mod:`.concurrency`), the paper's online/batch request queue with
priorities and deadlines (:mod:`.queue`), an append-only write-ahead
journal with periodic snapshots and crash recovery (:mod:`.journal`,
:mod:`.recovery`), a stdlib TCP line-JSON server (:mod:`.server`) and a
matching retrying client (:mod:`.client`).  Fault behaviour — typed
errors (:mod:`.errors`), the degradation ladder (:mod:`.degrade`) and the
failpoints of :mod:`repro.faults` — is documented in DESIGN.md §7 and
docs/operations.md.  ``svc-repro serve`` is the CLI entry.
"""

from repro.service.client import RetryPolicy, ServiceClient
from repro.service.codec import (
    CodecError,
    allocation_from_dict,
    allocation_to_dict,
    network_state_to_dict,
    request_from_dict,
    request_to_dict,
)
from repro.service.concurrency import (
    OUTCOME_ADMITTED,
    OUTCOME_ERROR,
    OUTCOME_EXPIRED,
    OUTCOME_QUEUED,
    OUTCOME_REJECTED,
    AdmissionService,
    Ticket,
)
from repro.service.degrade import (
    STATE_FAST_FAIL,
    STATE_FULL,
    STATE_READ_ONLY,
    DegradationLadder,
)
from repro.service.errors import (
    RETRYABLE_CODES,
    DeadlineExceededError,
    DegradedError,
    OverloadedError,
    RetryExhaustedError,
    ServiceError,
)
from repro.service.journal import DurabilityStore, Journal
from repro.service.queue import MODE_BATCH, MODE_ONLINE, QueuedRequest, RequestQueue
from repro.service.recovery import (
    RecoveryError,
    RecoveryReport,
    oracle_replay,
    recover_manager,
    snapshot_payload,
)
from repro.service.server import AdmissionTCPServer, serve_main

__all__ = [
    "AdmissionService",
    "AdmissionTCPServer",
    "CodecError",
    "DeadlineExceededError",
    "DegradationLadder",
    "DegradedError",
    "DurabilityStore",
    "Journal",
    "MODE_BATCH",
    "MODE_ONLINE",
    "OUTCOME_ADMITTED",
    "OUTCOME_ERROR",
    "OUTCOME_EXPIRED",
    "OUTCOME_QUEUED",
    "OUTCOME_REJECTED",
    "OverloadedError",
    "QueuedRequest",
    "RecoveryError",
    "RecoveryReport",
    "RequestQueue",
    "RETRYABLE_CODES",
    "RetryExhaustedError",
    "RetryPolicy",
    "STATE_FAST_FAIL",
    "STATE_FULL",
    "STATE_READ_ONLY",
    "ServiceClient",
    "ServiceError",
    "Ticket",
    "allocation_from_dict",
    "allocation_to_dict",
    "network_state_to_dict",
    "oracle_replay",
    "recover_manager",
    "request_from_dict",
    "request_to_dict",
    "serve_main",
    "snapshot_payload",
]
