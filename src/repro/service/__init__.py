"""Online admission-control service layer.

Turns the in-memory :class:`~repro.manager.network_manager.NetworkManager`
into a runnable daemon: a thread-safe front-end with a worker pool
(:mod:`.concurrency`), the paper's online/batch request queue with
priorities and deadlines (:mod:`.queue`), an append-only write-ahead
journal with periodic snapshots and crash recovery (:mod:`.journal`,
:mod:`.recovery`), a stdlib TCP line-JSON server (:mod:`.server`) and a
matching client (:mod:`.client`).  ``svc-repro serve`` is the CLI entry.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.codec import (
    CodecError,
    allocation_from_dict,
    allocation_to_dict,
    network_state_to_dict,
    request_from_dict,
    request_to_dict,
)
from repro.service.concurrency import (
    OUTCOME_ADMITTED,
    OUTCOME_EXPIRED,
    OUTCOME_QUEUED,
    OUTCOME_REJECTED,
    AdmissionService,
    Ticket,
)
from repro.service.journal import DurabilityStore, Journal
from repro.service.queue import MODE_BATCH, MODE_ONLINE, QueuedRequest, RequestQueue
from repro.service.recovery import (
    RecoveryError,
    RecoveryReport,
    oracle_replay,
    recover_manager,
    snapshot_payload,
)
from repro.service.server import AdmissionTCPServer, serve_main

__all__ = [
    "AdmissionService",
    "AdmissionTCPServer",
    "CodecError",
    "DurabilityStore",
    "Journal",
    "MODE_BATCH",
    "MODE_ONLINE",
    "OUTCOME_ADMITTED",
    "OUTCOME_EXPIRED",
    "OUTCOME_QUEUED",
    "OUTCOME_REJECTED",
    "QueuedRequest",
    "RecoveryError",
    "RecoveryReport",
    "RequestQueue",
    "ServiceClient",
    "ServiceError",
    "Ticket",
    "allocation_from_dict",
    "allocation_to_dict",
    "network_state_to_dict",
    "oracle_replay",
    "recover_manager",
    "request_from_dict",
    "request_to_dict",
    "serve_main",
    "snapshot_payload",
]
