"""The graceful-degradation ladder of the admission service.

Three rungs, strictly ordered::

    full       -> every op served
    read_only  -> journal appends are failing: mutating ops (submit,
                  release, snapshot) shed with ``code=read_only`` and a
                  ``retry_after`` hint; reads (status/stats/metrics) and
                  ping still served.  State stays consistent because a
                  mutation whose journal append fails is rolled back
                  before the client sees any acknowledgement.
    fast_fail  -> repeated journal probes failed: everything except ping
                  and shutdown sheds with ``code=unavailable``.  The
                  daemon stays up so operators keep an endpoint to poke.

Transitions are driven by the owning :class:`AdmissionService` (always
under its lock — the ladder itself is not thread-safe): every journal
append failure calls :meth:`record_failure`; a background *probe* (an
``op: "note"`` journal record, invisible to replay) runs while degraded
and calls :meth:`record_success` the moment the volume writes again,
restoring full service.  ``retry_after`` hints grow exponentially with
consecutive failures so retrying clients back off together with the
probe cadence.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

STATE_FULL = "full"
STATE_READ_ONLY = "read_only"
STATE_FAST_FAIL = "fast_fail"

#: Numeric encoding of the ladder for the degradation-state gauge.
STATE_CODES = {STATE_FULL: 0, STATE_READ_ONLY: 1, STATE_FAST_FAIL: 2}


class DegradationLadder:
    """Current degradation rung plus the probe/backoff bookkeeping.

    Parameters
    ----------
    fast_fail_after:
        Consecutive journal failures (including failed probes) before
        dropping from ``read_only`` to ``fast_fail``.
    probe_interval:
        Base seconds between journal probes while degraded; the actual
        gap backs off exponentially with consecutive failures, capped at
        ``max_retry_after``.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        fast_fail_after: int = 5,
        probe_interval: float = 1.0,
        max_retry_after: float = 30.0,
    ) -> None:
        if fast_fail_after < 1:
            raise ValueError(f"fast_fail_after must be >= 1, got {fast_fail_after}")
        self.clock = clock
        self.fast_fail_after = fast_fail_after
        self.probe_interval = probe_interval
        self.max_retry_after = max_retry_after
        self.state = STATE_FULL
        self.since = clock()
        self.consecutive_failures = 0
        self.transitions = 0
        self.last_error: Optional[str] = None
        self._next_probe_at = 0.0

    @property
    def code(self) -> int:
        return STATE_CODES[self.state]

    @property
    def degraded(self) -> bool:
        return self.state != STATE_FULL

    def retry_after(self) -> float:
        """The backoff hint shed responses should carry right now."""
        backoff = self.probe_interval * (2.0 ** max(0, self.consecutive_failures - 1))
        return min(self.max_retry_after, max(self.probe_interval, backoff))

    def record_failure(self, error: BaseException) -> str:
        """One journal append (or probe) failed; returns the new state."""
        self.consecutive_failures += 1
        self.last_error = f"{type(error).__name__}: {error}"
        new_state = (
            STATE_FAST_FAIL
            if self.consecutive_failures >= self.fast_fail_after
            else STATE_READ_ONLY
        )
        self._transition(new_state)
        self._next_probe_at = self.clock() + self.retry_after()
        return self.state

    def record_success(self) -> str:
        """One journal append (or probe) succeeded; returns the new state."""
        self.consecutive_failures = 0
        self.last_error = None
        self._transition(STATE_FULL)
        return self.state

    def should_probe(self, now: Optional[float] = None) -> bool:
        """Is it time for the owning service to probe the journal?"""
        if not self.degraded:
            return False
        return (self.clock() if now is None else now) >= self._next_probe_at

    def _transition(self, new_state: str) -> None:
        if new_state == self.state:
            return
        self.state = new_state
        self.since = self.clock()
        self.transitions += 1

    def describe(self) -> Dict[str, Any]:
        """The ``degradation`` block of the service ``stats()`` payload."""
        payload: Dict[str, Any] = {
            "state": self.state,
            "since_s": max(0.0, self.clock() - self.since),
            "consecutive_failures": self.consecutive_failures,
            "transitions": self.transitions,
        }
        if self.degraded:
            payload["retry_after_s"] = self.retry_after()
        if self.last_error:
            payload["last_error"] = self.last_error
        return payload
