"""``svc-repro top`` — a live terminal view of a running admission daemon.

Polls the ``stats`` and ``metrics`` endpoints of one server and renders a
compact dashboard: throughput counters, queue depth, admission latency,
per-level occupancy ``O_L`` and headroom, DP table-cache hit rates, phase
timings and the empirical-outage health of the Eq. (1) guarantee.

The polling loop survives transient connection loss: a dropped or refused
connection prints a ``reconnecting`` status line and retries on the next
refresh, up to ``--max-reconnects`` consecutive failures — so a daemon
restart does not kill the operator's dashboard.

``--cluster SNAPSHOT`` renders a *federated* cluster snapshot instead (the
JSON that ``svc-repro cluster --metrics-out`` writes): per-shard Eq. (6)
occupancy, outage monitors, the coordinator's core-link ledger and each
shard's degradation state in one frame.

Rendering is a pure function of the payloads (:func:`render_top`,
:func:`render_cluster_top`), so tests exercise it without a terminal;
:func:`top_main` adds the polling loop and ANSI screen handling.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.logconfig import LOG_LEVELS, setup_logging
from repro.service.client import ServiceClient
from repro.service.server import DEFAULT_HOST, DEFAULT_PORT

_CLEAR = "\x1b[2J\x1b[H"


def _series(metrics: Dict[str, Any], family: str) -> List[Dict[str, Any]]:
    return metrics.get(family, {}).get("series", [])


def _value(metrics: Dict[str, Any], family: str, **labels: str) -> Optional[Any]:
    wanted = {str(k): str(v) for k, v in labels.items()}
    for entry in _series(metrics, family):
        if entry.get("labels", {}) == wanted:
            return entry.get("value")
    return None


def _fmt_rate(hits: float, lookups: float) -> str:
    if not lookups:
        return "    –"
    return f"{100.0 * hits / lookups:4.1f}%"


def _fmt_ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "     –"
    return f"{1000.0 * seconds:6.2f}"


def render_top(stats: Dict[str, Any], metrics: Dict[str, Any]) -> str:
    """One dashboard frame from a ``stats`` and a ``metrics`` JSON payload."""
    lines: List[str] = []
    counters = stats.get("counters", {})
    queue = stats.get("queue", {})
    latency = stats.get("admission_latency", {})
    slots = stats.get("slots", {})
    degradation = stats.get("degradation", {})
    state = degradation.get("state", "full")
    state_note = ""
    if state != "full":
        state_note = (
            f"  failures={degradation.get('consecutive_failures', 0)}"
            f"  retry_after={degradation.get('retry_after_s', 0.0):.1f}s"
        )
    lines.append(
        f"svc-repro top — mode={stats.get('mode')} workers={stats.get('workers')} "
        f"uptime={stats.get('uptime_s', 0.0):.0f}s"
    )
    lines.append(
        f"degradation {state.upper()}"
        f" (transitions={degradation.get('transitions', 0)})" + state_note
    )
    lines.append(
        f"tenants {stats.get('active_tenancies', 0):>5}   "
        f"slots {slots.get('used', 0)}/{slots.get('total', 0)} used   "
        f"queue ready={queue.get('ready', 0)} parked={queue.get('parked', 0)}"
        + (f" limit={queue['limit']}" if queue.get("limit") else "")
    )
    lines.append(
        "requests "
        + "  ".join(
            f"{name}={counters.get(name, 0)}"
            for name in (
                "submitted", "admitted", "rejected", "expired", "released",
                "errors", "shed",
            )
        )
        + f"  rejection_rate={stats.get('rejection_rate', 0.0):.3f}"
    )
    lines.append(
        f"latency(ms) p50={latency.get('p50_ms', 0.0):.2f} "
        f"p90={latency.get('p90_ms', 0.0):.2f} p99={latency.get('p99_ms', 0.0):.2f} "
        f"mean={latency.get('mean_ms', 0.0):.2f} "
        f"(window {latency.get('window', 0)}/{latency.get('window_limit', 0)})"
    )

    lines.append("")
    lines.append("level         links  mean-occ   max-occ  headroom(avg/min Mbps)")
    for row in stats.get("occupancy", {}).get("by_level", []):
        label = str(row.get("label", row.get("level")))
        mean_headroom = _value(
            metrics, "repro_network_headroom_mbps", level=label, stat="mean"
        )
        min_headroom = _value(
            metrics, "repro_network_headroom_mbps", level=label, stat="min"
        )
        headroom = (
            f"{mean_headroom:9.1f} /{min_headroom:9.1f}"
            if mean_headroom is not None and min_headroom is not None
            else "        – /        –"
        )
        lines.append(
            f"{label:12s}  {row.get('links', 0):5d}  {row.get('mean_occupancy', 0.0):8.3f}  "
            f"{row.get('max_occupancy', 0.0):8.3f}  {headroom}"
        )

    cache_lines = []
    for cache in ("machine", "vertex"):
        lookups = _value(metrics, "repro_admission_cache_lookups_total", cache=cache)
        hits = _value(metrics, "repro_admission_cache_hits_total", cache=cache)
        if lookups is not None:
            cache_lines.append(
                f"{cache}={_fmt_rate(float(hits or 0.0), float(lookups))}"
            )
    if cache_lines:
        lines.append("")
        lines.append("DP table-cache hit rate  " + "  ".join(cache_lines))

    phase_rows = []
    for entry in _series(metrics, "repro_admission_phase_seconds"):
        value = entry.get("value") or {}
        if value.get("count"):
            phase_rows.append(
                f"  {entry['labels'].get('phase', '?'):16s} "
                f"n={value['count']:<6d} mean={_fmt_ms(value.get('mean'))}ms "
                f"p90={_fmt_ms(value.get('p90'))}ms"
            )
    if phase_rows:
        lines.append("admission phases (sampled traces)")
        lines.extend(phase_rows)

    outage = _value(metrics, "repro_outage_empirical_rate")
    epsilon = _value(metrics, "repro_outage_epsilon")
    if outage is not None:
        verdict = ""
        if epsilon:
            verdict = "  OK" if outage <= epsilon else "  VIOLATED"
        lines.append("")
        lines.append(
            f"empirical outage rate {outage:.5f} vs epsilon "
            f"{epsilon if epsilon is not None else '–'}{verdict}"
        )
    return "\n".join(lines)


_DEGRADATION_NAMES = {0: "full", 1: "read_only", 2: "fast_fail"}


def render_cluster_top(payload: Dict[str, Any]) -> str:
    """One frame from a federated cluster snapshot (``cluster_metrics()``).

    ``payload`` carries the merged registry (series labelled per shard),
    the coordinator's ``stats()`` and the per-shard summaries — everything
    needed for the per-shard Eq. (6) occupancy / outage / degradation rows.
    """
    metrics = payload.get("metrics", {})
    meta = payload.get("meta", {})
    stats = payload.get("stats", {})
    shard_stats = payload.get("shard_stats", [])
    lines: List[str] = []
    lines.append(
        f"svc-repro top — cluster: {stats.get('shards', len(shard_stats))} shard(s), "
        f"{meta.get('families', 0)} metric families federated"
    )
    lines.append(
        f"admitted {stats.get('admitted_total', 0)}  "
        f"rejected {stats.get('rejected_total', 0)}  "
        f"active {stats.get('active_tenancies', 0)}  "
        f"pending reservations {stats.get('pending_reservations', 0)}"
    )
    core = stats.get("core_occupancy", {}) or {}
    if core:
        lines.append(
            f"core-link ledger: {len(core)} link(s), max occupancy "
            f"{max(core.values()):.3f}, replica max "
            f"{stats.get('replica_max_occupancy', 0.0):.3f}"
        )
    lines.append("")
    lines.append(
        "shard  free/total slots  queue  tenants  occ(Eq.6)  degradation   outage"
    )
    for row in shard_stats:
        shard = str(row.get("shard"))
        state_value = _value(
            metrics, "repro_service_degradation_state", shard=shard
        )
        state = (
            _DEGRADATION_NAMES.get(int(state_value), "?")
            if state_value is not None
            else "–"
        )
        outage = _value(metrics, "repro_outage_empirical_rate", shard=shard)
        outage_text = f"{outage:.5f}" if outage is not None else "      –"
        crashed = "  CRASHED" if row.get("crashed") else ""
        lines.append(
            f"{shard:>5}  {row.get('free_slots', 0):>7}/{row.get('total_slots', 0):<6}  "
            f"{row.get('queue_depth', 0):>5}  {row.get('active_tenancies', 0):>7}  "
            f"{row.get('max_occupancy', 0.0):>9.3f}  {state:>11}  {outage_text:>7}"
            f"{crashed}"
        )
    scrapes_ok = _value(
        metrics, "repro_cluster_federation_scrapes_total",
        outcome="ok", shard="coordinator",
    )
    scrapes_err = _value(
        metrics, "repro_cluster_federation_scrapes_total",
        outcome="error", shard="coordinator",
    )
    span_rows = []
    for origin in ("coordinator", "shard"):
        spans = _value(
            metrics, "repro_cluster_trace_spans_total",
            origin=origin, shard="coordinator",
        )
        if spans:
            span_rows.append(f"{origin}={spans:.0f}")
    lines.append("")
    lines.append(
        f"federation scrapes ok={scrapes_ok or 0:.0f} error={scrapes_err or 0:.0f}"
        + (f"   trace spans {' '.join(span_rows)}" if span_rows else "")
    )
    return "\n".join(lines)


def build_top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="svc-repro top",
        description="Continuously display metrics of a running admission daemon.",
    )
    parser.add_argument("--host", default=DEFAULT_HOST, help="server address")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT, help="server port")
    parser.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop after this many frames (0 = run until interrupted)",
    )
    parser.add_argument(
        "--once", action="store_true", help="render a single frame and exit"
    )
    parser.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of redrawing the screen",
    )
    parser.add_argument(
        "--max-reconnects",
        type=int,
        default=3,
        metavar="N",
        help="give up after this many consecutive connection failures "
        "(default: 3)",
    )
    parser.add_argument(
        "--cluster",
        metavar="SNAPSHOT",
        default=None,
        help="render a federated cluster snapshot JSON file (from "
        "'svc-repro cluster --metrics-out') instead of polling a daemon",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default="warning",
        help="stderr log verbosity (default: warning)",
    )
    return parser


def _cluster_top(args: argparse.Namespace) -> int:
    """``--cluster``: render frames from a federated snapshot file."""
    iterations = 1 if args.once else args.iterations
    rendered = 0
    path = Path(args.cluster)
    while True:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            sys.stderr.write(f"svc-repro top: cannot read {path} ({exc})\n")
            return 1
        if not args.no_clear and not args.once:
            sys.stdout.write(_CLEAR)
        sys.stdout.write(render_cluster_top(payload) + "\n")
        sys.stdout.flush()
        rendered += 1
        if iterations and rendered >= iterations:
            return 0
        time.sleep(args.interval)


def top_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``svc-repro top``."""
    args = build_top_parser().parse_args(argv)
    setup_logging(args.log_level)
    try:
        if args.cluster is not None:
            return _cluster_top(args)
        iterations = 1 if args.once else args.iterations
        rendered = 0
        failures = 0
        client: Optional[ServiceClient] = None
        try:
            while True:
                try:
                    if client is None:
                        client = ServiceClient(host=args.host, port=args.port)
                    stats = client.stats()
                    metrics = client.metrics()["metrics"]
                    failures = 0
                except (ConnectionError, OSError) as exc:
                    # One dead refresh must not kill the dashboard: the
                    # daemon may be mid-restart.  Drop the broken client,
                    # report, and retry on the next tick — bounded so a
                    # permanently-gone server still fails the command.
                    if client is not None:
                        client.close()
                        client = None
                    failures += 1
                    if failures > max(0, args.max_reconnects):
                        sys.stderr.write(
                            f"svc-repro top: cannot reach "
                            f"{args.host}:{args.port} ({exc})\n"
                        )
                        return 1
                    sys.stdout.write(
                        f"svc-repro top: connection lost ({exc}); reconnecting "
                        f"[{failures}/{args.max_reconnects}]\n"
                    )
                    sys.stdout.flush()
                    time.sleep(args.interval)
                    continue
                frame = render_top(stats, metrics)
                if not args.no_clear and not args.once:
                    sys.stdout.write(_CLEAR)
                sys.stdout.write(frame + "\n")
                sys.stdout.flush()
                rendered += 1
                if iterations and rendered >= iterations:
                    return 0
                time.sleep(args.interval)
        finally:
            if client is not None:
                client.close()
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(top_main())
