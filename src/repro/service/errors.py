"""Typed service errors shared by the server and the client.

Every load-shedding or degradation response carries a machine-readable
``code`` (and usually a ``retry_after`` hint in seconds) next to the human
``error`` string.  On the server side the :class:`AdmissionService` raises
these directly and the TCP handler renders them as
``{"ok": false, "code": ..., "retry_after": ...}``; on the client side
:func:`error_from_response` maps the code back to the matching class, so
callers can catch :class:`OverloadedError` instead of string-matching.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: The queue is at its configured bound (or shedding was injected).
CODE_OVERLOADED = "overloaded"
#: Journal volume failing: mutations shed, reads still served.
CODE_READ_ONLY = "read_only"
#: Repeated journal probes failed: everything but ping/shutdown sheds.
CODE_UNAVAILABLE = "unavailable"
#: A deadline (server-side request deadline or client retry budget) passed.
CODE_DEADLINE = "deadline_exceeded"
#: The client retry policy ran out of attempts.
CODE_RETRY_EXHAUSTED = "retry_exhausted"
#: An already-placed allocation no longer fits (lost an optimistic race).
CODE_CONFLICT = "conflict"
#: The submitting tenant is at its per-tenant queue quota.
CODE_OVER_QUOTA = "over_quota"


class ServiceError(RuntimeError):
    """The server answered ``ok: false`` (or refused to accept an op)."""

    code: Optional[str] = None

    def __init__(
        self,
        message: str,
        code: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        self.retry_after = retry_after


class OverloadedError(ServiceError):
    """Bounded-queue backpressure: retry after backing off."""

    code = CODE_OVERLOADED


class DegradedError(ServiceError):
    """The service shed this op because it is degraded (read-only or worse)."""

    code = CODE_READ_ONLY


class DeadlineExceededError(ServiceError):
    """The request's deadline (or the caller's retry budget) passed."""

    code = CODE_DEADLINE


class RetryExhaustedError(ServiceError):
    """A retrying client gave up after its configured attempt cap."""

    code = CODE_RETRY_EXHAUSTED


class OverQuotaError(ServiceError):
    """Per-tenant fairness backpressure: this tenant's queue slice is full.

    Unlike :class:`OverloadedError` (the whole service is saturated), an
    over-quota shed blames one tenant's own backlog — other tenants are
    still being admitted.  The ``retry_after`` hint scales with the
    tenant's queue depth; retrying sooner only re-triggers the shed.
    """

    code = CODE_OVER_QUOTA


class ConflictError(ServiceError):
    """An adopt lost its optimistic race: the placement no longer fits.

    Raised by ``AdmissionService.adopt`` when a concurrent shard-local
    admission consumed the slots or link headroom a cross-shard fragment
    was computed against.  The coordinator aborts the two-phase round and
    recomputes the placement.
    """

    code = CODE_CONFLICT


_CODE_TO_CLASS = {
    CODE_OVERLOADED: OverloadedError,
    CODE_READ_ONLY: DegradedError,
    CODE_UNAVAILABLE: DegradedError,
    CODE_DEADLINE: DeadlineExceededError,
    CODE_RETRY_EXHAUSTED: RetryExhaustedError,
    CODE_CONFLICT: ConflictError,
    CODE_OVER_QUOTA: OverQuotaError,
}

#: Response codes a retrying client treats as transient.  Over-quota sheds
#: are transient too — the tenant's slice drains as the batcher works — but
#: retries must honor the server's ``retry_after`` hint (see
#: ``ServiceClient.submit_with_retry``), not hammer with the base backoff.
RETRYABLE_CODES = frozenset(
    {CODE_OVERLOADED, CODE_READ_ONLY, CODE_UNAVAILABLE, CODE_OVER_QUOTA}
)


def error_from_response(op: str, response: Dict[str, Any]) -> ServiceError:
    """The typed exception for one ``ok: false`` protocol response."""
    message = response.get("error", f"{op} failed")
    code = response.get("code")
    retry_after = response.get("retry_after")
    cls = _CODE_TO_CLASS.get(code, ServiceError)
    error = cls(message, retry_after=retry_after)
    if code is not None:
        error.code = code
    return error
