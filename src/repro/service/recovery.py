"""Crash recovery: snapshot + journal replay -> reconstructed manager.

Recovery restores the longest consistent prefix of acknowledged operations:

1. load the newest decodable snapshot (a full list of active allocations
   plus admission counters) and re-commit every allocation through
   :meth:`NetworkManager.adopt`;
2. replay journal records with ``seq`` greater than the snapshot's —
   ``admit`` re-commits the journaled allocation verbatim, ``release``
   tears the tenancy down, ``reject`` only restores counters and the id
   cursor, and ``resize`` swaps the journaled post-resize allocation in
   for the tenant's old one (rejected resizes restore tallies only).

Because both paths re-apply the *exact* allocation the live manager
committed (not a re-run of the allocator), the reconstructed
:class:`NetworkState` is field-for-field identical to the pre-crash state
covered by the journal.  :func:`oracle_replay` is the single-threaded
referee used by tests: a from-scratch replay of the *entire* journal using
only ``NetworkState.commit``/``release``, against which both the live
service and the snapshot-accelerated recovery must agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.allocation.base import Allocation, Allocator
from repro.manager.network_manager import NetworkManager
from repro.network.link_state import NetworkState
from repro.service.codec import allocation_from_dict, allocation_to_dict
from repro.service.journal import (
    OP_ADMIT,
    OP_REJECT,
    OP_RELEASE,
    OP_RESIZE,
    DurabilityStore,
    Journal,
    ReplaySummary,
)
from repro.topology.tree import Tree


class RecoveryError(RuntimeError):
    """The journal and snapshot disagree with each other or with the tree."""


@dataclass
class RecoveryReport:
    """What recovery did, for logging and assertions."""

    snapshot_seq: int = 0
    replayed_records: int = 0
    last_seq: int = 0
    admits_replayed: int = 0
    releases_replayed: int = 0
    rejects_replayed: int = 0
    resizes_replayed: int = 0
    #: ``{idempotency_key: {"outcome", "request_id"}}`` scanned from the
    #: *whole* journal (the WAL is never truncated), so a client retrying
    #: a pre-crash submit is answered with the journaled decision instead
    #: of a second allocation.
    idempotency_index: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def used_snapshot(self) -> bool:
        return self.snapshot_seq > 0


def snapshot_payload(manager: NetworkManager) -> Dict:
    """The JSON snapshot body for the manager's current state."""
    return {
        "epsilon": manager.epsilon,
        "admitted_count": manager.admitted_count,
        "rejected_count": manager.rejected_count,
        "next_request_id": manager.next_request_id,
        "resize_counts": dict(manager.resize_counts),
        "allocations": [
            allocation_to_dict(tenancy.allocation) for tenancy in manager.tenancies()
        ],
    }


def recover_manager(
    store: DurabilityStore,
    tree: Tree,
    epsilon: float = 0.05,
    allocator: Optional[Allocator] = None,
) -> Tuple[NetworkManager, RecoveryReport]:
    """Rebuild a :class:`NetworkManager` from a durability directory.

    ``epsilon``/``allocator`` configure the fresh manager; a snapshot's
    recorded epsilon wins over the argument (the risk factor is part of the
    persisted state, not of the restart command line).
    """
    report = RecoveryReport()
    journal_last_seq: Optional[int] = None
    if store.wal_path.exists():
        tail = ReplaySummary()
        for record in Journal.iter_records(store.wal_path, summary=tail):
            # Idempotency keys are collected over the full journal, not
            # just the post-snapshot suffix: snapshots drop released
            # allocations, but a retried submit must still dedup.
            key = record.get("idem")
            if key is not None:
                op = record.get("op")
                if op == OP_ADMIT:
                    report.idempotency_index[str(key)] = {
                        "outcome": "admitted",
                        "request_id": record["allocation"].get("request_id"),
                    }
                elif op == OP_REJECT:
                    report.idempotency_index[str(key)] = {
                        "outcome": "rejected",
                        "request_id": None,
                    }
                elif op == OP_RESIZE:
                    # Resize keys keep their own outcome vocabulary
                    # (in_place/replaced/rejected); the ``resize`` marker
                    # tells the live dedup path not to confuse them with
                    # admission decisions.
                    report.idempotency_index[str(key)] = {
                        "outcome": str(record.get("outcome", "rejected")),
                        "request_id": record.get("request_id"),
                        "resize": True,
                    }
        journal_last_seq = tail.last_seq
    snapshot = store.latest_snapshot(max_seq=journal_last_seq)
    if snapshot is not None:
        seq, payload = snapshot
        report.snapshot_seq = seq
        report.last_seq = seq
        manager = NetworkManager(
            tree, epsilon=float(payload.get("epsilon", epsilon)), allocator=allocator
        )
        try:
            for entry in payload["allocations"]:
                manager.adopt(allocation_from_dict(entry))
            manager.admitted_count = int(payload["admitted_count"])
            manager.rejected_count = int(payload["rejected_count"])
            for outcome, count in payload.get("resize_counts", {}).items():
                if outcome in manager.resize_counts:
                    manager.resize_counts[outcome] = int(count)
            next_id = int(payload["next_request_id"])
        except (KeyError, TypeError, ValueError) as exc:
            raise RecoveryError(f"snapshot-{seq} is malformed: {exc}") from exc
        if next_id > manager.next_request_id:
            manager.next_request_id = next_id
    else:
        manager = NetworkManager(tree, epsilon=epsilon, allocator=allocator)

    for record in store.replay_after(report.snapshot_seq):
        report.replayed_records += 1
        report.last_seq = record["seq"]
        op = record["op"]
        if op == OP_ADMIT:
            allocation = allocation_from_dict(record["allocation"])
            try:
                manager.adopt(allocation)
            except ValueError as exc:
                raise RecoveryError(
                    f"journal seq {record['seq']}: cannot re-admit request "
                    f"{allocation.request_id}: {exc}"
                ) from exc
            manager.admitted_count += 1
            report.admits_replayed += 1
        elif op == OP_RELEASE:
            request_id = int(record["request_id"])
            tenancy = manager.get_tenancy(request_id)
            if tenancy is None:
                raise RecoveryError(
                    f"journal seq {record['seq']}: release of unknown request {request_id}"
                )
            manager.release(tenancy)
            report.releases_replayed += 1
        elif op == OP_REJECT:
            manager.rejected_count += 1
            request_id = record.get("request_id")
            if request_id is not None and int(request_id) >= manager.next_request_id:
                manager.next_request_id = int(request_id) + 1
            report.rejects_replayed += 1
        elif op == OP_RESIZE:
            outcome = str(record.get("outcome", ""))
            if "allocation" in record:
                allocation = allocation_from_dict(record["allocation"])
                tenancy = manager.get_tenancy(allocation.request_id)
                if tenancy is None:
                    raise RecoveryError(
                        f"journal seq {record['seq']}: resize of unknown request "
                        f"{allocation.request_id}"
                    )
                # Swap exactly what the live manager committed: release the
                # old allocation, adopt the journaled post-resize one.  No
                # admission counters move — a resize is not an admission.
                manager.release(tenancy)
                try:
                    manager.adopt(allocation)
                except ValueError as exc:
                    raise RecoveryError(
                        f"journal seq {record['seq']}: cannot re-apply resize of "
                        f"request {allocation.request_id}: {exc}"
                    ) from exc
            if outcome in manager.resize_counts:
                manager.resize_counts[outcome] += 1
            report.resizes_replayed += 1
        # Unknown ops are skipped: old journals must stay replayable by
        # newer code, and extra record types must not poison recovery.
    return manager, report


def oracle_replay(
    wal_path: Path, tree: Tree, epsilon: float = 0.05
) -> Tuple[NetworkState, Dict[int, Allocation]]:
    """Single-threaded from-scratch replay of the whole journal.

    Ignores snapshots entirely and drives a bare :class:`NetworkState`
    through commit/release — the ground truth the recovered manager (and
    the pre-crash live state) must match field-for-field.  Returns the
    final state and the allocations still active at the end of the log.
    """
    state = NetworkState(tree, epsilon=epsilon)
    active: Dict[int, Allocation] = {}
    for record in Journal.iter_records(wal_path):
        op = record["op"]
        if op == OP_ADMIT:
            allocation = allocation_from_dict(record["allocation"])
            if allocation.request_id in active:
                raise RecoveryError(
                    f"journal seq {record['seq']}: duplicate admit of "
                    f"request {allocation.request_id}"
                )
            state.commit(allocation)
            active[allocation.request_id] = allocation
        elif op == OP_RELEASE:
            request_id = int(record["request_id"])
            allocation = active.pop(request_id, None)
            if allocation is None:
                raise RecoveryError(
                    f"journal seq {record['seq']}: release of unknown request {request_id}"
                )
            state.release(allocation)
        elif op == OP_RESIZE and "allocation" in record:
            allocation = allocation_from_dict(record["allocation"])
            old = active.get(allocation.request_id)
            if old is None:
                raise RecoveryError(
                    f"journal seq {record['seq']}: resize of unknown request "
                    f"{allocation.request_id}"
                )
            state.release(old)
            state.commit(allocation)
            active[allocation.request_id] = allocation
    return state, active
