"""Asyncio front door for the admission service.

One event loop owns every connection: accept, read, and JSON decode happen
on the loop, and the synchronous admission core is reached through a
**bounded** thread pool (``--pool-size``), so ten thousand idle connections
cost file descriptors, not threads — the thread-per-connection scaling wall
ROADMAP item 3 names.

Two rules keep the sync core honest:

* **Never block the loop.**  Every call that can take the service lock (or
  sleep in a failpoint) runs in the pool via ``run_in_executor``.
* **Never park a pool thread on a wait.**  ``submit`` is two-phase: the
  enqueue runs in the pool with ``wait=False`` and the decision is awaited
  on the loop through an :class:`asyncio.Future` bridged from
  ``Ticket.add_done_callback`` — a thousand in-flight submits hold zero
  pool threads while the admission batcher works.

The wire protocol is byte-for-byte the line-JSON contract of
:mod:`repro.service.server`; the op table and error envelope are imported
from there, so the two front ends cannot drift.
"""

from __future__ import annotations

import argparse
import asyncio
import concurrent.futures
import json
import logging
import signal
from typing import Any, Dict, Optional

from repro.faults.failpoints import FAILPOINTS, FP_SERVER_RESPONSE
from repro.service.codec import CodecError
from repro.service.concurrency import AdmissionService, Ticket
from repro.service.errors import ServiceError

logger = logging.getLogger(__name__)

DEFAULT_POOL_SIZE = 8


class AsyncFrontDoor:
    """Asyncio accept/read/decode loop over one :class:`AdmissionService`.

    Construct, then ``await start()`` (binds and spins up the pool), then
    ``await serve_until_shutdown()``.  ``request_shutdown`` is thread-safe:
    protocol handlers call it from pool threads and signal handlers call it
    from the loop.
    """

    def __init__(
        self,
        service: AdmissionService,
        host: str = "127.0.0.1",
        port: int = 0,
        pool_size: int = DEFAULT_POOL_SIZE,
        client_timeout: Optional[float] = None,
    ) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self.service = service
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.client_timeout = client_timeout
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop = asyncio.Event()
        self._shutdown_pending = False
        self._conn_tasks: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the bridge pool; updates ``port``."""
        self._loop = asyncio.get_running_loop()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.pool_size, thread_name_prefix="aio-bridge"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        logger.info(
            "async front door listening on %s:%d (pool=%d)",
            self.host, self.port, self.pool_size,
        )

    async def serve_until_shutdown(self) -> None:
        """Serve connections until :meth:`request_shutdown` fires."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.start_serving()
            await self._stop.wait()
        # Listener closed; reap connections still parked on readline before
        # tearing down the pool they would otherwise try to schedule on.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._pool.shutdown(wait=False)

    def request_shutdown(self) -> None:
        """Stop serving immediately (callable from any thread).

        Signal handlers use this; the ``shutdown`` protocol op goes through
        :meth:`_defer_shutdown` instead so its ``bye`` response is flushed
        before the listener drops.
        """
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(self._stop.set)

    def _defer_shutdown(self) -> None:
        """Pool-side shutdown request: stop once the response is on the wire."""
        self._shutdown_pending = True

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        peer_host = peer[0] if peer else "?"
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while not self._stop.is_set():
                try:
                    if self.client_timeout is not None:
                        raw = await asyncio.wait_for(
                            reader.readline(), timeout=self.client_timeout
                        )
                    else:
                        raw = await reader.readline()
                except asyncio.TimeoutError:
                    logger.warning(
                        "peer=%s timed out mid-operation; closing connection",
                        peer_host,
                    )
                    break
                if not raw:
                    break
                line = raw.strip()
                if not line:
                    continue
                response = await self._process(line)
                # Failpoint runs in the pool: a delay-mode stall must pin
                # this connection, not the shared event loop.
                await self._run_sync(FAILPOINTS.hit, FP_SERVER_RESPONSE)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                try:
                    await writer.drain()
                except ConnectionError:
                    break
                if self._shutdown_pending:
                    self._stop.set()
                if response.get("bye"):
                    break
        except ConnectionError:
            pass  # peer vanished mid-read; nothing to answer
        except asyncio.CancelledError:
            # Shutdown reaps idle connections; completing normally keeps
            # asyncio's connection_made callback from logging the cancel.
            if not self._stop.is_set():
                raise
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _process(self, line: bytes) -> Dict[str, Any]:
        """Decode and execute one protocol line, mapping errors to envelopes."""
        # Local import: server.py imports this module for the async branch.
        from repro.service.server import dispatch_command, error_response

        try:
            command = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"malformed JSON: {exc.msg}"}
        op = command.get("op") if isinstance(command, dict) else None
        try:
            if op == "submit":
                return await self._submit(command)
            return await self._run_sync(
                dispatch_command, self.service, command, self._defer_shutdown
            )
        except (ServiceError, CodecError) as exc:
            return error_response(exc)
        except Exception as exc:  # never kill the connection on one bad op
            logger.warning("op=%s raised: %s", op, exc, exc_info=True)
            return error_response(exc)

    async def _submit(self, command: Dict[str, Any]) -> Dict[str, Any]:
        """Two-phase submit: pool-side enqueue, loop-side decision wait."""
        ticket: Ticket = await self._run_sync(self._enqueue, command)
        if bool(command.get("wait", True)) and not ticket.done:
            await self._await_ticket(ticket, command.get("wait_timeout"))
        return {"ok": True, **ticket.describe()}

    def _enqueue(self, command: Dict[str, Any]) -> Ticket:
        """Pool-side half of submit: enqueue without blocking on the decision."""
        self.service.gate("submit")  # same degradation gate as dispatch_command
        return self.service.submit(
            command["request"],
            priority=int(command.get("priority", 0)),
            timeout_s=command.get("timeout_s"),
            wait=False,
            idempotency_key=command.get("idem"),
            tenant=command.get("tenant"),
        )

    async def _await_ticket(
        self, ticket: Ticket, wait_timeout: Optional[float]
    ) -> None:
        """Await the worker's decision without holding a pool thread.

        On timeout the request simply stays queued (same contract as the
        threaded front end) and the caller reports the ticket as queued.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[None]" = loop.create_future()

        def _resolved(_ticket: Ticket) -> None:
            loop.call_soon_threadsafe(
                lambda: future.done() or future.set_result(None)
            )

        ticket.add_done_callback(_resolved)
        try:
            if wait_timeout is not None:
                await asyncio.wait_for(asyncio.shield(future), float(wait_timeout))
            else:
                await future
        except asyncio.TimeoutError:
            pass

    async def _run_sync(self, fn, *args):
        """Run a blocking call on the bounded bridge pool."""
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, fn, *args
        )


# ----------------------------------------------------------------------
# ``svc-repro serve --frontend async``
# ----------------------------------------------------------------------


def run_async_server(service: AdmissionService, args: argparse.Namespace) -> int:
    """Blocking entry point wired behind ``svc-repro serve`` (async frontend).

    Owns the event loop: binds, starts the admission workers, installs
    signal handlers on the loop, prints the ready line, serves until a
    shutdown op or signal, then runs the shared teardown (checkpoint +
    journal close).
    """
    from repro.service.server import (
        announce_ready,
        dump_flight_on_sigusr2,
        final_shutdown,
    )

    async def _main() -> None:
        door = AsyncFrontDoor(
            service,
            host=args.host,
            port=args.port,
            pool_size=getattr(args, "pool_size", DEFAULT_POOL_SIZE),
            client_timeout=getattr(args, "client_timeout_s", None),
        )
        await door.start()
        service.start()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, door.request_shutdown)
            loop.add_signal_handler(signal.SIGINT, door.request_shutdown)
            loop.add_signal_handler(signal.SIGUSR2, dump_flight_on_sigusr2)
        except (NotImplementedError, AttributeError, ValueError):
            pass  # platform without loop signal support
        announce_ready(service, args, door.host, door.port)
        await door.serve_until_shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        final_shutdown(service)
    return 0
