"""Admission request queue: the paper's two arrival disciplines.

* **online** (Section VI-B2): requests are tried once on arrival; if no
  valid placement exists they are dropped (rejected) immediately.
* **batch** (Section VI-B1): rejected requests are *parked* in FIFO order
  and retried whenever a departure frees resources, until they are admitted
  or their deadline passes.

On top of the paper semantics, every request carries a ``priority`` (higher
is served first, FIFO within a priority class) and an optional absolute
``deadline`` after which it expires instead of being served.

The queue is deliberately **not** thread-safe: :class:`~repro.service.
concurrency.AdmissionService` owns a condition variable and performs every
queue call while holding it.  Keeping the structure lock-free makes the
locking discipline auditable in one place.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.abstractions.requests import VirtualClusterRequest

MODE_ONLINE = "online"
MODE_BATCH = "batch"
MODES = (MODE_ONLINE, MODE_BATCH)

DEFAULT_TENANT = "default"
"""Tenant id assigned to submissions that do not name one."""


@dataclass
class QueuedRequest:
    """One tenant request waiting for an admission attempt."""

    ticket_id: int
    request: VirtualClusterRequest
    priority: int = 0
    #: Absolute clock value (service clock) after which the request expires.
    deadline: Optional[float] = None
    enqueued_at: float = 0.0
    attempts: int = 0
    #: Client-supplied dedup key, carried into the admit/reject journal
    #: record so retries after a lost ack stay idempotent.
    idempotency_key: Optional[str] = None
    #: Distributed-trace context (``repro.obs.tracing.TraceContext``) the
    #: worker activates around the allocator call; None when unsampled.
    trace_context: Optional[object] = None
    #: Tenant the request bills to — the fair queue schedules across tenants
    #: by weighted deficit round-robin and quotas are enforced per tenant.
    tenant: str = DEFAULT_TENANT
    #: Coalescing key (``repro.service.codec.request_shape_key``); the
    #: batcher only merges consecutive entries with equal shapes.
    shape: Optional[Tuple] = field(default=None, repr=False)
    #: FIFO tiebreak, assigned by the queue on first push and kept across
    #: park/retry cycles so retried requests keep their arrival position.
    seq: int = field(default=0, repr=False)
    _cancelled: bool = field(default=False, repr=False)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def sort_key(self) -> Tuple[int, int]:
        return (-self.priority, self.seq)


class RequestQueue:
    """Priority + FIFO admission queue with deadlines and a parking lot."""

    def __init__(self, mode: str = MODE_ONLINE) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown queue mode {mode!r}; choose from {MODES}")
        self.mode = mode
        self._heap: List[Tuple[Tuple[int, int], QueuedRequest]] = []
        self._parked: List[QueuedRequest] = []
        self._next_seq = 0

    # ------------------------------------------------------------------
    # Arrival side
    # ------------------------------------------------------------------

    def push(self, entry: QueuedRequest) -> None:
        """Enqueue a new arrival (assigns its FIFO position)."""
        entry.seq = self._next_seq
        self._next_seq += 1
        heapq.heappush(self._heap, (entry.sort_key(), entry))

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def pop_ready(
        self, now: float
    ) -> Tuple[Optional[QueuedRequest], List[QueuedRequest]]:
        """Next request to try, plus any expired entries drained on the way.

        Expired entries are returned (not silently dropped) so the service
        can resolve their tickets and count them.
        """
        expired: List[QueuedRequest] = []
        while self._heap:
            _key, entry = heapq.heappop(self._heap)
            if entry._cancelled:
                continue
            if entry.expired(now):
                expired.append(entry)
                continue
            return entry, expired
        return None, expired

    def park(self, entry: QueuedRequest) -> None:
        """Batch mode: hold a rejected request for retry on departures."""
        if self.mode != MODE_BATCH:
            raise ValueError("parking rejected requests requires batch mode")
        self._parked.append(entry)

    def requeue_parked(self) -> int:
        """Move every parked request back into the ready heap.

        Called on each departure; retried entries keep their original
        ``seq`` so the batch scenario remains FIFO within priority.
        Returns how many were requeued.
        """
        count = 0
        for entry in self._parked:
            if not entry._cancelled:
                heapq.heappush(self._heap, (entry.sort_key(), entry))
                count += 1
        self._parked.clear()
        return count

    def expire(self, now: float) -> List[QueuedRequest]:
        """Remove and return every expired entry (ready and parked)."""
        expired: List[QueuedRequest] = []
        for entry in list(self._parked):
            if entry.expired(now):
                expired.append(entry)
        self._parked = [e for e in self._parked if not e.expired(now)]
        kept: List[Tuple[Tuple[int, int], QueuedRequest]] = []
        for key, entry in self._heap:
            if entry._cancelled:
                continue
            if entry.expired(now):
                expired.append(entry)
            else:
                kept.append((key, entry))
        heapq.heapify(kept)
        self._heap = kept
        return expired

    def drain(self) -> List[QueuedRequest]:
        """Remove and return everything still waiting (service shutdown)."""
        entries = [e for _k, e in self._heap if not e._cancelled]
        entries.extend(e for e in self._parked if not e._cancelled)
        self._heap.clear()
        self._parked.clear()
        entries.sort(key=QueuedRequest.sort_key)
        return entries

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def ready_count(self) -> int:
        return sum(1 for _k, e in self._heap if not e._cancelled)

    @property
    def parked_count(self) -> int:
        return sum(1 for e in self._parked if not e._cancelled)

    def __len__(self) -> int:
        return self.ready_count + self.parked_count


class FairRequestQueue:
    """Per-tenant weighted deficit round-robin admission queue.

    Each tenant owns a private priority+FIFO heap (the :class:`RequestQueue`
    ordering, scoped to the tenant); across tenants a deficit round-robin
    rotation decides who is served next.  On each visit a tenant's deficit
    grows by its weight and every pop costs one unit, so a tenant with
    weight ``w`` gets up to ``w`` consecutive admissions per rotation lap —
    and any tenant with a positive weight is visited once per lap, which is
    what makes starvation impossible regardless of how the others flood.

    The serving order this queue produces **is** the canonical sequential
    order: the batcher only coalesces a run of *consecutive* pops with equal
    shape keys (:meth:`pop_compatible`), so batched admission processes
    exactly the sequence an unbatched worker would, one decision at a time.

    Same threading contract as :class:`RequestQueue`: not thread-safe, all
    calls made under the service condition variable.
    """

    def __init__(
        self,
        mode: str = MODE_ONLINE,
        default_weight: int = 1,
        weights: Optional[Dict[str, int]] = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown queue mode {mode!r}; choose from {MODES}")
        if default_weight < 1:
            raise ValueError(f"default weight must be >= 1, got {default_weight}")
        for tenant, weight in (weights or {}).items():
            if weight < 1:
                raise ValueError(f"tenant {tenant!r} weight must be >= 1, got {weight}")
        self.mode = mode
        self._default_weight = default_weight
        self._weights: Dict[str, int] = dict(weights or {})
        #: tenant -> that tenant's ready heap of ``(sort_key, entry)``.
        self._heaps: Dict[str, List[Tuple[Tuple[int, int], QueuedRequest]]] = {}
        #: Round-robin order over tenants with ready work; head serves next.
        self._rotation: Deque[str] = deque()
        #: Deficit counters; dropped when a tenant's heap empties, so idle
        #: tenants cannot bank credit (standard DRR).
        self._deficits: Dict[str, float] = {}
        self._parked: List[QueuedRequest] = []
        self._next_seq = 0

    def weight_of(self, tenant: str) -> int:
        return self._weights.get(tenant, self._default_weight)

    def set_weight(self, tenant: str, weight: int) -> None:
        if weight < 1:
            raise ValueError(f"tenant {tenant!r} weight must be >= 1, got {weight}")
        self._weights[tenant] = weight

    # ------------------------------------------------------------------
    # Arrival side
    # ------------------------------------------------------------------

    def push(self, entry: QueuedRequest) -> None:
        """Enqueue a new arrival (assigns its FIFO position)."""
        entry.seq = self._next_seq
        self._next_seq += 1
        self._push_existing(entry)

    def _push_existing(self, entry: QueuedRequest) -> None:
        heap = self._heaps.get(entry.tenant)
        if heap is None:
            heap = self._heaps[entry.tenant] = []
            self._rotation.append(entry.tenant)
            self._deficits[entry.tenant] = 0.0
        heapq.heappush(heap, (entry.sort_key(), entry))

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _retire(self, tenant: str) -> None:
        self._rotation.remove(tenant)
        del self._heaps[tenant]
        del self._deficits[tenant]

    def _settle(self, now: float, expired: List[QueuedRequest]) -> Optional[str]:
        """Advance the rotation until its head tenant is the one to serve.

        Prunes cancelled and expired entries off heap tops on the way
        (collecting the expired ones), retires tenants whose heaps empty,
        and tops up deficits per DRR.  Deterministic: the tenant returned is
        a pure function of queue state, so peeking commits nothing beyond
        what any pop would have decided anyway.
        """
        while self._rotation:
            tenant = self._rotation[0]
            heap = self._heaps[tenant]
            while heap:
                entry = heap[0][1]
                if entry._cancelled:
                    heapq.heappop(heap)
                elif entry.expired(now):
                    heapq.heappop(heap)
                    expired.append(entry)
                else:
                    break
            if not heap:
                self._retire(tenant)
                continue
            if self._deficits[tenant] >= 1.0:
                return tenant
            self._deficits[tenant] += self.weight_of(tenant)
            self._rotation.rotate(-1)
        return None

    def pop_ready(
        self, now: float
    ) -> Tuple[Optional[QueuedRequest], List[QueuedRequest]]:
        """Next request to try (per DRR), plus expired entries drained."""
        expired: List[QueuedRequest] = []
        tenant = self._settle(now, expired)
        if tenant is None:
            return None, expired
        _key, entry = heapq.heappop(self._heaps[tenant])
        self._deficits[tenant] -= 1.0
        if not self._heaps[tenant]:
            self._retire(tenant)
        return entry, expired

    def pop_compatible(
        self, shape: Optional[Tuple], now: float
    ) -> Tuple[Optional[QueuedRequest], List[QueuedRequest]]:
        """Pop the next entry only if it matches ``shape``.

        This is the batcher's coalescing primitive: it pops exactly the
        entry :meth:`pop_ready` would have popped, but only when that
        entry's shape key equals ``shape`` — otherwise the queue is left
        for the next (unbatched-order) round.  Never matches a None shape.
        """
        expired: List[QueuedRequest] = []
        tenant = self._settle(now, expired)
        if tenant is None:
            return None, expired
        entry = self._heaps[tenant][0][1]
        if shape is None or entry.shape != shape:
            return None, expired
        heapq.heappop(self._heaps[tenant])
        self._deficits[tenant] -= 1.0
        if not self._heaps[tenant]:
            self._retire(tenant)
        return entry, expired

    def park(self, entry: QueuedRequest) -> None:
        """Batch mode: hold a rejected request for retry on departures."""
        if self.mode != MODE_BATCH:
            raise ValueError("parking rejected requests requires batch mode")
        self._parked.append(entry)

    def requeue_parked(self) -> int:
        """Move every parked request back into its tenant's ready heap."""
        count = 0
        for entry in self._parked:
            if not entry._cancelled:
                self._push_existing(entry)
                count += 1
        self._parked.clear()
        return count

    def expire(self, now: float) -> List[QueuedRequest]:
        """Remove and return every expired entry (ready and parked)."""
        expired: List[QueuedRequest] = [
            e for e in self._parked if e.expired(now)
        ]
        self._parked = [e for e in self._parked if not e.expired(now)]
        for tenant in list(self._heaps):
            heap = self._heaps[tenant]
            kept: List[Tuple[Tuple[int, int], QueuedRequest]] = []
            for key, entry in heap:
                if entry._cancelled:
                    continue
                if entry.expired(now):
                    expired.append(entry)
                else:
                    kept.append((key, entry))
            heapq.heapify(kept)
            self._heaps[tenant] = kept
            if not kept:
                self._retire(tenant)
        return expired

    def drain(self) -> List[QueuedRequest]:
        """Remove and return everything still waiting (service shutdown)."""
        entries = [
            e
            for heap in self._heaps.values()
            for _k, e in heap
            if not e._cancelled
        ]
        entries.extend(e for e in self._parked if not e._cancelled)
        self._heaps.clear()
        self._rotation.clear()
        self._deficits.clear()
        self._parked.clear()
        entries.sort(key=QueuedRequest.sort_key)
        return entries

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def ready_count(self) -> int:
        return sum(
            1
            for heap in self._heaps.values()
            for _k, e in heap
            if not e._cancelled
        )

    @property
    def parked_count(self) -> int:
        return sum(1 for e in self._parked if not e._cancelled)

    def __len__(self) -> int:
        return self.ready_count + self.parked_count

    def tenant_depths(self) -> Dict[str, int]:
        """Waiting entries (ready + parked) per tenant — quota & gauge feed."""
        depths: Dict[str, int] = {}
        for tenant, heap in self._heaps.items():
            depths[tenant] = sum(1 for _k, e in heap if not e._cancelled)
        for entry in self._parked:
            if not entry._cancelled:
                depths[entry.tenant] = depths.get(entry.tenant, 0) + 1
        return depths

    def tenant_depth(self, tenant: str) -> int:
        heap = self._heaps.get(tenant, ())
        depth = sum(1 for _k, e in heap if not e._cancelled)
        depth += sum(
            1 for e in self._parked if e.tenant == tenant and not e._cancelled
        )
        return depth
