"""Admission request queue: the paper's two arrival disciplines.

* **online** (Section VI-B2): requests are tried once on arrival; if no
  valid placement exists they are dropped (rejected) immediately.
* **batch** (Section VI-B1): rejected requests are *parked* in FIFO order
  and retried whenever a departure frees resources, until they are admitted
  or their deadline passes.

On top of the paper semantics, every request carries a ``priority`` (higher
is served first, FIFO within a priority class) and an optional absolute
``deadline`` after which it expires instead of being served.

The queue is deliberately **not** thread-safe: :class:`~repro.service.
concurrency.AdmissionService` owns a condition variable and performs every
queue call while holding it.  Keeping the structure lock-free makes the
locking discipline auditable in one place.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.abstractions.requests import VirtualClusterRequest

MODE_ONLINE = "online"
MODE_BATCH = "batch"
MODES = (MODE_ONLINE, MODE_BATCH)


@dataclass
class QueuedRequest:
    """One tenant request waiting for an admission attempt."""

    ticket_id: int
    request: VirtualClusterRequest
    priority: int = 0
    #: Absolute clock value (service clock) after which the request expires.
    deadline: Optional[float] = None
    enqueued_at: float = 0.0
    attempts: int = 0
    #: Client-supplied dedup key, carried into the admit/reject journal
    #: record so retries after a lost ack stay idempotent.
    idempotency_key: Optional[str] = None
    #: Distributed-trace context (``repro.obs.tracing.TraceContext``) the
    #: worker activates around the allocator call; None when unsampled.
    trace_context: Optional[object] = None
    #: FIFO tiebreak, assigned by the queue on first push and kept across
    #: park/retry cycles so retried requests keep their arrival position.
    seq: int = field(default=0, repr=False)
    _cancelled: bool = field(default=False, repr=False)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def sort_key(self) -> Tuple[int, int]:
        return (-self.priority, self.seq)


class RequestQueue:
    """Priority + FIFO admission queue with deadlines and a parking lot."""

    def __init__(self, mode: str = MODE_ONLINE) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown queue mode {mode!r}; choose from {MODES}")
        self.mode = mode
        self._heap: List[Tuple[Tuple[int, int], QueuedRequest]] = []
        self._parked: List[QueuedRequest] = []
        self._next_seq = 0

    # ------------------------------------------------------------------
    # Arrival side
    # ------------------------------------------------------------------

    def push(self, entry: QueuedRequest) -> None:
        """Enqueue a new arrival (assigns its FIFO position)."""
        entry.seq = self._next_seq
        self._next_seq += 1
        heapq.heappush(self._heap, (entry.sort_key(), entry))

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def pop_ready(
        self, now: float
    ) -> Tuple[Optional[QueuedRequest], List[QueuedRequest]]:
        """Next request to try, plus any expired entries drained on the way.

        Expired entries are returned (not silently dropped) so the service
        can resolve their tickets and count them.
        """
        expired: List[QueuedRequest] = []
        while self._heap:
            _key, entry = heapq.heappop(self._heap)
            if entry._cancelled:
                continue
            if entry.expired(now):
                expired.append(entry)
                continue
            return entry, expired
        return None, expired

    def park(self, entry: QueuedRequest) -> None:
        """Batch mode: hold a rejected request for retry on departures."""
        if self.mode != MODE_BATCH:
            raise ValueError("parking rejected requests requires batch mode")
        self._parked.append(entry)

    def requeue_parked(self) -> int:
        """Move every parked request back into the ready heap.

        Called on each departure; retried entries keep their original
        ``seq`` so the batch scenario remains FIFO within priority.
        Returns how many were requeued.
        """
        count = 0
        for entry in self._parked:
            if not entry._cancelled:
                heapq.heappush(self._heap, (entry.sort_key(), entry))
                count += 1
        self._parked.clear()
        return count

    def expire(self, now: float) -> List[QueuedRequest]:
        """Remove and return every expired entry (ready and parked)."""
        expired: List[QueuedRequest] = []
        for entry in list(self._parked):
            if entry.expired(now):
                expired.append(entry)
        self._parked = [e for e in self._parked if not e.expired(now)]
        kept: List[Tuple[Tuple[int, int], QueuedRequest]] = []
        for key, entry in self._heap:
            if entry._cancelled:
                continue
            if entry.expired(now):
                expired.append(entry)
            else:
                kept.append((key, entry))
        heapq.heapify(kept)
        self._heap = kept
        return expired

    def drain(self) -> List[QueuedRequest]:
        """Remove and return everything still waiting (service shutdown)."""
        entries = [e for _k, e in self._heap if not e._cancelled]
        entries.extend(e for e in self._parked if not e._cancelled)
        self._heap.clear()
        self._parked.clear()
        entries.sort(key=QueuedRequest.sort_key)
        return entries

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def ready_count(self) -> int:
        return sum(1 for _k, e in self._heap if not e._cancelled)

    @property
    def parked_count(self) -> int:
        return sum(1 for e in self._parked if not e._cancelled)

    def __len__(self) -> int:
        return self.ready_count + self.parked_count
