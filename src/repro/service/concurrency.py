"""Thread-safe admission front-end: worker pool, tickets, statistics.

:class:`AdmissionService` is the serving layer around a single
:class:`~repro.manager.network_manager.NetworkManager`.  One condition
variable guards the manager, the queue and the journal together, so the
journal's record order is exactly the order state mutations were applied —
the invariant crash recovery relies on.  Worker threads drain the queue,
run the allocator under the lock (admission control is inherently serial:
each decision depends on the link state the previous one produced), and
resolve the submitting client's :class:`Ticket`.

Durability ordering: state is mutated first, then the event is journaled,
both under the lock, and the ticket is resolved only after the journal
append returns.  A crash can lose at most the final un-acknowledged
operation; everything a client saw acknowledged is recoverable.  When the
journal append itself fails, the just-applied mutation is **rolled back**
before anyone sees it — memory never acknowledges what the journal will
not remember — and the service steps down the degradation ladder
(:mod:`repro.service.degrade`): mutations shed with typed, retryable
errors while a background probe record (``op: "note"``) tests the volume
until writes succeed again.

Idempotency: ``submit`` accepts a client-generated ``idempotency_key``.
The key is persisted inside the admit/reject journal record and indexed
both live and at recovery, so a client retrying after a lost ack gets the
original decision back instead of a second allocation (the tentpole
"no double-admit on retry" guarantee).
"""

from __future__ import annotations

import dataclasses
import logging
import math
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.abstractions.requests import VirtualClusterRequest
from repro.faults.failpoints import (
    FAILPOINTS,
    FP_QUEUE_ACCEPT,
    FP_RELEASE_AFTER_JOURNAL,
    FP_RELEASE_BEFORE_JOURNAL,
    FP_RESIZE_AFTER_JOURNAL,
    FP_RESIZE_BEFORE_JOURNAL,
    FP_WORKER_AFTER_JOURNAL,
    FP_WORKER_BEFORE_JOURNAL,
    InjectedCrash,
)
from repro.manager.network_manager import NetworkManager, Tenancy
from repro.network.snapshot import utilization_by_level
from repro.obs.flightrec import flight_recorder
from repro.obs.instruments import global_registry, service_instruments
from repro.obs.tracing import TraceContext, activate_context, record_remote_span
from repro.service.codec import request_from_dict, request_shape_key, request_to_dict
from repro.service.degrade import (
    STATE_FAST_FAIL,
    STATE_FULL,
    STATE_READ_ONLY,
    DegradationLadder,
)
from repro.service.errors import (
    CODE_READ_ONLY,
    CODE_UNAVAILABLE,
    ConflictError,
    DegradedError,
    OverloadedError,
    OverQuotaError,
)
from repro.service.journal import DurabilityStore
from repro.service.queue import (
    DEFAULT_TENANT,
    MODE_BATCH,
    MODE_ONLINE,
    MODES,
    FairRequestQueue,
    QueuedRequest,
)
from repro.service.recovery import snapshot_payload

logger = logging.getLogger(__name__)

OUTCOME_ADMITTED = "admitted"
OUTCOME_REJECTED = "rejected"
OUTCOME_EXPIRED = "expired"
OUTCOME_QUEUED = "queued"
OUTCOME_SHUTDOWN = "shutdown"
OUTCOME_ERROR = "error"

#: How long an idle worker sleeps before re-checking deadlines (seconds).
_IDLE_SWEEP_INTERVAL = 0.05

#: Queue-bound default: generous for benchmarks, finite so a stalled
#: worker pool cannot grow the heap without bound.
DEFAULT_MAX_QUEUE_DEPTH = 1024

#: Idempotency keys remembered live (oldest evicted beyond this).
_IDEMPOTENCY_CAPACITY = 65536

#: Ops that mutate manager/journal state and are shed while degraded.
MUTATING_OPS = frozenset({"submit", "release", "resize", "snapshot"})


class LatencyWindow:
    """Bounded reservoir of recent latency samples for percentile stats.

    Percentiles are computed over only the last ``maxlen`` samples while the
    mean covers the whole lifetime — the ``window``/``window_limit`` fields
    in :meth:`summary` make that caveat machine-visible.  Every reported
    number is a finite ``float >= 0.0`` regardless of how few samples exist
    (empty and one-sample windows degrade to zeros / the single sample, not
    ``NaN`` or ``None``), so the payload is always JSON-safe.
    """

    def __init__(self, maxlen: int = 4096) -> None:
        self._maxlen = maxlen
        self._samples: deque = deque(maxlen=maxlen)
        self._count = 0
        self._total = 0.0

    def observe(self, seconds: float) -> None:
        # Non-finite or negative samples (clock anomalies) would poison
        # every percentile in the window; clamp them to zero instead.
        if not math.isfinite(seconds) or seconds < 0.0:
            seconds = 0.0
        self._samples.append(seconds)
        self._count += 1
        self._total += seconds

    def summary(self, percentiles=(50, 90, 99)) -> Dict[str, float]:
        """Percentiles (over the window) and lifetime mean, in milliseconds."""
        result: Dict[str, float] = {"count": self._count}
        result["window"] = len(self._samples)
        result["window_limit"] = self._maxlen
        result["mean_ms"] = 1000.0 * self._total / self._count if self._count else 0.0
        ordered = sorted(self._samples)
        for pct in percentiles:
            if not ordered:
                result[f"p{pct}_ms"] = 0.0
                continue
            rank = min(len(ordered) - 1, max(0, round(pct / 100.0 * (len(ordered) - 1))))
            result[f"p{pct}_ms"] = 1000.0 * ordered[rank]
        return result


@dataclass
class ServiceCounters:
    """Lifetime event counters of one service instance (not persisted)."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    expired: int = 0
    released: int = 0
    retries: int = 0
    errors: int = 0
    #: Load-shedding responses (backpressure or degradation).
    shed: int = 0
    #: Submits answered from the idempotency index instead of the queue.
    deduped: int = 0
    #: Batch dispatches (each covers one or more coalesced requests).
    batches: int = 0
    #: Requests that rode in a batch behind its leader (shared DP tables).
    coalesced: int = 0
    #: Accepted resizes (in-place + replaced).  Kept apart from
    #: ``admitted``/``rejected`` so ``rejection_rate`` never moves.
    resized: int = 0
    #: Resizes that found no feasible new size (old allocation kept).
    resize_rejected: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class Ticket:
    """A client's handle on one submitted request."""

    ticket_id: int
    submitted_at: float
    priority: int = 0
    deadline: Optional[float] = None
    outcome: Optional[str] = None
    request_id: Optional[int] = None
    detail: Optional[str] = None
    latency: Optional[float] = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)
    _callbacks: List[Callable[["Ticket"], None]] = field(
        default_factory=list, repr=False
    )
    _cb_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def resolve(
        self,
        outcome: str,
        request_id: Optional[int] = None,
        detail: Optional[str] = None,
        latency: Optional[float] = None,
    ) -> None:
        self.outcome = outcome
        self.request_id = request_id
        self.detail = detail
        self.latency = latency
        with self._cb_lock:
            self._done.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(self, callback: Callable[["Ticket"], None]) -> None:
        """Run ``callback(self)`` once resolved (immediately if already done).

        The async front door bridges tickets to ``asyncio`` futures through
        this instead of burning a pool thread per in-flight :meth:`wait`.
        The lock makes registration race-free against a concurrent resolve:
        the callback fires exactly once, on whichever side wins.
        """
        with self._cb_lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the request is decided; False on timeout."""
        return self._done.wait(timeout)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def describe(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "ticket": self.ticket_id,
            "outcome": self.outcome if self.done else OUTCOME_QUEUED,
        }
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.detail:
            payload["detail"] = self.detail
        if self.latency is not None:
            payload["latency_ms"] = 1000.0 * self.latency
        return payload


class AdmissionService:
    """Durable, concurrent admission control over one ``NetworkManager``.

    Parameters
    ----------
    manager:
        The (single-threaded) manager to serve; may already hold state,
        e.g. when constructed by :func:`repro.service.recovery.recover_manager`.
    store:
        Optional :class:`DurabilityStore`; without it the service runs
        in-memory only (useful for benchmarks and simulations).
    mode:
        ``"online"`` drops rejected requests immediately; ``"batch"``
        parks them for retry on departures (Section VI-B semantics).
    workers:
        Worker threads draining the queue.  Admission decisions serialize
        on the manager lock regardless; extra workers overlap protocol
        handling, journaling and ticket resolution with allocator runs.
    max_queue_depth:
        Bounded-queue backpressure: submits beyond this many waiting
        requests (ready + parked) shed with :class:`OverloadedError`
        instead of growing the heap.  ``None`` disables the bound.
    default_timeout_s:
        Server-side deadline applied to submits that carry no
        ``timeout_s`` of their own (``None`` = no default deadline).
    degradation:
        The :class:`DegradationLadder` guarding journal health; defaults
        to a fresh ladder when a store is present.
    idempotency_index:
        ``{key: {"outcome", "request_id"}}`` recovered from the journal
        (see :func:`repro.service.recovery.recover_manager`), seeding the
        live dedup index so retries of pre-crash submits stay idempotent.
    batch_max:
        Upper bound on admission-batch size.  A worker that pops a request
        keeps popping *consecutive* queue entries with the same shape key
        (up to this many) and drives them through one shared allocator
        batch context — one tree traversal's tables amortized across the
        run, decisions bit-identical to one-at-a-time processing.  ``1``
        disables coalescing.
    batch_linger_s:
        With the queue empty and a batch still below ``batch_max``, how
        long the worker waits for more same-shape arrivals before
        dispatching.  ``0`` dispatches immediately (latency-optimal).
    tenant_quota:
        Per-tenant queue bound: a tenant with this many waiting requests
        has further submits shed with :class:`OverQuotaError` (carrying a
        ``retry_after`` hint) while other tenants continue unharmed.
        ``None`` disables per-tenant quotas.
    tenant_weights:
        Deficit-round-robin weights per tenant name (default 1): a tenant
        with weight ``w`` is served up to ``w`` requests per rotation lap.
    """

    def __init__(
        self,
        manager: NetworkManager,
        store: Optional[DurabilityStore] = None,
        mode: str = MODE_ONLINE,
        workers: int = 2,
        clock: Callable[[], float] = time.monotonic,
        latency_window: int = 4096,
        max_queue_depth: Optional[int] = DEFAULT_MAX_QUEUE_DEPTH,
        default_timeout_s: Optional[float] = None,
        degradation: Optional[DegradationLadder] = None,
        idempotency_index: Optional[Dict[str, Dict[str, Any]]] = None,
        batch_max: int = 1,
        batch_linger_s: float = 0.0,
        tenant_quota: Optional[int] = None,
        tenant_weights: Optional[Dict[str, int]] = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown service mode {mode!r}; choose from {MODES}")
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if batch_linger_s < 0.0:
            raise ValueError(f"batch_linger_s must be >= 0, got {batch_linger_s}")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError(f"tenant_quota must be >= 1, got {tenant_quota}")
        self.manager = manager
        self.store = store
        self.mode = mode
        self.workers = workers
        self.clock = clock
        self.max_queue_depth = max_queue_depth
        self.default_timeout_s = default_timeout_s
        self.batch_max = batch_max
        self.batch_linger_s = batch_linger_s
        self.tenant_quota = tenant_quota
        self.counters = ServiceCounters()
        self.latencies = LatencyWindow(maxlen=latency_window)
        self._cond = threading.Condition()
        self._queue = FairRequestQueue(mode, weights=tenant_weights)
        self._known_tenants: set = set()
        self._tickets: Dict[int, Ticket] = {}
        self._next_ticket = 1
        self._threads: List[threading.Thread] = []
        self._running = False
        self._started_at = self.clock()
        self._degradation = degradation or (
            DegradationLadder(clock=clock) if store is not None else None
        )
        #: Set when a worker died to an injected crash (chaos harness).
        self.crashed = False
        # Live idempotency index: key -> {"ticket_id"} while a ticket is
        # known in this process, or {"outcome", "request_id"} for keys
        # rebuilt from the journal at recovery.
        self._idem: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        if idempotency_index:
            for key, decision in idempotency_index.items():
                self._idem[key] = dict(decision)
            self._trim_idempotency()
        # Mirror every counter/latency observation onto the process-global
        # metric registry and expose queue depth, uptime and the network
        # guarantee-health gauges through it (pull-style: the callbacks run
        # only when the metrics endpoint renders).
        self._obs = service_instruments()
        self._obs.bind_service(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "AdmissionService":
        with self._cond:
            if self._running:
                return self
            self._running = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"admission-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        logger.info(
            "admission service started: mode=%s workers=%d durable=%s",
            self.mode, self.workers, self.store is not None,
        )
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop workers and resolve every still-queued ticket as shutdown."""
        with self._cond:
            if not self._running:
                return
            self._running = False
            abandoned = self._queue.drain()
            self._cond.notify_all()
        for entry in abandoned:
            self._resolve(entry, OUTCOME_SHUTDOWN, detail="service stopped")
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()
        logger.info(
            "admission service stopped: %d queued request(s) abandoned", len(abandoned)
        )

    def kill(self, timeout: float = 2.0) -> None:
        """Simulate a crash: stop workers *without* resolving anything.

        Unlike :meth:`stop`, queued tickets stay unresolved and no shutdown
        snapshot is taken — exactly what a power cut leaves behind.  Used
        by the chaos harness; the journal on disk is already crash-ready
        because every append is flushed before it is acknowledged.
        """
        with self._cond:
            self._running = False
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()

    def __enter__(self) -> "AdmissionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    @property
    def started_at(self) -> float:
        """Clock reading at construction (uptime reference for gauges)."""
        return self._started_at

    def queue_depths(self) -> Tuple[int, int]:
        """Current ``(ready, parked)`` queue depths, read under the lock."""
        with self._cond:
            return self._queue.ready_count, self._queue.parked_count

    def tenant_depth(self, tenant: str) -> int:
        """One tenant's waiting requests (ready + parked), under the lock."""
        with self._cond:
            return self._queue.tenant_depth(tenant)

    def tenant_depths(self) -> Dict[str, int]:
        """Waiting requests per tenant, read under the lock."""
        with self._cond:
            return self._queue.tenant_depths()

    def coalesce_ratio(self) -> float:
        """Fraction of processed requests that shared a batch leader's tables."""
        processed = self.counters.batches + self.counters.coalesced
        return self.counters.coalesced / processed if processed else 0.0

    def _observe_tenant(self, tenant: str) -> None:
        """First submit from a tenant: expose its queue-depth gauge (under lock)."""
        if tenant in self._known_tenants:
            return
        self._known_tenants.add(tenant)
        self._obs.bind_tenant_depth(
            tenant, lambda t=tenant: float(self.tenant_depth(t))
        )

    def _count(self, event: str, amount: int = 1) -> None:
        """Bump one lifetime counter and its registry mirror together."""
        setattr(self.counters, event, getattr(self.counters, event) + amount)
        self._obs.event(event, amount)

    def _observe_latency(self, seconds: float) -> None:
        self.latencies.observe(seconds)
        self._obs.observe_latency(seconds)

    # ------------------------------------------------------------------
    # Degradation ladder
    # ------------------------------------------------------------------

    @property
    def degradation(self) -> Optional[DegradationLadder]:
        return self._degradation

    def degradation_state(self) -> str:
        return self._degradation.state if self._degradation else STATE_FULL

    def degradation_code(self) -> int:
        """Numeric ladder position for the degradation-state gauge."""
        return self._degradation.code if self._degradation else 0

    def gate(self, op: str) -> None:
        """Shed one op if the current degradation rung forbids it.

        ``full`` passes everything; ``read_only`` sheds mutations;
        ``fast_fail`` sheds everything except ``ping``/``shutdown``/``obs``
        (the flight recorder exists to triage exactly this state, so the
        dump op must survive it).
        Raises :class:`DegradedError` carrying the ladder's current
        ``retry_after`` hint.  Called by the TCP dispatcher for every op
        and by ``submit``/``release`` themselves (the in-process API).
        """
        ladder = self._degradation
        if ladder is None or ladder.state == STATE_FULL:
            return
        if ladder.state == STATE_FAST_FAIL and op not in ("ping", "shutdown", "obs"):
            self._shed(CODE_UNAVAILABLE)
            raise DegradedError(
                f"service is failing fast (journal unavailable: {ladder.last_error})",
                code=CODE_UNAVAILABLE,
                retry_after=ladder.retry_after(),
            )
        if ladder.state == STATE_READ_ONLY and op in MUTATING_OPS:
            self._shed(CODE_READ_ONLY)
            raise DegradedError(
                f"service is read-only (journal failing: {ladder.last_error})",
                code=CODE_READ_ONLY,
                retry_after=ladder.retry_after(),
            )

    def _shed(self, reason: str) -> None:
        self._count("shed")
        self._obs.shed_reason(reason)

    def _degrade(self, error: BaseException) -> None:
        """Step down the ladder after a journal append failed (under lock)."""
        ladder = self._degradation
        if ladder is None:
            return
        before = ladder.state
        ladder.record_failure(error)
        if ladder.state != before:
            self._obs.degradation_transition(ladder.state)
            recorder = flight_recorder()
            recorder.record(
                "degradation",
                from_state=before,
                to_state=ladder.state,
                error=f"{type(error).__name__}: {error}",
            )
            recorder.maybe_dump("degradation")
            logger.warning(
                "degradation: %s -> %s after journal failure: %s",
                before, ladder.state, error,
            )

    def _recover_degradation(self) -> None:
        """Step back to full service after a probe succeeded (under lock)."""
        ladder = self._degradation
        if ladder is None or not ladder.degraded:
            return
        before = ladder.state
        ladder.record_success()
        self._obs.degradation_transition(ladder.state)
        flight_recorder().record(
            "degradation", from_state=before, to_state=ladder.state, recovered=True
        )
        logger.info("degradation: %s -> %s (journal probe succeeded)", before, ladder.state)

    def _probe_journal(self) -> None:
        """While degraded, test the journal with a replay-invisible note."""
        ladder = self._degradation
        if ladder is None or self.store is None:
            return
        try:
            self.store.log_note("degradation probe")
        except InjectedCrash:
            raise
        except Exception as exc:
            before = ladder.state
            ladder.record_failure(exc)
            if ladder.state != before:
                self._obs.degradation_transition(ladder.state)
            logger.debug("journal probe failed: %s", exc)
        else:
            self._recover_degradation()

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    def submit(
        self,
        request: Union[VirtualClusterRequest, Dict[str, Any]],
        priority: int = 0,
        timeout_s: Optional[float] = None,
        wait: bool = True,
        wait_timeout: Optional[float] = None,
        idempotency_key: Optional[str] = None,
        trace_context: Optional[TraceContext] = None,
        tenant: Optional[str] = None,
    ) -> Ticket:
        """Enqueue a tenant request; optionally block for the decision.

        ``timeout_s`` is the request's *deadline* relative to now: in batch
        mode a parked request expires once it passes; in online mode it
        only matters if the request expires before a worker first reaches
        it.  Without an explicit value the service's ``default_timeout_s``
        applies.  ``wait_timeout`` bounds how long *this call* blocks — the
        request itself stays queued when the wait times out.

        ``idempotency_key`` makes retries safe: a key already decided (in
        this process or recovered from the journal) returns the original
        ticket/decision instead of enqueueing a second copy.

        ``tenant`` names the fair-queue lane the request bills to (default
        ``"default"``); scheduling across tenants is weighted deficit
        round-robin and the per-tenant quota, when configured, sheds a
        tenant's overflow with :class:`OverQuotaError` — a *targeted*
        backpressure that leaves other tenants' admission rate untouched.

        Raises :class:`DegradedError` while the ladder forbids mutations
        and :class:`OverloadedError` when the queue bound is reached.
        """
        if isinstance(request, dict):
            request = request_from_dict(request)
        if timeout_s is None:
            timeout_s = self.default_timeout_s
        tenant = tenant or DEFAULT_TENANT
        now = self.clock()
        deadline = now + timeout_s if timeout_s is not None else None
        with self._cond:
            if not self._running:
                raise RuntimeError("service is not running")
            dedup = (
                self._deduplicate(idempotency_key, now)
                if idempotency_key is not None
                else None
            )
            if dedup is None:
                self.gate("submit")
                depth = len(self._queue)
                saturated = FAILPOINTS.hit(FP_QUEUE_ACCEPT) is not None
                if saturated or (
                    self.max_queue_depth is not None and depth >= self.max_queue_depth
                ):
                    self._shed(OverloadedError.code)
                    raise OverloadedError(
                        f"admission queue is full ({depth} waiting)",
                        retry_after=self._overload_retry_after(depth),
                    )
                if self.tenant_quota is not None:
                    tenant_depth = self._queue.tenant_depth(tenant)
                    if tenant_depth >= self.tenant_quota:
                        self._shed(OverQuotaError.code)
                        self._obs.tenant_shed(tenant)
                        raise OverQuotaError(
                            f"tenant {tenant!r} is at its queue quota "
                            f"({tenant_depth}/{self.tenant_quota} waiting)",
                            retry_after=self._overload_retry_after(tenant_depth),
                        )
                self._observe_tenant(tenant)
                ticket = Ticket(
                    ticket_id=self._next_ticket,
                    submitted_at=now,
                    priority=priority,
                    deadline=deadline,
                )
                self._next_ticket += 1
                self._tickets[ticket.ticket_id] = ticket
                if idempotency_key is not None:
                    self._remember_key(idempotency_key, {"ticket_id": ticket.ticket_id})
                self._count("submitted")
                entry = QueuedRequest(
                    ticket_id=ticket.ticket_id,
                    request=request,
                    priority=priority,
                    deadline=deadline,
                    enqueued_at=now,
                    idempotency_key=idempotency_key,
                    trace_context=trace_context,
                    tenant=tenant,
                    shape=request_shape_key(request),
                )
                self._queue.push(entry)
                self._cond.notify()
        if dedup is not None:
            if wait:
                dedup.wait(wait_timeout)
            return dedup
        logger.debug(
            "submit ticket=%d kind=%s priority=%d timeout_s=%s idem=%s",
            ticket.ticket_id, type(request).__name__, priority, timeout_s,
            idempotency_key,
        )
        if wait:
            ticket.wait(wait_timeout)
        return ticket

    def _deduplicate(self, key: str, now: float) -> Optional[Ticket]:
        """An already-known decision/ticket for this key, if any (under lock)."""
        known = self._idem.get(key)
        if known is None:
            return None
        self._count("deduped")
        ticket_id = known.get("ticket_id")
        if ticket_id is not None:
            ticket = self._tickets.get(int(ticket_id))
            if ticket is not None:
                return ticket
        # Key recovered from the journal: synthesize a resolved ticket so
        # the retrying client gets the pre-crash decision, not a re-run.
        ticket = Ticket(ticket_id=self._next_ticket, submitted_at=now)
        self._next_ticket += 1
        request_id = known.get("request_id")
        ticket.resolve(
            str(known.get("outcome", OUTCOME_ERROR)),
            request_id=int(request_id) if request_id is not None else None,
            detail="deduplicated: decision recovered from the journal",
        )
        self._tickets[ticket.ticket_id] = ticket
        self._remember_key(key, {"ticket_id": ticket.ticket_id, **known})
        return ticket

    def _remember_key(self, key: str, decision: Dict[str, Any]) -> None:
        self._idem[key] = decision
        self._idem.move_to_end(key)
        self._trim_idempotency()

    def _trim_idempotency(self) -> None:
        while len(self._idem) > _IDEMPOTENCY_CAPACITY:
            self._idem.popitem(last=False)

    def _overload_retry_after(self, depth: int) -> float:
        """Backoff hint: expected drain time of the current backlog."""
        summary_mean = self.latencies.summary().get("mean_ms", 0.0) / 1000.0
        per_request = summary_mean if summary_mean > 0.0 else 0.005
        return min(5.0, max(0.05, depth * per_request / max(1, self.workers)))

    def release(self, request_id: int) -> bool:
        """Release an admitted tenancy; False when the id is not active.

        In batch mode a successful release requeues every parked request —
        the departure may have freed exactly the capacity they were
        waiting for.

        If the journal append fails, the release is rolled back (the
        tenancy is re-adopted) before the caller sees anything: the
        journal stays the single source of truth, and the service steps
        down the degradation ladder instead of acknowledging a release
        that recovery would silently undo.
        """
        with self._cond:
            self.gate("release")
            tenancy = self.manager.get_tenancy(request_id)
            if tenancy is None:
                return False
            FAILPOINTS.hit(FP_RELEASE_BEFORE_JOURNAL)
            self.manager.release(tenancy)
            if self.store is not None:
                try:
                    self.store.log_release(request_id)
                except InjectedCrash:
                    raise
                except Exception as exc:
                    self.manager.adopt(tenancy.allocation)
                    self._degrade(exc)
                    self._count("errors")
                    raise DegradedError(
                        f"release not journaled ({type(exc).__name__}); rolled back",
                        code=CODE_READ_ONLY,
                        retry_after=(
                            self._degradation.retry_after() if self._degradation else 1.0
                        ),
                    ) from exc
                FAILPOINTS.hit(FP_RELEASE_AFTER_JOURNAL)
            self._count("released")
            retried = 0
            if self.mode == MODE_BATCH:
                retried = self._queue.requeue_parked()
                self._count("retries", retried)
            self._maybe_snapshot()
            if retried:
                self._cond.notify_all()
        logger.debug("release request_id=%d retried=%d", request_id, retried)
        return True

    def resize(
        self,
        request_id: int,
        new_n: Optional[int] = None,
        new_mu: Optional[float] = None,
        new_sigma: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Resize an active tenancy; returns the decision payload.

        Runs :meth:`NetworkManager.resize` under the service lock with the
        same durability ordering as every other mutation: mutate, journal,
        and roll the mutation back if the journal append fails (the old
        allocation is re-adopted verbatim — memory never acknowledges a
        size the journal will not remember).  Idempotent per
        ``idempotency_key``: a retried resize returns the journaled
        decision instead of resizing twice.

        Resize outcomes never touch the admission counters or
        ``rejection_rate`` — they have their own tallies (``resized`` /
        ``resize_rejected`` and the manager's per-outcome counts).

        In batch mode an accepted shrink requeues parked requests: the
        freed capacity may be exactly what they were waiting for.
        """
        t0 = time.perf_counter()
        with self._cond:
            if not self._running:
                raise RuntimeError("service is not running")
            if idempotency_key is not None:
                known = self._idem.get(idempotency_key)
                if known is not None and known.get("resize"):
                    self._count("deduped")
                    return {
                        "outcome": str(known.get("outcome")),
                        "request_id": known.get("request_id"),
                        "detail": "deduplicated: decision already recorded",
                    }
            self.gate("resize")
            manager = self.manager
            stored = manager.get_tenancy(request_id)
            if stored is None:
                return {
                    "outcome": "unknown",
                    "request_id": request_id,
                    "detail": f"request {request_id} is not active",
                }
            old_allocation = stored.allocation
            FAILPOINTS.hit(FP_RESIZE_BEFORE_JOURNAL)
            result = manager.resize(
                request_id, new_n=new_n, new_mu=new_mu, new_sigma=new_sigma
            )
            if self.store is not None:
                try:
                    self.store.log_resize(
                        request_id,
                        result.outcome,
                        allocation=(
                            result.tenancy.allocation if result.accepted else None
                        ),
                        idempotency_key=idempotency_key,
                    )
                except InjectedCrash:
                    raise
                except Exception as exc:
                    # The journal will not remember this resize, so memory
                    # must forget it: swap the old allocation back in (the
                    # reverse resize always fits — it just vacated those
                    # resources) and undo the tally before degrading.
                    if result.accepted and result.tenancy.allocation is not old_allocation:
                        current = manager.get_tenancy(request_id)
                        manager.release(current)
                        manager.adopt(old_allocation)
                    manager.resize_counts[result.outcome] -= 1
                    self._degrade(exc)
                    self._count("errors")
                    flight_recorder().record(
                        "wal_error",
                        op="resize",
                        request_id=request_id,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    raise DegradedError(
                        f"resize not journaled ({type(exc).__name__}); rolled back",
                        code=CODE_READ_ONLY,
                        retry_after=(
                            self._degradation.retry_after() if self._degradation else 1.0
                        ),
                    ) from exc
                FAILPOINTS.hit(FP_RESIZE_AFTER_JOURNAL)
            if idempotency_key is not None:
                self._remember_key(
                    idempotency_key,
                    {
                        "resize": True,
                        "outcome": result.outcome,
                        "request_id": request_id,
                    },
                )
            self._count("resized" if result.accepted else "resize_rejected")
            self._obs.resize(result.outcome, time.perf_counter() - t0)
            retried = 0
            if result.accepted and self.mode == MODE_BATCH:
                retried = self._queue.requeue_parked()
                self._count("retries", retried)
            self._maybe_snapshot()
            if retried:
                self._cond.notify_all()
            flight_recorder().record(
                "resize",
                outcome=result.outcome,
                request_id=request_id,
                n_vms=result.tenancy.n_vms,
            )
            payload: Dict[str, Any] = {
                "outcome": result.outcome,
                "request_id": request_id,
                "n_vms": result.tenancy.n_vms,
            }
            if result.detail:
                payload["detail"] = result.detail
        logger.debug(
            "resize request_id=%d outcome=%s retried=%d",
            request_id, result.outcome, retried,
        )
        return payload

    def adopt(
        self,
        allocation,
        idempotency_key: Optional[str] = None,
        trace_context: Optional[TraceContext] = None,
    ) -> int:
        """Install an already-placed allocation; returns its local request id.

        This is the cluster coordinator's entry point for cross-shard
        fragments: the placement was computed elsewhere (against a replica
        of this shard's state), so no allocator runs here — but the
        placement is **revalidated** under the service lock before it
        commits.  If a concurrent shard-local admission consumed the slots
        or the link headroom in the meantime, :class:`ConflictError` is
        raised and nothing is touched (the optimistic-concurrency abort
        path of the two-phase protocol).

        Same durability ordering as the worker path: mutate, journal, and
        roll back the mutation if the journal append fails.  Idempotent per
        ``idempotency_key`` — a retried adopt returns the original local id
        instead of committing a second copy.
        """
        adopt_t0 = time.perf_counter()
        with self._cond:
            if not self._running:
                raise RuntimeError("service is not running")
            if idempotency_key is not None:
                known = self._idem.get(idempotency_key)
                if (
                    known is not None
                    and known.get("outcome") == OUTCOME_ADMITTED
                    and known.get("request_id") is not None
                ):
                    self._count("deduped")
                    return int(known["request_id"])
            self.gate("submit")
            manager = self.manager
            state = manager.state
            for machine_id, count in allocation.machine_counts.items():
                if state.free_slots(machine_id) < count:
                    raise ConflictError(
                        f"machine {machine_id} lacks {count} free slots"
                    )
            for link_id, demand in allocation.link_demands.items():
                if allocation.deterministic:
                    extra = dict(extra_deterministic=demand.mean)
                else:
                    extra = dict(extra_mean=demand.mean, extra_var=demand.variance)
                occupancy = state.links[link_id].occupancy_with(
                    state.risk_c, **extra
                )
                if occupancy >= 1.0:
                    raise ConflictError(
                        f"link {link_id} would reach O_L={occupancy:.4f}"
                    )
            local = dataclasses.replace(
                allocation, request_id=manager.next_request_id
            )
            tenancy = manager.adopt(local)
            manager.admitted_count += 1
            if self.store is not None:
                FAILPOINTS.hit(FP_WORKER_BEFORE_JOURNAL)
                try:
                    self.store.log_admit(local, idempotency_key=idempotency_key)
                except InjectedCrash:
                    raise
                except Exception as exc:
                    manager.release(tenancy)
                    manager.admitted_count -= 1
                    self._degrade(exc)
                    self._count("errors")
                    raise DegradedError(
                        f"adopt not journaled ({type(exc).__name__}); rolled back",
                        code=CODE_READ_ONLY,
                        retry_after=(
                            self._degradation.retry_after() if self._degradation else 1.0
                        ),
                    ) from exc
                FAILPOINTS.hit(FP_WORKER_AFTER_JOURNAL)
            if idempotency_key is not None:
                self._remember_key(
                    idempotency_key,
                    {
                        "ticket_id": None,
                        "outcome": OUTCOME_ADMITTED,
                        "request_id": local.request_id,
                    },
                )
            self._count("admitted")
            self._maybe_snapshot()
            if trace_context is not None and trace_context.sampled:
                record_remote_span(
                    trace_context.trace_id,
                    {
                        "name": "shard_adopt",
                        "duration_ms": 1000.0 * (time.perf_counter() - adopt_t0),
                        "request_id": local.request_id,
                    },
                )
            flight_recorder().record(
                "admission",
                outcome=OUTCOME_ADMITTED,
                adopted=True,
                request_id=local.request_id,
            )
            return local.request_id

    def status(self, ticket_id: int) -> Optional[Dict[str, Any]]:
        with self._cond:
            ticket = self._tickets.get(ticket_id)
        return ticket.describe() if ticket is not None else None

    def lookup_idempotency(self, key: str) -> Optional[Dict[str, Any]]:
        """The recorded decision for an idempotency key, if any (a copy).

        Used by the cluster coordinator's recovery to resolve in-flight
        keys against what this shard actually journaled before a crash.
        """
        with self._cond:
            known = self._idem.get(key)
            return dict(known) if known is not None else None

    def active_request_ids(self) -> List[int]:
        with self._cond:
            return [tenancy.request_id for tenancy in self.manager.tenancies()]

    def stats(self) -> Dict[str, Any]:
        """The metrics payload of the ``stats`` endpoint."""
        with self._cond:
            manager = self.manager
            levels = [
                {
                    "level": row.level,
                    "label": row.label,
                    "links": row.num_links,
                    "mean_occupancy": row.mean_occupancy,
                    "max_occupancy": row.max_occupancy,
                    "mean_deterministic_share": row.mean_deterministic_share,
                }
                for row in utilization_by_level(manager.state)
            ]
            return {
                "mode": self.mode,
                "workers": self.workers,
                "uptime_s": self.clock() - self._started_at,
                "counters": self.counters.as_dict(),
                "admitted_total": manager.admitted_count,
                "rejected_total": manager.rejected_count,
                "rejection_rate": manager.rejection_rate(),
                "rejections_by_allocator": dict(manager.rejections_by_allocator),
                "resizes": dict(manager.resize_counts),
                "active_tenancies": manager.active_tenancies,
                "queue": {
                    "ready": self._queue.ready_count,
                    "parked": self._queue.parked_count,
                    "limit": self.max_queue_depth,
                },
                "batching": {
                    "batch_max": self.batch_max,
                    "linger_s": self.batch_linger_s,
                    "batches": self.counters.batches,
                    "coalesced": self.counters.coalesced,
                    "coalesce_ratio": self.coalesce_ratio(),
                },
                "tenants": {
                    "quota": self.tenant_quota,
                    "depths": self._queue.tenant_depths(),
                    "weights": {
                        tenant: self._queue.weight_of(tenant)
                        for tenant in sorted(self._known_tenants)
                    },
                },
                "degradation": (
                    self._degradation.describe()
                    if self._degradation is not None
                    else {"state": STATE_FULL}
                ),
                "idempotency": {"keys": len(self._idem)},
                "admission_latency": self.latencies.summary(),
                "occupancy": {
                    "max": manager.max_occupancy(),
                    "by_level": levels,
                },
                "slots": {
                    "total": manager.state.total_slots,
                    "used": manager.state.used_slots,
                    "free": manager.state.total_free_slots,
                },
                "durability": self._durability_info(),
            }

    def metrics(self) -> Dict[str, Any]:
        """The payload of the ``metrics`` endpoint.

        Both views render from the process-global registry: ``metrics`` is
        the JSON snapshot (rides the line-JSON protocol as-is), and
        ``prometheus`` is the text exposition (version 0.0.4) for scrapers.
        Rendered *without* the service lock — the pull gauges take it
        themselves where they need consistency.
        """
        registry = global_registry()
        return {
            "metrics": registry.snapshot(),
            "prometheus": registry.render_prometheus(),
        }

    def _durability_info(self) -> Dict[str, Any]:
        if self.store is None:
            return {"enabled": False}
        return {
            "enabled": True,
            "directory": str(self.store.directory),
            "journal_seq": self.store.journal.next_seq - 1,
            "snapshot_every": self.store.snapshot_every,
        }

    def take_snapshot(self) -> Optional[str]:
        """Force a snapshot now (returns its path, or None without a store)."""
        with self._cond:
            if self.store is None:
                return None
            return str(self.store.write_snapshot(snapshot_payload(self.manager)))

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            batch: List[QueuedRequest] = []
            expired: List[QueuedRequest] = []
            decisions: List[Optional[Tuple]] = []
            try:
                with self._cond:
                    entry = None
                    while self._running:
                        now = self.clock()
                        if self._degradation is not None and self._degradation.should_probe(now):
                            self._probe_journal()
                        entry, drained = self._queue.pop_ready(now)
                        expired = drained + self._queue.expire(now)
                        if expired:
                            self._count("expired", len(expired))
                        if entry is not None or expired:
                            break
                        self._cond.wait(timeout=_IDLE_SWEEP_INTERVAL)
                    if not self._running and entry is None and not expired:
                        return
                    if entry is not None:
                        batch.append(entry)
                        self._coalesce(batch, expired)
                        decisions = self._attempt_batch(batch)
            except InjectedCrash as crash:
                # Simulated process death (chaos harness): freeze the whole
                # service — no ticket resolution, no drain, no snapshot.
                # The in-flight entries stay unacknowledged, exactly like
                # requests caught mid-flight by a real crash.
                with self._cond:
                    self._running = False
                    self.crashed = True
                    self._cond.notify_all()
                recorder = flight_recorder()
                recorder.record("crash", error=str(crash))
                recorder.maybe_dump("crash")
                logger.warning("worker crashed by injected fault: %s", crash)
                return
            # Tickets are resolved outside the lock: Event.set wakes the
            # submitting thread, which may immediately call back into the
            # service (status/release) and would contend on the lock.
            for dead in expired:
                self._resolve(dead, OUTCOME_EXPIRED, detail="deadline passed")
            for member, decision in zip(batch, decisions):
                if decision is not None:
                    outcome, request_id, detail = decision
                    self._resolve(
                        member, outcome, request_id=request_id, detail=detail
                    )

    def _coalesce(self, batch: List[QueuedRequest], expired: List[QueuedRequest]) -> None:
        """Grow ``batch`` with consecutive same-shape entries (under lock).

        Only entries the fair queue would serve *next anyway* are taken
        (:meth:`FairRequestQueue.pop_compatible`), so the batch is exactly a
        prefix of the sequential serving order — the keystone of the
        batched-equals-unbatched decision guarantee.  When the queue runs
        empty below ``batch_max``, the worker lingers up to
        ``batch_linger_s`` for more same-shape arrivals; a different-shape
        head always dispatches immediately (waiting could not legally skip
        past it).
        """
        if self.batch_max <= 1:
            return
        leader_shape = batch[0].shape
        linger_deadline = self.clock() + self.batch_linger_s
        while len(batch) < self.batch_max and self._running:
            now = self.clock()
            more, drained = self._queue.pop_compatible(leader_shape, now)
            if drained:
                expired.extend(drained)
                self._count("expired", len(drained))
            if more is not None:
                batch.append(more)
                continue
            if self._queue.ready_count > 0:
                break
            remaining = linger_deadline - now
            if remaining <= 0.0:
                break
            self._cond.wait(timeout=min(remaining, _IDLE_SWEEP_INTERVAL))

    def _attempt_batch(
        self, batch: List[QueuedRequest]
    ) -> List[Optional[Tuple]]:
        """Drive one coalesced batch through the allocator (under lock).

        Everything except the DP tables stays strictly per-request: each
        member journals its own admit/reject record, parks individually in
        batch mode, and an allocator/journal failure poisons only its own
        ticket.  The shared batch context is an amortization, proven
        decision-neutral by contract (see ``Allocator.batch_context``).
        """
        now = self.clock()
        context = self.manager.batch_context() if len(batch) > 1 else None
        self._count("batches")
        if len(batch) > 1:
            self._count("coalesced", len(batch) - 1)
        self._obs.observe_batch(len(batch))
        decisions: List[Optional[Tuple]] = []
        for entry in batch:
            try:
                decisions.append(self._attempt(entry, now, batch=context))
            except InjectedCrash:
                raise
            except Exception as exc:  # journal I/O etc. — fail the
                # request, keep the worker alive for the next one
                self._count("errors")
                self._forget_key(entry.idempotency_key)
                logger.warning(
                    "ticket=%d failed during admission: %s",
                    entry.ticket_id, exc, exc_info=True,
                )
                decisions.append(
                    (OUTCOME_ERROR, None, f"{type(exc).__name__}: {exc}")
                )
        return decisions

    def _attempt(self, entry: QueuedRequest, now: float, batch=None):
        """Try one admission under the lock; None means parked for retry."""
        entry.attempts += 1
        manager = self.manager
        probe_id = manager.next_request_id
        context = TraceContext.from_dict(entry.trace_context) if isinstance(
            entry.trace_context, dict
        ) else entry.trace_context
        allocate_t0 = time.perf_counter()
        try:
            # Activating the distributed-trace context forces the allocator's
            # own sampled tracer live, so a cross-process trace never loses
            # its shard leg to local every-Nth sampling.
            with activate_context(context):
                tenancy: Optional[Tenancy] = manager.request(
                    entry.request, batch=batch
                )
        except Exception as exc:  # allocator bug — fail the request, not the worker
            self._count("errors")
            self._forget_key(entry.idempotency_key)
            logger.warning(
                "ticket=%d allocator raised: %s", entry.ticket_id, exc, exc_info=True
            )
            return (OUTCOME_ERROR, None, f"{type(exc).__name__}: {exc}")
        if context is not None and context.sampled:
            record_remote_span(
                context.trace_id,
                {
                    "name": "shard_allocate",
                    "duration_ms": 1000.0 * (time.perf_counter() - allocate_t0),
                    "admitted": tenancy is not None,
                },
            )
        if tenancy is not None:
            if self.store is not None:
                FAILPOINTS.hit(FP_WORKER_BEFORE_JOURNAL)
                try:
                    self.store.log_admit(
                        tenancy.allocation, idempotency_key=entry.idempotency_key
                    )
                except InjectedCrash:
                    raise
                except Exception as exc:
                    # The journal will not remember this admission, so
                    # memory must forget it too: roll back the tenancy
                    # (and the admitted counter request() bumped) before
                    # anyone is acknowledged, then degrade.
                    manager.release(tenancy)
                    manager.admitted_count -= 1
                    self._forget_key(entry.idempotency_key)
                    self._degrade(exc)
                    self._count("errors")
                    flight_recorder().record(
                        "wal_error",
                        op="admit",
                        ticket=entry.ticket_id,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    logger.warning(
                        "ticket=%d admission rolled back (journal append failed: %s)",
                        entry.ticket_id, exc,
                    )
                    return (
                        OUTCOME_ERROR,
                        None,
                        f"journal unavailable ({type(exc).__name__}); "
                        "admission rolled back",
                    )
                FAILPOINTS.hit(FP_WORKER_AFTER_JOURNAL)
            self._record_decision(entry, OUTCOME_ADMITTED, tenancy.request_id)
            self._count("admitted")
            self._observe_latency(self.clock() - entry.enqueued_at)
            self._maybe_snapshot()
            flight_recorder().record(
                "admission",
                outcome=OUTCOME_ADMITTED,
                ticket=entry.ticket_id,
                request_id=tenancy.request_id,
                attempts=entry.attempts,
            )
            return (OUTCOME_ADMITTED, tenancy.request_id, None)
        if self.mode == MODE_BATCH and not entry.expired(self.clock()):
            self._queue.park(entry)
            return None
        if self.store is not None:
            try:
                self.store.log_reject(
                    request_to_dict(entry.request),
                    request_id=probe_id,
                    idempotency_key=entry.idempotency_key,
                )
            except InjectedCrash:
                raise
            except Exception as exc:
                # Rejections never touched link state, so there is nothing
                # to roll back — degrade and still answer the client (the
                # only divergence recovery can see is the reject counter).
                self._degrade(exc)
                flight_recorder().record(
                    "wal_error",
                    op="reject",
                    ticket=entry.ticket_id,
                    error=f"{type(exc).__name__}: {exc}",
                )
                logger.warning("reject not journaled: %s", exc)
        self._record_decision(entry, OUTCOME_REJECTED, None)
        self._count("rejected")
        self._observe_latency(self.clock() - entry.enqueued_at)
        self._maybe_snapshot()
        rejected_by = manager.last_rejection_allocator
        detail = (
            f"no valid placement (allocator={rejected_by})"
            if rejected_by
            else "no valid placement"
        )
        flight_recorder().record(
            "admission",
            outcome=OUTCOME_REJECTED,
            ticket=entry.ticket_id,
            reason=rejected_by or "no_valid_placement",
            attempts=entry.attempts,
        )
        return (OUTCOME_REJECTED, None, detail)

    def _record_decision(
        self, entry: QueuedRequest, outcome: str, request_id: Optional[int]
    ) -> None:
        """Pin the decision to the entry's idempotency key (under lock)."""
        if entry.idempotency_key is not None:
            self._remember_key(
                entry.idempotency_key,
                {
                    "ticket_id": entry.ticket_id,
                    "outcome": outcome,
                    "request_id": request_id,
                },
            )

    def _forget_key(self, key: Optional[str]) -> None:
        if key is not None:
            self._idem.pop(key, None)

    def _maybe_snapshot(self) -> None:
        """Opportunistic snapshot; never fatal (the journal is the truth)."""
        if self.store is not None and self.store.should_snapshot():
            try:
                self.store.write_snapshot(snapshot_payload(self.manager))
            except InjectedCrash:
                raise
            except Exception as exc:
                self._count("errors")
                logger.warning("snapshot failed (journal remains truth): %s", exc)

    def _resolve(self, entry: QueuedRequest, outcome: str, request_id=None, detail=None):
        with self._cond:
            ticket = self._tickets.get(entry.ticket_id)
        if ticket is not None:
            latency = self.clock() - entry.enqueued_at
            ticket.resolve(outcome, request_id=request_id, detail=detail, latency=latency)
            logger.debug(
                "ticket=%d outcome=%s request_id=%s attempts=%d latency_ms=%.3f",
                entry.ticket_id, outcome, request_id, entry.attempts, 1000.0 * latency,
            )
