"""Thread-safe admission front-end: worker pool, tickets, statistics.

:class:`AdmissionService` is the serving layer around a single
:class:`~repro.manager.network_manager.NetworkManager`.  One condition
variable guards the manager, the queue and the journal together, so the
journal's record order is exactly the order state mutations were applied —
the invariant crash recovery relies on.  Worker threads drain the queue,
run the allocator under the lock (admission control is inherently serial:
each decision depends on the link state the previous one produced), and
resolve the submitting client's :class:`Ticket`.

Durability ordering: state is mutated first, then the event is journaled,
both under the lock, and the ticket is resolved only after the journal
append returns.  A crash can lose at most the final un-acknowledged
operation; everything a client saw acknowledged is recoverable.
"""

from __future__ import annotations

import logging
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.abstractions.requests import VirtualClusterRequest
from repro.manager.network_manager import NetworkManager, Tenancy
from repro.network.snapshot import utilization_by_level
from repro.obs.instruments import global_registry, service_instruments
from repro.service.codec import request_from_dict, request_to_dict
from repro.service.journal import DurabilityStore
from repro.service.queue import (
    MODE_BATCH,
    MODE_ONLINE,
    MODES,
    QueuedRequest,
    RequestQueue,
)
from repro.service.recovery import snapshot_payload

logger = logging.getLogger(__name__)

OUTCOME_ADMITTED = "admitted"
OUTCOME_REJECTED = "rejected"
OUTCOME_EXPIRED = "expired"
OUTCOME_QUEUED = "queued"
OUTCOME_SHUTDOWN = "shutdown"
OUTCOME_ERROR = "error"

#: How long an idle worker sleeps before re-checking deadlines (seconds).
_IDLE_SWEEP_INTERVAL = 0.05


class LatencyWindow:
    """Bounded reservoir of recent latency samples for percentile stats.

    Percentiles are computed over only the last ``maxlen`` samples while the
    mean covers the whole lifetime — the ``window``/``window_limit`` fields
    in :meth:`summary` make that caveat machine-visible.  Every reported
    number is a finite ``float >= 0.0`` regardless of how few samples exist
    (empty and one-sample windows degrade to zeros / the single sample, not
    ``NaN`` or ``None``), so the payload is always JSON-safe.
    """

    def __init__(self, maxlen: int = 4096) -> None:
        self._maxlen = maxlen
        self._samples: deque = deque(maxlen=maxlen)
        self._count = 0
        self._total = 0.0

    def observe(self, seconds: float) -> None:
        # Non-finite or negative samples (clock anomalies) would poison
        # every percentile in the window; clamp them to zero instead.
        if not math.isfinite(seconds) or seconds < 0.0:
            seconds = 0.0
        self._samples.append(seconds)
        self._count += 1
        self._total += seconds

    def summary(self, percentiles=(50, 90, 99)) -> Dict[str, float]:
        """Percentiles (over the window) and lifetime mean, in milliseconds."""
        result: Dict[str, float] = {"count": self._count}
        result["window"] = len(self._samples)
        result["window_limit"] = self._maxlen
        result["mean_ms"] = 1000.0 * self._total / self._count if self._count else 0.0
        ordered = sorted(self._samples)
        for pct in percentiles:
            if not ordered:
                result[f"p{pct}_ms"] = 0.0
                continue
            rank = min(len(ordered) - 1, max(0, round(pct / 100.0 * (len(ordered) - 1))))
            result[f"p{pct}_ms"] = 1000.0 * ordered[rank]
        return result


@dataclass
class ServiceCounters:
    """Lifetime event counters of one service instance (not persisted)."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    expired: int = 0
    released: int = 0
    retries: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class Ticket:
    """A client's handle on one submitted request."""

    ticket_id: int
    submitted_at: float
    priority: int = 0
    deadline: Optional[float] = None
    outcome: Optional[str] = None
    request_id: Optional[int] = None
    detail: Optional[str] = None
    latency: Optional[float] = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    def resolve(
        self,
        outcome: str,
        request_id: Optional[int] = None,
        detail: Optional[str] = None,
        latency: Optional[float] = None,
    ) -> None:
        self.outcome = outcome
        self.request_id = request_id
        self.detail = detail
        self.latency = latency
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the request is decided; False on timeout."""
        return self._done.wait(timeout)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def describe(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "ticket": self.ticket_id,
            "outcome": self.outcome if self.done else OUTCOME_QUEUED,
        }
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.detail:
            payload["detail"] = self.detail
        if self.latency is not None:
            payload["latency_ms"] = 1000.0 * self.latency
        return payload


class AdmissionService:
    """Durable, concurrent admission control over one ``NetworkManager``.

    Parameters
    ----------
    manager:
        The (single-threaded) manager to serve; may already hold state,
        e.g. when constructed by :func:`repro.service.recovery.recover_manager`.
    store:
        Optional :class:`DurabilityStore`; without it the service runs
        in-memory only (useful for benchmarks and simulations).
    mode:
        ``"online"`` drops rejected requests immediately; ``"batch"``
        parks them for retry on departures (Section VI-B semantics).
    workers:
        Worker threads draining the queue.  Admission decisions serialize
        on the manager lock regardless; extra workers overlap protocol
        handling, journaling and ticket resolution with allocator runs.
    """

    def __init__(
        self,
        manager: NetworkManager,
        store: Optional[DurabilityStore] = None,
        mode: str = MODE_ONLINE,
        workers: int = 2,
        clock: Callable[[], float] = time.monotonic,
        latency_window: int = 4096,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown service mode {mode!r}; choose from {MODES}")
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.manager = manager
        self.store = store
        self.mode = mode
        self.workers = workers
        self.clock = clock
        self.counters = ServiceCounters()
        self.latencies = LatencyWindow(maxlen=latency_window)
        self._cond = threading.Condition()
        self._queue = RequestQueue(mode)
        self._tickets: Dict[int, Ticket] = {}
        self._next_ticket = 1
        self._threads: List[threading.Thread] = []
        self._running = False
        self._started_at = self.clock()
        # Mirror every counter/latency observation onto the process-global
        # metric registry and expose queue depth, uptime and the network
        # guarantee-health gauges through it (pull-style: the callbacks run
        # only when the metrics endpoint renders).
        self._obs = service_instruments()
        self._obs.bind_service(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "AdmissionService":
        with self._cond:
            if self._running:
                return self
            self._running = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"admission-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        logger.info(
            "admission service started: mode=%s workers=%d durable=%s",
            self.mode, self.workers, self.store is not None,
        )
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop workers and resolve every still-queued ticket as shutdown."""
        with self._cond:
            if not self._running:
                return
            self._running = False
            abandoned = self._queue.drain()
            self._cond.notify_all()
        for entry in abandoned:
            self._resolve(entry, OUTCOME_SHUTDOWN, detail="service stopped")
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()
        logger.info(
            "admission service stopped: %d queued request(s) abandoned", len(abandoned)
        )

    def __enter__(self) -> "AdmissionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    @property
    def started_at(self) -> float:
        """Clock reading at construction (uptime reference for gauges)."""
        return self._started_at

    def queue_depths(self) -> Tuple[int, int]:
        """Current ``(ready, parked)`` queue depths, read under the lock."""
        with self._cond:
            return self._queue.ready_count, self._queue.parked_count

    def _count(self, event: str, amount: int = 1) -> None:
        """Bump one lifetime counter and its registry mirror together."""
        setattr(self.counters, event, getattr(self.counters, event) + amount)
        self._obs.event(event, amount)

    def _observe_latency(self, seconds: float) -> None:
        self.latencies.observe(seconds)
        self._obs.observe_latency(seconds)

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    def submit(
        self,
        request: Union[VirtualClusterRequest, Dict[str, Any]],
        priority: int = 0,
        timeout_s: Optional[float] = None,
        wait: bool = True,
        wait_timeout: Optional[float] = None,
    ) -> Ticket:
        """Enqueue a tenant request; optionally block for the decision.

        ``timeout_s`` is the request's *deadline* relative to now: in batch
        mode a parked request expires once it passes; in online mode it
        only matters if the request expires before a worker first reaches
        it.  ``wait_timeout`` bounds how long *this call* blocks — the
        request itself stays queued when the wait times out.
        """
        if isinstance(request, dict):
            request = request_from_dict(request)
        now = self.clock()
        deadline = now + timeout_s if timeout_s is not None else None
        with self._cond:
            if not self._running:
                raise RuntimeError("service is not running")
            ticket = Ticket(
                ticket_id=self._next_ticket,
                submitted_at=now,
                priority=priority,
                deadline=deadline,
            )
            self._next_ticket += 1
            self._tickets[ticket.ticket_id] = ticket
            self._count("submitted")
            entry = QueuedRequest(
                ticket_id=ticket.ticket_id,
                request=request,
                priority=priority,
                deadline=deadline,
                enqueued_at=now,
            )
            self._queue.push(entry)
            self._cond.notify()
        logger.debug(
            "submit ticket=%d kind=%s priority=%d timeout_s=%s",
            ticket.ticket_id, type(request).__name__, priority, timeout_s,
        )
        if wait:
            ticket.wait(wait_timeout)
        return ticket

    def release(self, request_id: int) -> bool:
        """Release an admitted tenancy; False when the id is not active.

        In batch mode a successful release requeues every parked request —
        the departure may have freed exactly the capacity they were
        waiting for.
        """
        with self._cond:
            tenancy = self.manager.get_tenancy(request_id)
            if tenancy is None:
                return False
            self.manager.release(tenancy)
            if self.store is not None:
                self.store.log_release(request_id)
            self._count("released")
            retried = 0
            if self.mode == MODE_BATCH:
                retried = self._queue.requeue_parked()
                self._count("retries", retried)
            self._maybe_snapshot()
            if retried:
                self._cond.notify_all()
        logger.debug("release request_id=%d retried=%d", request_id, retried)
        return True

    def status(self, ticket_id: int) -> Optional[Dict[str, Any]]:
        with self._cond:
            ticket = self._tickets.get(ticket_id)
        return ticket.describe() if ticket is not None else None

    def active_request_ids(self) -> List[int]:
        with self._cond:
            return [tenancy.request_id for tenancy in self.manager.tenancies()]

    def stats(self) -> Dict[str, Any]:
        """The metrics payload of the ``stats`` endpoint."""
        with self._cond:
            manager = self.manager
            levels = [
                {
                    "level": row.level,
                    "label": row.label,
                    "links": row.num_links,
                    "mean_occupancy": row.mean_occupancy,
                    "max_occupancy": row.max_occupancy,
                    "mean_deterministic_share": row.mean_deterministic_share,
                }
                for row in utilization_by_level(manager.state)
            ]
            return {
                "mode": self.mode,
                "workers": self.workers,
                "uptime_s": self.clock() - self._started_at,
                "counters": self.counters.as_dict(),
                "admitted_total": manager.admitted_count,
                "rejected_total": manager.rejected_count,
                "rejection_rate": manager.rejection_rate(),
                "rejections_by_allocator": dict(manager.rejections_by_allocator),
                "active_tenancies": manager.active_tenancies,
                "queue": {
                    "ready": self._queue.ready_count,
                    "parked": self._queue.parked_count,
                },
                "admission_latency": self.latencies.summary(),
                "occupancy": {
                    "max": manager.max_occupancy(),
                    "by_level": levels,
                },
                "slots": {
                    "total": manager.state.total_slots,
                    "used": manager.state.used_slots,
                    "free": manager.state.total_free_slots,
                },
                "durability": self._durability_info(),
            }

    def metrics(self) -> Dict[str, Any]:
        """The payload of the ``metrics`` endpoint.

        Both views render from the process-global registry: ``metrics`` is
        the JSON snapshot (rides the line-JSON protocol as-is), and
        ``prometheus`` is the text exposition (version 0.0.4) for scrapers.
        Rendered *without* the service lock — the pull gauges take it
        themselves where they need consistency.
        """
        registry = global_registry()
        return {
            "metrics": registry.snapshot(),
            "prometheus": registry.render_prometheus(),
        }

    def _durability_info(self) -> Dict[str, Any]:
        if self.store is None:
            return {"enabled": False}
        return {
            "enabled": True,
            "directory": str(self.store.directory),
            "journal_seq": self.store.journal.next_seq - 1,
            "snapshot_every": self.store.snapshot_every,
        }

    def take_snapshot(self) -> Optional[str]:
        """Force a snapshot now (returns its path, or None without a store)."""
        with self._cond:
            if self.store is None:
                return None
            return str(self.store.write_snapshot(snapshot_payload(self.manager)))

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            entry = None
            expired: List[QueuedRequest] = []
            decision = None
            with self._cond:
                while self._running:
                    now = self.clock()
                    entry, drained = self._queue.pop_ready(now)
                    expired = drained + self._queue.expire(now)
                    if expired:
                        self._count("expired", len(expired))
                    if entry is not None or expired:
                        break
                    self._cond.wait(timeout=_IDLE_SWEEP_INTERVAL)
                if not self._running and entry is None and not expired:
                    return
                if entry is not None:
                    try:
                        decision = self._attempt(entry, now)
                    except Exception as exc:  # journal I/O etc. — fail the
                        # request, keep the worker alive for the next one
                        self._count("errors")
                        logger.warning(
                            "ticket=%d failed during admission: %s",
                            entry.ticket_id, exc, exc_info=True,
                        )
                        decision = (OUTCOME_ERROR, None, f"{type(exc).__name__}: {exc}")
            # Tickets are resolved outside the lock: Event.set wakes the
            # submitting thread, which may immediately call back into the
            # service (status/release) and would contend on the lock.
            for dead in expired:
                self._resolve(dead, OUTCOME_EXPIRED, detail="deadline passed")
            if entry is not None and decision is not None:
                outcome, request_id, detail = decision
                self._resolve(entry, outcome, request_id=request_id, detail=detail)

    def _attempt(self, entry: QueuedRequest, now: float):
        """Try one admission under the lock; None means parked for retry."""
        entry.attempts += 1
        manager = self.manager
        probe_id = manager.next_request_id
        try:
            tenancy: Optional[Tenancy] = manager.request(entry.request)
        except Exception as exc:  # allocator bug — fail the request, not the worker
            self._count("errors")
            logger.warning(
                "ticket=%d allocator raised: %s", entry.ticket_id, exc, exc_info=True
            )
            return (OUTCOME_ERROR, None, f"{type(exc).__name__}: {exc}")
        if tenancy is not None:
            if self.store is not None:
                self.store.log_admit(tenancy.allocation)
            self._count("admitted")
            self._observe_latency(self.clock() - entry.enqueued_at)
            self._maybe_snapshot()
            return (OUTCOME_ADMITTED, tenancy.request_id, None)
        if self.mode == MODE_BATCH and not entry.expired(self.clock()):
            self._queue.park(entry)
            return None
        if self.store is not None:
            self.store.log_reject(request_to_dict(entry.request), request_id=probe_id)
        self._count("rejected")
        self._observe_latency(self.clock() - entry.enqueued_at)
        self._maybe_snapshot()
        rejected_by = manager.last_rejection_allocator
        detail = (
            f"no valid placement (allocator={rejected_by})"
            if rejected_by
            else "no valid placement"
        )
        return (OUTCOME_REJECTED, None, detail)

    def _maybe_snapshot(self) -> None:
        if self.store is not None and self.store.should_snapshot():
            self.store.write_snapshot(snapshot_payload(self.manager))

    def _resolve(self, entry: QueuedRequest, outcome: str, request_id=None, detail=None):
        with self._cond:
            ticket = self._tickets.get(entry.ticket_id)
        if ticket is not None:
            latency = self.clock() - entry.enqueued_at
            ticket.resolve(outcome, request_id=request_id, detail=detail, latency=latency)
            logger.debug(
                "ticket=%d outcome=%s request_id=%s attempts=%d latency_ms=%.3f",
                entry.ticket_id, outcome, request_id, entry.attempts, 1000.0 * latency,
            )
