"""Line-delimited JSON TCP server for the admission service.

Protocol: one JSON object per line in each direction, UTF-8, ``\\n``
terminated.  Every response carries ``"ok"``; failures add ``"error"``.

Operations::

    {"op": "ping"}
    {"op": "submit", "request": {...}, "priority": 0, "tenant": "gold",
     "timeout_s": 5.0, "wait": true, "wait_timeout": 10.0}
    {"op": "status", "ticket": 7}
    {"op": "release", "request_id": 3}
    {"op": "resize", "request_id": 3, "new_n": 12, "new_mu": 250.0,
     "new_sigma": 90.0, "idem": "client-key"}
    {"op": "stats"}
    {"op": "metrics"}
    {"op": "obs", "dump": false}
    {"op": "snapshot"}
    {"op": "shutdown"}

Request payloads are the :mod:`repro.service.codec` request encoding, e.g.
``{"kind": "homogeneous", "n_vms": 8, "mean": 200.0, "std": 80.0}``.

Two wire-compatible front ends serve this protocol: the default ``asyncio``
accept/decode loop over a bounded worker pool (:mod:`repro.service.aio`)
and the classic thread-per-connection :mod:`socketserver` handler kept here
(``--frontend threaded``).  This module owns the shared op table
(:func:`dispatch_command`) and error envelope (:func:`error_response`), so
the two cannot drift.  ``svc-repro serve`` wires either behind the CLI and
prints a single machine-readable ready line so scripts and tests can
discover the bound port::

    {"event": "ready", "host": "127.0.0.1", "port": 40123, "pid": 1234, ...}
"""

from __future__ import annotations

import argparse
import itertools
import json
import logging
import os
import signal
import socket
import socketserver
import sys
import threading
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.allocation.dispatch import ALLOCATOR_FACTORIES, allocator_by_name
from repro.experiments.config import SCALES
from repro.faults.failpoints import FAILPOINTS, FP_SERVER_RESPONSE, arm_from_spec
from repro.logconfig import LOG_LEVELS, setup_logging
from repro.manager.network_manager import NetworkManager
from repro.obs.flightrec import configure_flight_recorder, flight_recorder
from repro.obs.instruments import admission_instruments
from repro.obs.instruments import configure as configure_obs
from repro.obs.instruments import outage_monitor
from repro.service.codec import CodecError
from repro.service.concurrency import AdmissionService
from repro.service.degrade import DegradationLadder
from repro.service.errors import ServiceError
from repro.service.journal import DurabilityStore
from repro.service.queue import MODE_ONLINE, MODES
from repro.service.recovery import recover_manager, snapshot_payload
from repro.topology.builder import build_datacenter

logger = logging.getLogger(__name__)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7421

FRONTEND_ASYNC = "async"
FRONTEND_THREADED = "threaded"
FRONTENDS = (FRONTEND_ASYNC, FRONTEND_THREADED)

#: Process-wide protocol request ids, threaded through the handler logs so
#: one request can be correlated across server, worker and journal lines.
_REQUEST_IDS = itertools.count(1)


def error_response(exc: BaseException) -> Dict[str, Any]:
    """The ``ok: false`` envelope for one failed protocol op.

    Typed :class:`ServiceError` sheds keep their machine-readable ``code``
    and ``retry_after`` hint; codec errors surface their message; anything
    else is reported by exception type without killing the connection.
    Shared by the threaded and async front doors so the wire contract
    cannot drift between them.
    """
    if isinstance(exc, ServiceError):
        response: Dict[str, Any] = {"ok": False, "error": str(exc)}
        if exc.code is not None:
            response["code"] = exc.code
        if exc.retry_after is not None:
            response["retry_after"] = exc.retry_after
        return response
    if isinstance(exc, CodecError):
        return {"ok": False, "error": str(exc)}
    return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


def dispatch_command(
    service: AdmissionService,
    command: Dict[str, Any],
    request_shutdown: Callable[[], None],
) -> Dict[str, Any]:
    """Execute one decoded protocol command against the service.

    This is the single source of truth for the op table: the threaded
    handler calls it inline and the async front door calls it from its
    worker pool (``submit`` excepted — the async path enqueues without
    blocking and awaits the ticket instead, see ``repro.service.aio``).
    Raises the typed service/codec errors; callers map them through
    :func:`error_response`.
    """
    op = command.get("op")
    # The degradation gate runs before any work: in fast-fail even
    # reads shed (with code + retry_after), keeping ping/shutdown as
    # the operator's lifeline.
    if isinstance(op, str):
        service.gate(op)
    if op == "ping":
        return {"ok": True, "pong": True, "state": service.degradation_state()}
    if op == "submit":
        ticket = service.submit(
            command["request"],
            priority=int(command.get("priority", 0)),
            timeout_s=command.get("timeout_s"),
            wait=bool(command.get("wait", True)),
            wait_timeout=command.get("wait_timeout"),
            idempotency_key=command.get("idem"),
            tenant=command.get("tenant"),
        )
        return {"ok": True, **ticket.describe()}
    if op == "status":
        status = service.status(int(command["ticket"]))
        if status is None:
            return {"ok": False, "error": f"unknown ticket {command['ticket']}"}
        return {"ok": True, **status}
    if op == "release":
        released = service.release(int(command["request_id"]))
        if not released:
            return {
                "ok": False,
                "error": f"request {command['request_id']} is not active",
            }
        return {"ok": True, "released": int(command["request_id"])}
    if op == "resize":
        new_n = command.get("new_n")
        new_mu = command.get("new_mu")
        new_sigma = command.get("new_sigma")
        decision = service.resize(
            int(command["request_id"]),
            new_n=int(new_n) if new_n is not None else None,
            new_mu=float(new_mu) if new_mu is not None else None,
            new_sigma=float(new_sigma) if new_sigma is not None else None,
            idempotency_key=command.get("idem"),
        )
        if decision.get("outcome") == "unknown":
            return {
                "ok": False,
                "error": f"request {command['request_id']} is not active",
            }
        return {"ok": True, **decision}
    if op == "stats":
        return {"ok": True, "stats": service.stats()}
    if op == "metrics":
        return {"ok": True, **service.metrics()}
    if op == "obs":
        tracer = getattr(admission_instruments(), "tracer", None)
        recorder = flight_recorder()
        payload: Dict[str, Any] = {
            "pid": os.getpid(),
            "flight": recorder.events(limit=command.get("limit")),
            "traces": tracer.recent() if tracer is not None else [],
        }
        if command.get("dump"):
            payload["dump_path"] = recorder.maybe_dump("request")
        return {"ok": True, "obs": payload}
    if op == "snapshot":
        path = service.take_snapshot()
        if path is None:
            return {"ok": False, "error": "durability is not enabled"}
        return {"ok": True, "snapshot": path}
    if op == "shutdown":
        request_shutdown()
        return {"ok": True, "bye": True}
    return {"ok": False, "error": f"unknown op {op!r}"}


class AdmissionRequestHandler(socketserver.StreamRequestHandler):
    """One connection: a stream of newline-delimited JSON commands."""

    def setup(self) -> None:
        super().setup()
        # Slow-client defense: a peer that stops reading (or writing) for
        # longer than this forfeits the connection instead of pinning a
        # handler thread forever.  None = no timeout (the default).
        client_timeout = getattr(self.server, "client_timeout", None)
        if client_timeout is not None:
            self.request.settimeout(client_timeout)

    def handle(self) -> None:
        try:
            self._serve_lines()
        except (socket.timeout, TimeoutError):
            logger.warning(
                "peer=%s timed out mid-operation; closing connection",
                self.client_address[0],
            )

    def _serve_lines(self) -> None:
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            rid = next(_REQUEST_IDS)
            op = None
            try:
                command = json.loads(line)
                op = command.get("op")
                response = self._dispatch(command)
            except json.JSONDecodeError as exc:
                response = {"ok": False, "error": f"malformed JSON: {exc.msg}"}
            except (ServiceError, CodecError) as exc:
                # Typed shed/degradation errors: machine-readable code plus
                # a Retry-After hint so clients can back off sensibly.
                response = error_response(exc)
            except Exception as exc:  # never kill the connection on one bad op
                logger.warning("rid=%d op=%s raised: %s", rid, op, exc, exc_info=True)
                response = error_response(exc)
            logger.debug(
                "rid=%d peer=%s op=%s ok=%s ticket=%s",
                rid, self.client_address[0], op,
                response.get("ok"), response.get("ticket"),
            )
            FAILPOINTS.hit(FP_SERVER_RESPONSE)
            self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
            self.wfile.flush()
            if response.get("bye"):
                break

    def _dispatch(self, command: Dict[str, Any]) -> Dict[str, Any]:
        service: AdmissionService = self.server.service  # type: ignore[attr-defined]
        return dispatch_command(
            service, command, self.server.request_shutdown  # type: ignore[attr-defined]
        )


class AdmissionTCPServer(socketserver.ThreadingTCPServer):
    """Threading TCP server bound to one :class:`AdmissionService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address,
        service: AdmissionService,
        client_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(address, AdmissionRequestHandler)
        self.service = service
        self.client_timeout = client_timeout

    def request_shutdown(self) -> None:
        # shutdown() blocks until serve_forever returns, so it must not be
        # called from a handler thread directly.
        threading.Thread(target=self.shutdown, daemon=True).start()


# ----------------------------------------------------------------------
# ``svc-repro serve``
# ----------------------------------------------------------------------


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="svc-repro serve",
        description="Run the admission-control daemon over a simulated datacenter.",
    )
    parser.add_argument("--host", default=DEFAULT_HOST, help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port; 0 picks an ephemeral port (default: {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="datacenter topology to manage (default: small)",
    )
    parser.add_argument(
        "--epsilon",
        type=float,
        default=0.05,
        help="SLA risk factor of Eq. (1) (default: 0.05)",
    )
    parser.add_argument(
        "--allocator",
        choices=sorted(ALLOCATOR_FACTORIES),
        default="default",
        help="allocation stack (default: the paper's system)",
    )
    parser.add_argument(
        "--mode",
        choices=MODES,
        default=MODE_ONLINE,
        help="online = drop rejected requests; batch = park and retry on departures",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="admission worker threads (default: 4)"
    )
    parser.add_argument(
        "--frontend",
        choices=FRONTENDS,
        default=FRONTEND_ASYNC,
        help="connection front end: async = single-threaded asyncio accept/"
        "decode loop over a bounded pool; threaded = one thread per "
        "connection (default: async)",
    )
    parser.add_argument(
        "--pool-size",
        type=int,
        default=8,
        help="bounded worker pool bridging the async front end to the sync "
        "core (async frontend only; default: 8)",
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=8,
        help="coalesce up to this many consecutive same-shape queued "
        "requests into one admission batch sharing DP tables; 1 disables "
        "(default: 8)",
    )
    parser.add_argument(
        "--batch-linger-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="with an empty queue and a non-full batch, wait this long for "
        "more same-shape arrivals before dispatching (default: 0)",
    )
    parser.add_argument(
        "--tenant-quota",
        type=int,
        default=0,
        help="per-tenant queue bound: shed a tenant's submits with "
        "code=over_quota beyond this many waiting; 0 disables (default: 0)",
    )
    parser.add_argument(
        "--tenant-weight",
        action="append",
        default=None,
        metavar="TENANT=W",
        help="deficit-round-robin weight for one tenant (repeatable), e.g. "
        "--tenant-weight gold=4 --tenant-weight batch=1",
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        help="durability directory (WAL + snapshots); omit for in-memory only",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=256,
        help="journal records between automatic snapshots (default: 256)",
    )
    parser.add_argument(
        "--fsync",
        action="store_true",
        help="fsync the journal on every append (durable against power loss)",
    )
    parser.add_argument(
        "--no-recover",
        action="store_true",
        help="ignore any existing journal instead of recovering from it",
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="stderr log verbosity (default: info)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=None,
        metavar="N",
        help="record a full admission trace every N requests (default: 64)",
    )
    parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="disable the observability layer (no-op instruments, bare endpoint)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=1024,
        help="bounded-queue backpressure: shed submits beyond this many "
        "waiting requests; 0 disables the bound (default: 1024)",
    )
    parser.add_argument(
        "--default-timeout-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="server-side deadline for submits that carry no timeout_s "
        "(default: none)",
    )
    parser.add_argument(
        "--client-timeout-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="drop connections idle/stalled longer than this (slow-client "
        "defense; default: none)",
    )
    parser.add_argument(
        "--probe-interval-s",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="base interval between journal health probes while degraded "
        "(default: 1.0)",
    )
    parser.add_argument(
        "--failpoints",
        default=None,
        metavar="SPEC",
        help="arm fault-injection failpoints, e.g. "
        "'journal.write=error:p=0.01,snapshot.write=corrupt' "
        "(testing/chaos only; crashes exit the process)",
    )
    return parser


def _parse_tenant_weights(specs: Optional[List[str]]) -> Optional[Dict[str, int]]:
    """Parse repeated ``--tenant-weight TENANT=W`` flags into a dict."""
    if not specs:
        return None
    weights: Dict[str, int] = {}
    for spec in specs:
        tenant, sep, raw = spec.partition("=")
        if not sep or not tenant:
            raise SystemExit(
                f"--tenant-weight expects TENANT=WEIGHT, got {spec!r}"
            )
        try:
            weights[tenant] = int(raw)
        except ValueError:
            raise SystemExit(
                f"--tenant-weight {spec!r}: weight must be an integer"
            ) from None
    return weights


def _build_service(args: argparse.Namespace) -> AdmissionService:
    store: Optional[DurabilityStore] = None
    epsilon = args.epsilon
    scale_name = args.scale
    recovered = None
    if args.journal_dir is not None:
        store = DurabilityStore(
            Path(args.journal_dir),
            fsync=args.fsync,
            snapshot_every=args.snapshot_every,
        )
        config = store.read_config()
        if config is not None and not args.no_recover:
            # The journal is only replayable over the topology it was
            # recorded against: persisted config wins over the flags.
            if config.get("scale", scale_name) != scale_name:
                logger.warning(
                    "journal was recorded at scale %r; overriding --scale %r",
                    config["scale"], scale_name,
                )
            scale_name = config.get("scale", scale_name)
            if float(config.get("epsilon", epsilon)) != epsilon:
                logger.warning(
                    "journal was recorded with epsilon %s; overriding --epsilon %s",
                    config["epsilon"], epsilon,
                )
            epsilon = float(config.get("epsilon", epsilon))
        store.write_config(
            {"scale": scale_name, "epsilon": epsilon, "mode": args.mode}
        )
    tree = build_datacenter(SCALES[scale_name].spec)
    allocator = allocator_by_name(args.allocator)
    if store is not None and not args.no_recover:
        manager, report = recover_manager(store, tree, epsilon=epsilon, allocator=allocator)
        recovered = report
        if report.replayed_records or report.used_snapshot:
            logger.info(
                "recovered: snapshot seq %s, %d journal records replayed "
                "(%d admits, %d releases), %d active tenancies, "
                "%d idempotency key(s) indexed",
                report.snapshot_seq, report.replayed_records,
                report.admits_replayed, report.releases_replayed,
                manager.active_tenancies, len(report.idempotency_index),
            )
            # Checkpoint the recovered state so the next crash replays only
            # the delta, then keep journaling after the recovered prefix.
            store.write_snapshot(snapshot_payload(manager))
    else:
        manager = NetworkManager(tree, epsilon=epsilon, allocator=allocator)
    max_queue = getattr(args, "max_queue", 1024)
    tenant_quota = getattr(args, "tenant_quota", 0)
    service = AdmissionService(
        manager,
        store=store,
        mode=args.mode,
        workers=args.workers,
        max_queue_depth=max_queue if max_queue else None,
        default_timeout_s=getattr(args, "default_timeout_s", None),
        degradation=(
            DegradationLadder(probe_interval=getattr(args, "probe_interval_s", 1.0))
            if store is not None
            else None
        ),
        idempotency_index=recovered.idempotency_index if recovered else None,
        batch_max=getattr(args, "batch_max", 1),
        batch_linger_s=getattr(args, "batch_linger_ms", 0.0) / 1000.0,
        tenant_quota=tenant_quota if tenant_quota else None,
        tenant_weights=_parse_tenant_weights(getattr(args, "tenant_weight", None)),
    )
    # Publish the SLA bound so the empirical-outage gauges compare against
    # the epsilon this daemon actually guarantees (Eq. 1).
    outage_monitor().set_epsilon(epsilon)
    service.recovery_report = recovered  # type: ignore[attr-defined]
    service.effective_scale = scale_name  # type: ignore[attr-defined]
    return service


def announce_ready(
    service: AdmissionService, args: argparse.Namespace, host: str, port: int
) -> None:
    """Print the machine-readable ready line on stdout (shared by frontends).

    The ready line is protocol output, not logging: it must stay the first
    (and only) line scripts see on stdout.
    """
    ready = {
        "event": "ready",
        "host": host,
        "port": port,
        "pid": os.getpid(),
        "scale": getattr(service, "effective_scale", args.scale),
        "mode": args.mode,
        "frontend": getattr(args, "frontend", FRONTEND_THREADED),
        "epsilon": service.manager.epsilon,
        "journal_dir": args.journal_dir,
    }
    report = getattr(service, "recovery_report", None)
    if report is not None:
        ready["recovered_records"] = report.replayed_records
        ready["active_tenancies"] = service.manager.active_tenancies
    sys.stdout.write(json.dumps(ready) + "\n")
    sys.stdout.flush()


def final_shutdown(service: AdmissionService) -> None:
    """Common teardown: stop workers, checkpoint, close the journal."""
    service.stop()
    if service.store is not None:
        # A clean shutdown checkpoints, so restart needs no replay.
        service.store.write_snapshot(snapshot_payload(service.manager))
        service.store.close()
    logger.info("server stopped")


def dump_flight_on_sigusr2() -> None:
    path = flight_recorder().maybe_dump("sigusr2")
    logger.info("flight recorder dump: %s", path or "skipped (no --journal-dir)")


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``svc-repro serve``."""
    args = build_serve_parser().parse_args(argv)
    setup_logging(args.log_level)
    if args.no_metrics:
        configure_obs(enabled=False)
    elif args.trace_sample is not None:
        configure_obs(sample_every=args.trace_sample)
    if args.failpoints:
        # A real daemon dies on a crash-mode failpoint (os._exit), unlike
        # the in-process chaos harness which catches InjectedCrash.
        FAILPOINTS.crash_mode = "exit"
        armed = arm_from_spec(args.failpoints)
        logger.warning("fault injection armed: %d failpoint(s)", armed)
    service = _build_service(args)
    if args.journal_dir is not None:
        # Crash/degradation/SIGUSR2 flight dumps land next to the journal.
        configure_flight_recorder(dump_dir=args.journal_dir)
    if getattr(args, "frontend", FRONTEND_THREADED) == FRONTEND_ASYNC:
        from repro.service.aio import run_async_server  # local: optional layer

        return run_async_server(service, args)
    server = AdmissionTCPServer(
        (args.host, args.port), service, client_timeout=args.client_timeout_s
    )
    host, port = server.server_address[:2]
    service.start()

    def _terminate(_signum, _frame) -> None:
        server.request_shutdown()

    def _dump_flight(_signum, _frame) -> None:
        dump_flight_on_sigusr2()

    try:
        signal.signal(signal.SIGTERM, _terminate)
        signal.signal(signal.SIGINT, _terminate)
        signal.signal(signal.SIGUSR2, _dump_flight)
    except ValueError:
        pass  # not the main thread (in-process tests drive the server directly)
    except AttributeError:
        pass  # platform without SIGUSR2

    announce_ready(service, args, host, port)
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        final_shutdown(service)
    return 0
