"""Write-ahead journal and snapshot store for the admission service.

Layout of a durability directory::

    <dir>/wal.jsonl             append-only journal, one JSON record per line
    <dir>/snapshot-<seq>.json   periodic full-state snapshots

Journal records carry a monotonically increasing ``seq`` and an operation:
``admit`` (with the full serialized allocation, so replay re-commits
exactly what the live manager committed), ``release`` (by request id),
``reject`` (counter only — rejections never touch link state) and
``resize`` (accepted outcomes carry the post-resize allocation; replay
swaps it in for the old one).

Durability model: each record is written as a single ``write`` of one line
and flushed; with ``fsync=True`` it is also fsynced before the append call
returns.  A crash can therefore leave at most one torn line at the tail of
the file.  :meth:`Journal.replay` detects that (undecodable JSON or a
non-monotonic ``seq``) and stops at the last intact prefix — the recovery
semantics are "restore the longest consistent prefix of acknowledged
operations".

Snapshots bound replay time: recovery loads the newest decodable snapshot
and replays only journal records with ``seq`` greater than the snapshot's.
The journal is never truncated here (compaction is an operator concern);
replay from seq 0 must always reproduce the same state, which is what the
oracle-replay tests exercise.

Failure handling: a failed append (I/O error, failed fsync, torn write)
marks the tail *dirty* — the bytes past the last known-good offset can no
longer be trusted, because a record whose append raised was never
acknowledged and must not reappear on replay.  The next append first
truncates back to the good offset, so the on-disk journal always equals
the sequence of successfully acknowledged appends.  The compiled
failpoints ``journal.write`` (error/crash/corrupt — corrupt writes a torn
half-line), ``journal.fsync`` (error before the fsync call) and
``snapshot.write`` (error, or corrupt = a truncated snapshot file) let the
chaos harness drive exactly these paths; see :mod:`repro.faults`.
"""

from __future__ import annotations

import json
import logging
import os
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.faults.failpoints import (
    FAILPOINTS,
    FP_JOURNAL_FSYNC,
    FP_JOURNAL_WRITE,
    FP_SNAPSHOT_WRITE,
    MODE_CORRUPT,
    FailpointError,
)
from repro.service.codec import allocation_to_dict

logger = logging.getLogger(__name__)

WAL_NAME = "wal.jsonl"
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d+)\.json$")

OP_ADMIT = "admit"
OP_RELEASE = "release"
OP_REJECT = "reject"
#: Elastic resize of an active tenancy.  Accepted outcomes carry the full
#: post-resize allocation (replay = release old + re-commit new, exactly
#: what the live manager applied); rejected outcomes are counters only.
OP_RESIZE = "resize"
#: Free-form marker record (journal health probes); replay skips it.
OP_NOTE = "note"


@dataclass
class ReplaySummary:
    """What :meth:`Journal.replay` actually read."""

    records: int = 0
    last_seq: int = 0
    torn_tail: bool = False


class Journal:
    """Append-only JSONL write-ahead log with crash-tolerant replay."""

    def __init__(self, path: Path, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._next_seq = self._recover_tail()
        self._file = open(self.path, "ab")
        self._good_offset = self.path.stat().st_size if self.path.exists() else 0
        self._tail_dirty = False

    def _recover_tail(self) -> int:
        """Truncate any torn tail so appends extend the intact prefix.

        Without this, records appended after a crash would sit beyond the
        torn line and be invisible to every future replay.
        """
        if not self.path.exists():
            return 1
        summary = ReplaySummary()
        for _record in self.iter_records(self.path, summary=summary):
            pass
        if summary.torn_tail:
            valid_bytes = self._intact_prefix_bytes(summary.records)
            logger.warning(
                "journal %s has a torn tail; truncating to %d intact record(s) "
                "(%d bytes)", self.path, summary.records, valid_bytes,
            )
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)
        return summary.last_seq + 1

    def _intact_prefix_bytes(self, record_count: int) -> int:
        """Byte length of the first ``record_count`` lines of the WAL."""
        offset = 0
        with open(self.path, "rb") as handle:
            for _ in range(record_count):
                line = handle.readline()
                if not line:
                    break
                offset += len(line)
        return offset

    @property
    def next_seq(self) -> int:
        """The sequence number the next appended record will receive."""
        return self._next_seq

    def append(self, op: str, **fields: Any) -> int:
        """Durably append one record; returns its sequence number.

        On any failure the record does not count as appended: the tail is
        marked dirty and the next append truncates back to the last good
        offset, so a record whose append raised (and was therefore never
        acknowledged) can never resurface on replay.
        """
        if self._tail_dirty:
            self._repair_tail()
        seq = self._next_seq
        record = {"seq": seq, "op": op, **fields}
        data = (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")
        # ``error`` raises before any byte is written; ``corrupt`` asks us
        # to simulate a torn write below; ``crash`` models dying right here.
        point = FAILPOINTS.hit(FP_JOURNAL_WRITE)
        try:
            if point is not None and point.mode == MODE_CORRUPT:
                self._file.write(data[: max(1, len(data) // 2)])
                self._file.flush()
                raise FailpointError(f"injected torn write at {self.path}")
            self._file.write(data)
            self._file.flush()
            if self.fsync:
                # A failed fsync leaves durability unknown: the bytes are
                # in the file but may never reach disk.  Treat the record
                # as not appended (dirty tail) — the conservative reading
                # every fsync-gated WAL must take.
                FAILPOINTS.hit(FP_JOURNAL_FSYNC)
                os.fsync(self._file.fileno())
        except BaseException:
            self._tail_dirty = True
            raise
        self._good_offset += len(data)
        self._next_seq = seq + 1
        return seq

    def _repair_tail(self) -> None:
        """Truncate bytes written by failed appends back to the good offset."""
        self._file.flush()
        self._file.seek(self._good_offset)
        self._file.truncate()
        self._tail_dirty = False
        logger.warning(
            "journal %s tail repaired after failed append (truncated to %d bytes)",
            self.path, self._good_offset,
        )

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    @staticmethod
    def iter_records(
        path: Path, after_seq: int = 0, summary: Optional[ReplaySummary] = None
    ) -> Iterator[Dict[str, Any]]:
        """Yield intact records with ``seq > after_seq`` in order.

        Stops at the first torn or out-of-order line — everything after a
        corrupt record is untrusted because order can no longer be proven.
        """
        path = Path(path)
        if not path.exists():
            return
        expected: Optional[int] = None
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    record = json.loads(line)
                    seq = int(record["seq"])
                    op = record["op"]
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    if summary is not None:
                        summary.torn_tail = True
                    return
                if not isinstance(op, str) or (expected is not None and seq != expected):
                    if summary is not None:
                        summary.torn_tail = True
                    return
                expected = seq + 1
                if summary is not None:
                    summary.records += 1
                    summary.last_seq = seq
                if seq > after_seq:
                    yield record

    @classmethod
    def replay(cls, path: Path, after_seq: int = 0) -> List[Dict[str, Any]]:
        """All intact records after ``after_seq`` as a list."""
        return list(cls.iter_records(path, after_seq=after_seq))


class DurabilityStore:
    """The service's persistence facade: one journal + rolling snapshots.

    ``snapshot_every`` takes a full snapshot after that many journal records
    (admits/releases/rejects combined); ``None`` disables automatic
    snapshots (they can still be taken explicitly).
    """

    def __init__(
        self,
        directory: Path,
        fsync: bool = False,
        snapshot_every: Optional[int] = None,
        keep_snapshots: int = 4,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        if keep_snapshots < 1:
            raise ValueError(f"keep_snapshots must be >= 1, got {keep_snapshots}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = snapshot_every
        self.keep_snapshots = keep_snapshots
        self.journal = Journal(self.directory / WAL_NAME, fsync=fsync)
        self._records_since_snapshot = 0

    @property
    def wal_path(self) -> Path:
        return self.journal.path

    # ------------------------------------------------------------------
    # Service configuration (epsilon, mode, topology spec, ...)
    # ------------------------------------------------------------------

    def write_config(self, config: Dict[str, Any]) -> Path:
        """Atomically persist the service configuration next to the WAL."""
        path = self.directory / "config.json"
        fd, tmp_name = tempfile.mkstemp(prefix=".config-", suffix=".tmp", dir=self.directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(config, handle, indent=2)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        return path

    def read_config(self) -> Optional[Dict[str, Any]]:
        path = self.directory / "config.json"
        if not path.exists():
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    # ------------------------------------------------------------------
    # Event logging
    # ------------------------------------------------------------------

    def log_admit(self, allocation, idempotency_key: Optional[str] = None) -> int:
        fields: Dict[str, Any] = {"allocation": allocation_to_dict(allocation)}
        if idempotency_key is not None:
            # Persisted inside the admit record so recovery can rebuild the
            # key -> decision index: a client retrying after a lost ack gets
            # the journaled admission back instead of a second allocation.
            fields["idem"] = idempotency_key
        return self._log(OP_ADMIT, **fields)

    def log_release(self, request_id: int) -> int:
        return self._log(OP_RELEASE, request_id=request_id)

    def log_resize(
        self,
        request_id: int,
        outcome: str,
        allocation=None,
        idempotency_key: Optional[str] = None,
    ) -> int:
        """Journal one resize decision.

        ``allocation`` is the tenant's allocation *after* an accepted
        resize (in-place or replaced); rejected resizes journal no
        allocation — the old one stays committed and replay only restores
        the tally.
        """
        fields: Dict[str, Any] = {"request_id": request_id, "outcome": outcome}
        if allocation is not None:
            fields["allocation"] = allocation_to_dict(allocation)
        if idempotency_key is not None:
            fields["idem"] = idempotency_key
        return self._log(OP_RESIZE, **fields)

    def log_reject(
        self,
        request_payload: Dict[str, Any],
        request_id: Optional[int] = None,
        idempotency_key: Optional[str] = None,
    ) -> int:
        fields: Dict[str, Any] = {"request": request_payload}
        if request_id is not None:
            fields["request_id"] = request_id
        if idempotency_key is not None:
            fields["idem"] = idempotency_key
        return self._log(OP_REJECT, **fields)

    def log_note(self, note: str) -> int:
        """Append a no-op marker record (used as a journal health probe).

        Replay and the oracle skip unknown/``note`` ops, so probing while
        degraded never perturbs recovered state.
        """
        return self._log(OP_NOTE, note=note)

    def _log(self, op: str, **fields: Any) -> int:
        seq = self.journal.append(op, **fields)
        self._records_since_snapshot += 1
        if logger.isEnabledFor(logging.DEBUG):
            request_id = fields.get("request_id")
            if request_id is None and isinstance(fields.get("allocation"), dict):
                request_id = fields["allocation"].get("request_id")
            logger.debug("journal seq=%d op=%s request_id=%s", seq, op, request_id)
        return seq

    def should_snapshot(self) -> bool:
        return (
            self.snapshot_every is not None
            and self._records_since_snapshot >= self.snapshot_every
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def write_snapshot(self, payload: Dict[str, Any], seq: Optional[int] = None) -> Path:
        """Atomically persist a snapshot covering the journal up to ``seq``.

        Written to a temp file in the same directory and renamed into place,
        so readers only ever see complete snapshots.  ``seq`` defaults to
        the last appended journal record.
        """
        if seq is None:
            seq = self.journal.next_seq - 1
        # ``error`` raises before anything touches disk; ``corrupt`` makes
        # us persist a truncated snapshot file — recovery must skip it and
        # fall back to an older snapshot or the bare journal.
        point = FAILPOINTS.hit(FP_SNAPSHOT_WRITE)
        body = json.dumps({"seq": seq, "state": payload})
        if point is not None and point.mode == MODE_CORRUPT:
            body = body[: max(1, len(body) // 2)]
        path = self.directory / f"snapshot-{seq}.json"
        fd, tmp_name = tempfile.mkstemp(
            prefix=".snapshot-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        self._records_since_snapshot = 0
        self._prune_snapshots()
        logger.info("snapshot written: %s (covers journal seq <= %d)", path, seq)
        return path

    def _prune_snapshots(self) -> None:
        """Drop all but the newest ``keep_snapshots`` snapshot files."""
        for _seq, path in self.snapshot_paths()[self.keep_snapshots:]:
            try:
                path.unlink()
            except OSError:
                pass  # a reader may hold it open; retry at the next snapshot

    def snapshot_paths(self) -> List[Tuple[int, Path]]:
        """All snapshots as ``(seq, path)``, newest first."""
        found = []
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
        found.sort(reverse=True)
        return found

    def latest_snapshot(
        self, max_seq: Optional[int] = None
    ) -> Optional[Tuple[int, Dict[str, Any]]]:
        """Newest decodable snapshot as ``(seq, state_payload)``, if any.

        Corrupt snapshot files are skipped (older ones are tried next) —
        the journal alone is always sufficient to recover.  ``max_seq``
        rejects snapshots claiming to cover journal records that do not
        exist (a snapshot that outlived a lost WAL tail cannot be trusted:
        recovery promises exactly the journal's consistent prefix).
        """
        for seq, path in self.snapshot_paths():
            if max_seq is not None and seq > max_seq:
                continue
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                if payload.get("seq") != seq:
                    continue
                return seq, payload["state"]
            except (json.JSONDecodeError, KeyError, OSError):
                continue
        return None

    def replay_after(self, seq: int) -> Iterator[Dict[str, Any]]:
        """Journal records not yet covered by the given snapshot seq."""
        return Journal.iter_records(self.wal_path, after_seq=seq)

    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> "DurabilityStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
