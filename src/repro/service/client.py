"""Blocking line-JSON client for the admission service.

Thin, dependency-free wrapper over one TCP connection.  Each call writes a
single JSON line and reads a single JSON response line; instances are not
thread-safe (use one client per thread — the server is happy to hold many
connections).

    with ServiceClient(port=port) as client:
        reply = client.submit(HomogeneousSVC(n_vms=8, mean=200.0, std=80.0))
        if reply["outcome"] == "admitted":
            client.release(reply["request_id"])

``ok: false`` responses raise typed subclasses of :class:`ServiceError`
(:class:`OverloadedError`, :class:`DegradedError`, ...) keyed off the
response ``code``, each carrying the server's ``retry_after`` hint.

:meth:`ServiceClient.submit_with_retry` adds the full client-side fault
story: exponential backoff with seeded jitter (:class:`RetryPolicy`),
automatic reconnect after connection loss, honoring ``retry_after`` hints,
and an idempotency key generated per logical request — so a retry after a
lost ack returns the server's original decision instead of double-admitting
(see DESIGN.md §7).
"""

from __future__ import annotations

import json
import random
import socket
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Optional, Union

from repro.abstractions.requests import VirtualClusterRequest
from repro.service.codec import request_to_dict
from repro.service.errors import (
    CODE_DEADLINE,
    RETRYABLE_CODES,
    DeadlineExceededError,
    DegradedError,
    OverloadedError,
    OverQuotaError,
    RetryExhaustedError,
    ServiceError,
    error_from_response,
)
from repro.service.server import DEFAULT_HOST, DEFAULT_PORT

__all__ = [
    "ServiceClient",
    "ServiceError",
    "OverloadedError",
    "OverQuotaError",
    "DegradedError",
    "DeadlineExceededError",
    "RetryExhaustedError",
    "RetryPolicy",
]

#: Submit outcomes worth retrying with the same idempotency key: the
#: server rolled the attempt back (``error``) or never decided it yet
#: (``queued`` after a bounded wait).
_RETRYABLE_OUTCOMES = frozenset({"error", "queued"})


@dataclass
class RetryPolicy:
    """Exponential backoff + jitter schedule for :meth:`submit_with_retry`.

    ``seed`` makes the jitter deterministic (tests assert the exact
    schedule); the default ``None`` seeds from the system RNG.  The delay
    before attempt ``n+1`` is ``min(max_delay, base_delay * multiplier**n)``
    scaled by a jitter factor uniform in ``[1-jitter, 1+jitter]``, but
    never less than the server's ``retry_after`` hint when one was given.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    #: Overall wall-clock budget across all attempts (None = unbounded).
    deadline_s: Optional[float] = None
    retry_codes: FrozenSet[str] = RETRYABLE_CODES
    seed: Optional[int] = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        self._rng = random.Random(self.seed)

    def delay(self, attempt: int) -> float:
        """Backoff before the attempt *after* 1-based attempt ``attempt``."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            raw *= 1.0 - self.jitter + 2.0 * self.jitter * self._rng.random()
        return raw


class ServiceClient:
    """One connection to a running admission daemon."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self.reconnect()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def reconnect(self) -> None:
        """(Re)establish the TCP connection, dropping any broken one."""
        self.close()
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rwb")

    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Issue one raw operation and return the decoded response.

        Raises a typed :class:`ServiceError` subclass on an ``ok: false``
        response (mapped from its ``code``) and :class:`ConnectionError`
        when the server hangs up mid-call.
        """
        if self._file is None:
            raise ConnectionError("client is closed")
        payload = {"op": op, **fields}
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError(f"server closed the connection during {op!r}")
        response = json.loads(line)
        if not response.get("ok"):
            raise error_from_response(op, response)
        return response

    def close(self) -> None:
        try:
            if self._file is not None:
                self._file.close()
        except OSError:
            pass
        finally:
            self._file = None
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def submit(
        self,
        request: Union[VirtualClusterRequest, Dict[str, Any]],
        priority: int = 0,
        timeout_s: Optional[float] = None,
        wait: bool = True,
        wait_timeout: Optional[float] = None,
        idempotency_key: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a request; returns the ticket/outcome payload.

        ``tenant`` names the fair-queue lane (and quota bucket) this
        request is charged to; omitted requests share the default lane.
        """
        if isinstance(request, VirtualClusterRequest):
            request = request_to_dict(request)
        fields: Dict[str, Any] = {"request": request, "priority": priority, "wait": wait}
        if timeout_s is not None:
            fields["timeout_s"] = timeout_s
        if wait_timeout is not None:
            fields["wait_timeout"] = wait_timeout
        if idempotency_key is not None:
            fields["idem"] = idempotency_key
        if tenant is not None:
            fields["tenant"] = tenant
        return self.call("submit", **fields)

    def submit_with_retry(
        self,
        request: Union[VirtualClusterRequest, Dict[str, Any]],
        policy: Optional[RetryPolicy] = None,
        idempotency_key: Optional[str] = None,
        priority: int = 0,
        timeout_s: Optional[float] = None,
        wait_timeout: Optional[float] = 30.0,
        tenant: Optional[str] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> Dict[str, Any]:
        """Submit with backoff/retry until a decision or the budget is spent.

        Every attempt carries the *same* idempotency key (generated once
        when not supplied), so a retry after a lost ack or a dropped
        connection converges on the server's original decision — never a
        second allocation.  Raises :class:`DeadlineExceededError` when the
        server expired the request or ``policy.deadline_s`` would pass,
        and :class:`RetryExhaustedError` (chained to the last failure)
        when the attempt cap is reached.  Non-retryable server errors
        propagate as their typed class immediately.

        Over-quota sheds (:class:`OverQuotaError`) are retryable but
        *hint-driven*: the next pause is never shorter than the server's
        ``retry_after``, because the tenant's slice only drains as the
        batcher works — retrying sooner just re-triggers the shed.
        """
        policy = policy or RetryPolicy()
        key = idempotency_key or uuid.uuid4().hex
        deadline = clock() + policy.deadline_s if policy.deadline_s is not None else None
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            retry_after: Optional[float] = None
            try:
                reply = self.submit(
                    request,
                    priority=priority,
                    timeout_s=timeout_s,
                    wait=True,
                    wait_timeout=wait_timeout,
                    idempotency_key=key,
                    tenant=tenant,
                )
                outcome = reply.get("outcome")
                if outcome == "expired":
                    raise DeadlineExceededError(
                        f"request deadline passed server-side (attempt {attempt})",
                        code=CODE_DEADLINE,
                    )
                if outcome not in _RETRYABLE_OUTCOMES:
                    return reply
                last_error = ServiceError(
                    f"transient outcome {outcome!r}: {reply.get('detail', '')}"
                )
            except DeadlineExceededError:
                raise
            except ServiceError as exc:
                if exc.code not in policy.retry_codes:
                    raise
                last_error = exc
                retry_after = exc.retry_after
            except (ConnectionError, OSError) as exc:
                last_error = exc
            if attempt >= policy.max_attempts:
                break
            pause = policy.delay(attempt)
            if retry_after is not None:
                pause = max(pause, float(retry_after))
            if deadline is not None and clock() + pause >= deadline:
                raise DeadlineExceededError(
                    f"retry budget ({policy.deadline_s}s) would pass before "
                    f"attempt {attempt + 1}",
                    code=CODE_DEADLINE,
                ) from last_error
            sleep(pause)
            if isinstance(last_error, (ConnectionError, OSError)):
                try:
                    self.reconnect()
                except OSError as exc:
                    last_error = exc
        raise RetryExhaustedError(
            f"submit failed after {policy.max_attempts} attempt(s): {last_error}"
        ) from last_error

    def status(self, ticket: int) -> Dict[str, Any]:
        return self.call("status", ticket=ticket)

    def release(self, request_id: int) -> Dict[str, Any]:
        return self.call("release", request_id=request_id)

    def resize(
        self,
        request_id: int,
        new_n: Optional[int] = None,
        new_mu: Optional[float] = None,
        new_sigma: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Grow or shrink an admitted tenancy in place (or by re-admit).

        Returns the decision payload: ``outcome`` is ``in_place``,
        ``replaced`` or ``rejected`` (rejected keeps the old allocation).
        Pass the same ``idempotency_key`` on retry to get the original
        decision back instead of resizing twice.
        """
        fields: Dict[str, Any] = {"request_id": request_id}
        if new_n is not None:
            fields["new_n"] = new_n
        if new_mu is not None:
            fields["new_mu"] = new_mu
        if new_sigma is not None:
            fields["new_sigma"] = new_sigma
        if idempotency_key is not None:
            fields["idem"] = idempotency_key
        return self.call("resize", **fields)

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")["stats"]

    def metrics(self) -> Dict[str, Any]:
        """Registry snapshot + Prometheus exposition of the server process.

        Returns ``{"metrics": <JSON snapshot>, "prometheus": <text>}``.
        """
        response = self.call("metrics")
        return {"metrics": response["metrics"], "prometheus": response["prometheus"]}

    def obs(self, dump: bool = False, limit: Optional[int] = None) -> Dict[str, Any]:
        """Flight-recorder ring + recent traces of the server process.

        ``dump=True`` also asks the server to write its flight ring to disk
        (``dump_path`` in the reply; None when no dump dir is configured).
        """
        fields: Dict[str, Any] = {}
        if dump:
            fields["dump"] = True
        if limit is not None:
            fields["limit"] = limit
        return self.call("obs", **fields)["obs"]

    def snapshot(self) -> str:
        return self.call("snapshot")["snapshot"]

    def shutdown(self) -> None:
        self.call("shutdown")
