"""Blocking line-JSON client for the admission service.

Thin, dependency-free wrapper over one TCP connection.  Each call writes a
single JSON line and reads a single JSON response line; instances are not
thread-safe (use one client per thread — the server is happy to hold many
connections).

    with ServiceClient(port=port) as client:
        reply = client.submit(HomogeneousSVC(n_vms=8, mean=200.0, std=80.0))
        if reply["outcome"] == "admitted":
            client.release(reply["request_id"])
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional, Union

from repro.abstractions.requests import VirtualClusterRequest
from repro.service.codec import request_to_dict
from repro.service.server import DEFAULT_HOST, DEFAULT_PORT


class ServiceError(RuntimeError):
    """The server answered ``ok: false``."""


class ServiceClient:
    """One connection to a running admission daemon."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Issue one raw operation and return the decoded response.

        Raises :class:`ServiceError` on an ``ok: false`` response and
        :class:`ConnectionError` when the server hangs up mid-call.
        """
        payload = {"op": op, **fields}
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError(f"server closed the connection during {op!r}")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(response.get("error", f"{op} failed"))
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def submit(
        self,
        request: Union[VirtualClusterRequest, Dict[str, Any]],
        priority: int = 0,
        timeout_s: Optional[float] = None,
        wait: bool = True,
        wait_timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit a request; returns the ticket/outcome payload."""
        if isinstance(request, VirtualClusterRequest):
            request = request_to_dict(request)
        fields: Dict[str, Any] = {"request": request, "priority": priority, "wait": wait}
        if timeout_s is not None:
            fields["timeout_s"] = timeout_s
        if wait_timeout is not None:
            fields["wait_timeout"] = wait_timeout
        return self.call("submit", **fields)

    def status(self, ticket: int) -> Dict[str, Any]:
        return self.call("status", ticket=ticket)

    def release(self, request_id: int) -> Dict[str, Any]:
        return self.call("release", request_id=request_id)

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")["stats"]

    def metrics(self) -> Dict[str, Any]:
        """Registry snapshot + Prometheus exposition of the server process.

        Returns ``{"metrics": <JSON snapshot>, "prometheus": <text>}``.
        """
        response = self.call("metrics")
        return {"metrics": response["metrics"], "prometheus": response["prometheus"]}

    def snapshot(self) -> str:
        return self.call("snapshot")["snapshot"]

    def shutdown(self) -> None:
        self.call("shutdown")
