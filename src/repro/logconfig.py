"""Shared logging setup for the ``svc-repro`` entry points.

All diagnostics in :mod:`repro` go through module-level loggers; stdout is
reserved for machine-readable output (result tables, the server's ready
line), so everything here is routed to stderr.  Library consumers that
configure logging themselves are left alone — :func:`setup_logging` only
installs a handler when the root logger has none.
"""

from __future__ import annotations

import logging
import sys

LOG_LEVELS = ("debug", "info", "warning", "error")

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def setup_logging(level: str = "info") -> None:
    """Route all logging to stderr at the requested level (idempotent)."""
    if level not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from {LOG_LEVELS}")
    root = logging.getLogger()
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper()))
