"""Deriving tenant requests from bandwidth usage profiles.

Section III-A: "Given the bandwidth usage profile of an application, one can
derive the probability distributions of bandwidth demands of VMs and include
them in the virtual cluster requests."  The paper's future work asks for
"characterizing the probability distributions of bandwidth demands from a
variety of real workloads".

This subpackage implements that derivation path: per-VM rate traces (from
profiling runs) are moment-fitted into the normal demands the SVC machinery
consumes, with the same NIC-truncation convention the evaluation uses, plus
synthetic trace generators that mimic the bursty phase behaviour of
MapReduce-style applications for experimentation.
"""

from repro.profiling.traces import (
    RateTrace,
    synthetic_constant_trace,
    synthetic_normal_trace,
    synthetic_phased_trace,
)
from repro.profiling.derive import (
    derive_deterministic_vc,
    derive_heterogeneous_svc,
    derive_homogeneous_svc,
    fit_demand,
)

__all__ = [
    "RateTrace",
    "synthetic_constant_trace",
    "synthetic_normal_trace",
    "synthetic_phased_trace",
    "derive_deterministic_vc",
    "derive_heterogeneous_svc",
    "derive_homogeneous_svc",
    "fit_demand",
]
