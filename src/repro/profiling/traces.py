"""Bandwidth rate traces from profiling runs.

A :class:`RateTrace` is the raw material of request derivation: one VM's
egress rate sampled once per second during a profiling run (the measurement
granularity of the paper's evaluation, which redraws rates every second).

The synthetic generators model the traffic classes the paper's motivation
cites: steady flows, noisy flows, and the strongly phased (shuffle-heavy)
patterns of MapReduce applications whose volatility breaks deterministic
reservations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class RateTrace:
    """One VM's measured egress rates (Mbps), one sample per second."""

    samples: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.samples) < 2:
            raise ValueError("a trace needs at least two samples to estimate variance")
        if any(sample < 0.0 for sample in self.samples):
            raise ValueError("rates cannot be negative")

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1)."""
        return float(np.std(self.samples, ddof=1))

    def percentile(self, pct: float) -> float:
        return float(np.percentile(self.samples, pct))


def synthetic_constant_trace(rate: float, duration: int = 300) -> RateTrace:
    """A perfectly steady application — degenerates SVC to a plain VC."""
    if rate < 0.0:
        raise ValueError("rate must be >= 0")
    return RateTrace(samples=(float(rate),) * max(duration, 2))


def synthetic_normal_trace(
    mean: float,
    std: float,
    rng: np.random.Generator,
    duration: int = 300,
    cap: float = float("inf"),
) -> RateTrace:
    """A noisy application: i.i.d. normal rates clipped to ``[0, cap]``."""
    samples = rng.normal(mean, std, size=max(duration, 2))
    np.clip(samples, 0.0, cap, out=samples)
    return RateTrace(samples=tuple(float(sample) for sample in samples))


def synthetic_phased_trace(
    low_rate: float,
    high_rate: float,
    rng: np.random.Generator,
    duration: int = 300,
    high_fraction: float = 0.3,
    jitter: float = 0.1,
    cap: float = float("inf"),
) -> RateTrace:
    """A MapReduce-style phased application.

    The VM alternates between a quiet compute phase (``low_rate``) and a
    shuffle phase (``high_rate``); ``high_fraction`` of the run is spent
    shuffling, and every sample carries multiplicative jitter.  This is the
    "highly volatile" demand class the paper's introduction motivates SVC
    with — a single constant reservation is either wasteful or insufficient.
    """
    if not 0.0 <= high_fraction <= 1.0:
        raise ValueError(f"high_fraction must be in [0, 1], got {high_fraction}")
    duration = max(duration, 2)
    phases = rng.uniform(size=duration) < high_fraction
    base = np.where(phases, high_rate, low_rate)
    noisy = base * (1.0 + jitter * rng.standard_normal(duration))
    np.clip(noisy, 0.0, cap, out=noisy)
    return RateTrace(samples=tuple(float(sample) for sample in noisy))
