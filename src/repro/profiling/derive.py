"""Moment-fitting traces into tenant requests.

The derivation mirrors the evaluation's "Alternate abstractions" paragraph:
the same profile yields a mean-VC (reserve the mean), a percentile-VC
(reserve the 95th percentile), or an SVC request (pass the fitted
distribution).  Fits are plain method-of-moments against the normal family —
the paper's modelling assumption; richer families are future work there and
here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.abstractions.requests import (
    DeterministicVC,
    HeterogeneousSVC,
    HomogeneousSVC,
)
from repro.profiling.traces import RateTrace
from repro.stochastic.distributions import EmpiricalDemand, LogNormalDemand
from repro.stochastic.normal import Normal

FIT_FAMILIES = ("normal", "lognormal", "empirical")
"""Distribution families :func:`fit_demand` can fit before moment matching."""


def fit_demand(trace: RateTrace, family: str = "normal") -> Normal:
    """Fit one VM's rate trace and return the moment-matched normal.

    The SVC admission machinery consumes only the first two moments (see
    :mod:`repro.stochastic.distributions`), so every family funnels into a
    :class:`Normal`:

    - ``normal`` — direct method of moments (the paper's assumption);
    - ``lognormal`` — MLE in log space (robust for heavy-tailed traces;
      zero-rate samples are floored at a tiny positive rate), then matched;
    - ``empirical`` — the trace's own sample moments with no parametric
      assumption (identical moments to ``normal``; kept as an explicit
      family for clarity of intent).
    """
    if family == "normal":
        return Normal(trace.mean, trace.std)
    if family == "lognormal":
        floored = np.maximum(np.asarray(trace.samples), 1e-6)
        logs = np.log(floored)
        fitted = LogNormalDemand(
            mu_log=float(np.mean(logs)), sigma_log=float(np.std(logs, ddof=1))
        )
        return fitted.to_normal()
    if family == "empirical":
        return EmpiricalDemand(samples=trace.samples).to_normal()
    raise ValueError(f"unknown family {family!r}; choose from {FIT_FAMILIES}")


def _pooled_fit(traces: Sequence[RateTrace]) -> Normal:
    """Fit one distribution to the concatenation of all traces.

    Homogeneous SVC assumes i.i.d. per-VM demands, so the right estimate
    pools every sample (weighting VMs by their trace length).
    """
    if not traces:
        raise ValueError("at least one trace is required")
    pooled = tuple(sample for trace in traces for sample in trace.samples)
    return fit_demand(RateTrace(samples=pooled))


def derive_homogeneous_svc(traces: Sequence[RateTrace]) -> HomogeneousSVC:
    """An SVC request ``<N, mu, sigma>`` from ``N`` per-VM profiling traces."""
    demand = _pooled_fit(traces)
    return HomogeneousSVC(n_vms=len(traces), mean=demand.mean, std=demand.std)


def derive_heterogeneous_svc(traces: Sequence[RateTrace]) -> HeterogeneousSVC:
    """A heterogeneous SVC request with one fitted distribution per VM."""
    if not traces:
        raise ValueError("at least one trace is required")
    demands = tuple(fit_demand(trace) for trace in traces)
    return HeterogeneousSVC(n_vms=len(traces), demands=demands)


def derive_deterministic_vc(
    traces: Sequence[RateTrace], percentile: float = 95.0
) -> DeterministicVC:
    """A deterministic VC from a profile: reserve a demand percentile.

    ``percentile=50`` approximates the paper's *mean-VC* (exactly the mean
    would be ``percentile=None``-ish; we use the empirical percentile of the
    pooled trace, which is what a tenant reading a profile would do);
    ``percentile=95`` is *percentile-VC*.
    """
    if not traces:
        raise ValueError("at least one trace is required")
    pooled = RateTrace(
        samples=tuple(sample for trace in traces for sample in trace.samples)
    )
    return DeterministicVC(n_vms=len(traces), bandwidth=pooled.percentile(percentile))
