"""Virtual-network abstractions: deterministic VC and stochastic SVC.

The tenant-facing request models of the paper (Sections II-III):

- :class:`DeterministicVC` — Oktopus's ``<N, B>`` virtual cluster;
- :class:`HomogeneousSVC` — the paper's ``<N, mu, sigma>`` stochastic virtual
  cluster where every VM's demand is i.i.d. ``Normal(mu, sigma^2)``;
- :class:`HeterogeneousSVC` — ``<N, (mu_1, sigma_1), ..., (mu_N, sigma_N)>``
  with per-VM demand distributions (Section V).
"""

from repro.abstractions.requests import (
    DeterministicVC,
    HeterogeneousSVC,
    HomogeneousSVC,
    VirtualClusterRequest,
)

__all__ = [
    "DeterministicVC",
    "HeterogeneousSVC",
    "HomogeneousSVC",
    "VirtualClusterRequest",
]
