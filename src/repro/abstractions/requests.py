"""Tenant virtual-cluster request types.

All requests describe ``N`` VMs hanging off one virtual switch (the hose
model of Fig. 1).  What differs is how the per-VM bandwidth demand is
specified:

====================  =============================================
:class:`DeterministicVC`   constant ``B`` per VM (Oktopus ``<N, B>``)
:class:`HomogeneousSVC`    i.i.d. ``Normal(mu, sigma^2)`` per VM
:class:`HeterogeneousSVC`  per-VM ``Normal(mu_i, sigma_i^2)``
====================  =============================================

Deterministic requests are *reserved* (they accumulate into ``D_L`` and are
rate-limited); stochastic requests *statistically share* ``S_L = C_L - D_L``
under the outage constraint of Eq. (1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.stochastic.normal import Normal


@dataclass(frozen=True)
class VirtualClusterRequest:
    """Base class for all virtual-cluster requests.

    ``n_vms`` is the number of VM slots the tenant asks for.  Subclasses add
    the bandwidth specification and declare whether the demand is enforced by
    deterministic reservation or statistical sharing.
    """

    n_vms: int

    def __post_init__(self) -> None:
        if self.n_vms < 1:
            raise ValueError(f"a virtual cluster needs at least one VM, got {self.n_vms}")

    @property
    def is_deterministic(self) -> bool:
        """True when the demand is a reserved constant (goes into ``D_L``)."""
        raise NotImplementedError

    @property
    def is_homogeneous(self) -> bool:
        """True when all VMs share one demand distribution."""
        raise NotImplementedError


@dataclass(frozen=True)
class DeterministicVC(VirtualClusterRequest):
    """Oktopus's virtual cluster ``<N, B>``: ``N`` VMs, ``B`` Mbps each.

    The paper's two deterministic baselines are derived from a demand
    distribution: *mean-VC* sets ``B = mu`` and *percentile-VC* sets ``B`` to
    the 95th percentile (Section VI-A, "Alternate abstractions").
    """

    bandwidth: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.bandwidth < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {self.bandwidth}")

    @property
    def is_deterministic(self) -> bool:
        return True

    @property
    def is_homogeneous(self) -> bool:
        return True

    @property
    def vm_demand(self) -> Normal:
        """The per-VM demand as a degenerate normal (``sigma = 0``)."""
        return Normal.deterministic(self.bandwidth)


@dataclass(frozen=True)
class HomogeneousSVC(VirtualClusterRequest):
    """Stochastic virtual cluster ``<N, mu, sigma>`` (Section IV).

    Every VM's bandwidth demand is an independent ``Normal(mu, sigma^2)``
    random variable.  With ``sigma == 0`` this degrades to the semantics of a
    deterministic VC but is still *statistically shared* rather than reserved
    — use :meth:`to_mean_vc` to get the reserved equivalent.
    """

    mean: float = 0.0
    std: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mean < 0.0:
            raise ValueError(f"mean demand must be >= 0, got {self.mean}")
        if self.std < 0.0:
            raise ValueError(f"demand std must be >= 0, got {self.std}")

    @property
    def is_deterministic(self) -> bool:
        return False

    @property
    def is_homogeneous(self) -> bool:
        return True

    @property
    def vm_demand(self) -> Normal:
        """The common per-VM demand distribution."""
        return Normal(self.mean, self.std)

    def to_mean_vc(self) -> DeterministicVC:
        """The *mean-VC* baseline: reserve the mean of the distribution."""
        return DeterministicVC(n_vms=self.n_vms, bandwidth=self.mean)

    def to_percentile_vc(self, percentile: float = 95.0) -> DeterministicVC:
        """The *percentile-VC* baseline: reserve the given percentile."""
        return DeterministicVC(
            n_vms=self.n_vms, bandwidth=self.vm_demand.percentile(percentile)
        )


@dataclass(frozen=True)
class HeterogeneousSVC(VirtualClusterRequest):
    """Heterogeneous SVC ``<N, (mu_1, sigma_1), ..., (mu_N, sigma_N)>`` (Section V).

    ``demands[i]`` is the distribution of VM ``i``'s bandwidth demand.  The
    allocation algorithms sort VMs by the 95th percentile of their demand
    (Section V-B); :meth:`sorted_order` exposes that ordering.
    """

    demands: Tuple[Normal, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.demands) != self.n_vms:
            raise ValueError(
                f"expected {self.n_vms} per-VM demand distributions, got {len(self.demands)}"
            )
        for demand in self.demands:
            if demand.mean < 0.0:
                raise ValueError(f"mean demand must be >= 0, got {demand}")

    @property
    def is_deterministic(self) -> bool:
        return False

    @property
    def is_homogeneous(self) -> bool:
        return False

    def sorted_order(self, percentile: float = 95.0) -> Tuple[int, ...]:
        """VM indices in ascending order of the demand percentile.

        This is the sequence ``S_N`` of the substring heuristic: "N VMs can be
        ordered by 95th percentile of their bandwidth demands" (Section V-B).
        Ties break by index for determinism.
        """
        keys = [(demand.percentile(percentile), idx) for idx, demand in enumerate(self.demands)]
        keys.sort()
        return tuple(idx for _, idx in keys)

    @classmethod
    def uniform(cls, n_vms: int, mean: float, std: float) -> "HeterogeneousSVC":
        """A heterogeneous request whose VMs happen to share one distribution.

        Useful for cross-checking the heterogeneous allocators against the
        homogeneous DP on identical inputs.
        """
        return cls(n_vms=n_vms, demands=tuple(Normal(mean, std) for _ in range(n_vms)))
