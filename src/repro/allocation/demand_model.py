"""Per-link demand characterization of a placed virtual cluster.

A link ``L`` of the tree splits the ``N`` VMs of a request into two groups;
the request's bandwidth demand on ``L`` is the minimum of the two groups'
aggregate demands (Section IV-A for the homogeneous model, Section V-A for
the heterogeneous one).  This module computes the mean/variance of that
minimum — scalar, vectorized over all split sizes, and tabulated over all
contiguous segments of a sorted VM sequence — using the Lemma 1 formulas.

Splits with an empty side (``m in {0, N}``) carry *exactly zero* demand:
no traffic crosses a link that has the whole cluster on one side.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np
from scipy.special import erf

from repro.abstractions.requests import (
    DeterministicVC,
    HeterogeneousSVC,
    HomogeneousSVC,
    VirtualClusterRequest,
)
from repro.stochastic.minimum import min_of_normals
from repro.stochastic.normal import Normal, ZERO, sum_iid, sum_normals

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


def _vec_min_moments(
    mu1: np.ndarray, var1: np.ndarray, mu2: np.ndarray, var2: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized Lemma 1: moments of ``min(X1, X2)`` elementwise.

    Degenerate entries (``var1 + var2 == 0``) fall back to ``min(mu1, mu2)``
    with zero variance, matching the scalar implementation.
    """
    theta_sq = var1 + var2
    degenerate = theta_sq <= 0.0
    theta = np.sqrt(np.where(degenerate, 1.0, theta_sq))  # avoid div-by-zero
    # Phi/phi saturate far before |alpha| = 40; clipping avoids overflow in
    # alpha**2 for near-degenerate variances without changing any result.
    alpha = np.clip((mu2 - mu1) / theta, -40.0, 40.0)
    cdf = 0.5 * (1.0 + erf(alpha / _SQRT2))
    cdf_neg = 1.0 - cdf
    pdf = _INV_SQRT_2PI * np.exp(-0.5 * alpha * alpha)

    mean = mu1 * cdf + mu2 * cdf_neg - theta * pdf
    second = (
        (var1 + mu1 * mu1) * cdf
        + (var2 + mu2 * mu2) * cdf_neg
        - (mu1 + mu2) * theta * pdf
    )
    variance = np.maximum(second - mean * mean, 0.0)

    mean = np.where(degenerate, np.minimum(mu1, mu2), mean)
    variance = np.where(degenerate, 0.0, variance)
    return mean, variance


#: Bounded memo of :func:`homogeneous_split_moments` results.  Workload
#: generators draw request shapes from a small discrete set, so the same
#: ``(kind, N, mu, sigma)`` recurs across thousands of admissions; the cached
#: arrays are frozen (read-only) so shared results cannot be corrupted.
_SPLIT_MOMENTS_CACHE: "dict" = {}
_SPLIT_MOMENTS_CACHE_MAX = 512


def _compute_homogeneous_split_moments(
    request: VirtualClusterRequest,
) -> Tuple[np.ndarray, np.ndarray]:
    n = request.n_vms
    m = np.arange(n + 1, dtype=float)
    if isinstance(request, DeterministicVC):
        mu = request.bandwidth * np.minimum(m, n - m)
        return mu, np.zeros(n + 1)
    if not isinstance(request, HomogeneousSVC):
        raise TypeError(f"expected a homogeneous request, got {type(request).__name__}")

    mean, variance = request.mean, request.std ** 2
    mu, var = _vec_min_moments(m * mean, m * variance, (n - m) * mean, (n - m) * variance)
    # Empty-side splits carry no cross-link traffic.
    mu[0] = mu[n] = 0.0
    var[0] = var[n] = 0.0
    np.maximum(mu, 0.0, out=mu)
    return mu, var


def homogeneous_split_moments(
    request: VirtualClusterRequest,
) -> Tuple[np.ndarray, np.ndarray]:
    """Demand moments on a link for every split size of a homogeneous request.

    Returns arrays ``(mu, var)`` of length ``N + 1`` where entry ``m`` holds
    the mean and variance of ``min(B(m), B(N - m))`` — the request's demand on
    a link that has ``m`` of its VMs below (Section IV-A).  Entries 0 and
    ``N`` are exactly zero.

    Accepts :class:`HomogeneousSVC` and :class:`DeterministicVC` (for which
    the result is the classic ``B * min(m, N - m)`` with zero variance).

    Results are memoized per request shape and returned as *read-only* arrays;
    copy before mutating.
    """
    if isinstance(request, DeterministicVC):
        key = ("det", request.n_vms, request.bandwidth)
    elif isinstance(request, HomogeneousSVC):
        key = ("hom", request.n_vms, request.mean, request.std)
    else:
        return _compute_homogeneous_split_moments(request)  # raises TypeError
    cached = _SPLIT_MOMENTS_CACHE.get(key)
    if cached is None:
        mu, var = _compute_homogeneous_split_moments(request)
        mu.flags.writeable = False
        var.flags.writeable = False
        if len(_SPLIT_MOMENTS_CACHE) >= _SPLIT_MOMENTS_CACHE_MAX:
            # Simple wholesale reset: shapes are few, refilling is cheap.
            _SPLIT_MOMENTS_CACHE.clear()
        _SPLIT_MOMENTS_CACHE[key] = cached = (mu, var)
    return cached


def link_demand_homogeneous(request: VirtualClusterRequest, m: int) -> Normal:
    """Scalar version of :func:`homogeneous_split_moments` for one split.

    Exercised by the tests as an independent cross-check of the vectorized
    path (this one goes through the scalar Lemma 1 implementation).
    """
    n = request.n_vms
    if not 0 <= m <= n:
        raise ValueError(f"split size must be in [0, {n}], got {m}")
    if m in (0, n):
        return ZERO
    if isinstance(request, DeterministicVC):
        return Normal.deterministic(request.bandwidth * min(m, n - m))
    if not isinstance(request, HomogeneousSVC):
        raise TypeError(f"expected a homogeneous request, got {type(request).__name__}")
    demand = request.vm_demand
    below = sum_iid(demand, m)
    above = sum_iid(demand, n - m)
    return min_of_normals(below, above)


def subset_split_demand(request: HeterogeneousSVC, subset: Sequence[int]) -> Normal:
    """Demand on a link that separates ``subset`` from the remaining VMs.

    ``subset`` holds VM indices (0-based).  Used by the exact heterogeneous
    DP (Section V-B) and as the ground truth the segment table is checked
    against.
    """
    chosen = set(subset)
    if not chosen or len(chosen) == request.n_vms:
        return ZERO
    if not all(0 <= idx < request.n_vms for idx in chosen):
        raise ValueError(f"subset contains out-of-range VM indices: {sorted(chosen)}")
    inside = sum_normals(request.demands[idx] for idx in chosen)
    outside = sum_normals(
        demand for idx, demand in enumerate(request.demands) if idx not in chosen
    )
    return min_of_normals(inside, outside)


class SegmentDemandTable:
    """Demand moments for every contiguous segment of the sorted VM sequence.

    The substring heuristic (Section V-B) only ever places *contiguous*
    substrings of the percentile-sorted sequence ``S_N`` into a subtree, so
    all the link-demand moments it needs are indexed by a half-open segment
    ``[s, e)`` with ``0 <= s <= e <= N`` over the sorted order.  This table
    precomputes all of them in one vectorized pass (``O(N^2)`` memory).
    """

    def __init__(self, request: HeterogeneousSVC, percentile: float = 95.0) -> None:
        self.request = request
        self.order: Tuple[int, ...] = request.sorted_order(percentile)
        n = request.n_vms
        self.n_vms = n

        means = np.array([request.demands[idx].mean for idx in self.order])
        variances = np.array([request.demands[idx].variance for idx in self.order])
        # Prefix sums with a leading zero: segment [s, e) aggregates to
        # prefix[e] - prefix[s].
        self._mean_prefix = np.concatenate(([0.0], np.cumsum(means)))
        self._var_prefix = np.concatenate(([0.0], np.cumsum(variances)))
        total_mean = self._mean_prefix[n]
        total_var = self._var_prefix[n]

        starts, ends = np.meshgrid(np.arange(n + 1), np.arange(n + 1), indexing="ij")
        seg_mean = self._mean_prefix[ends] - self._mean_prefix[starts]
        seg_var = self._var_prefix[ends] - self._var_prefix[starts]
        mu, var = _vec_min_moments(
            seg_mean, seg_var, total_mean - seg_mean, total_var - seg_var
        )
        # Invalid (s > e), empty, and full segments carry zero demand.
        invalid = starts > ends
        empty = starts == ends
        full = (ends - starts) == n
        zero_mask = invalid | empty | full
        mu[zero_mask] = 0.0
        var[zero_mask] = 0.0
        np.maximum(mu, 0.0, out=mu)
        #: ``demand_mean[s, e]`` / ``demand_var[s, e]`` — moments of the
        #: request's demand on a link separating segment ``[s, e)`` from the rest.
        self.demand_mean = mu
        self.demand_var = var

    def segment_vms(self, start: int, end: int) -> Tuple[int, ...]:
        """Original VM indices of segment ``[start, end)`` of the sorted order."""
        return self.order[start:end]

    def freeze(self) -> "SegmentDemandTable":
        """Mark the moment matrices read-only (shared cached instances)."""
        self.demand_mean.flags.writeable = False
        self.demand_var.flags.writeable = False
        return self

    def segment_demand(self, start: int, end: int) -> Normal:
        """Demand on a link separating segment ``[start, end)`` from the rest."""
        if not 0 <= start <= end <= self.n_vms:
            raise ValueError(f"invalid segment [{start}, {end}) for N={self.n_vms}")
        return Normal.from_variance(
            float(self.demand_mean[start, end]), float(self.demand_var[start, end])
        )


#: Bounded memo of :func:`segment_demand_table` results, same discipline as
#: ``_SPLIT_MOMENTS_CACHE``: heterogeneous workload generators draw per-VM
#: rates from a small discrete set, so whole request shapes recur across
#: admissions; the cached table's arrays are frozen before sharing.
_SEGMENT_TABLE_CACHE: "dict" = {}
_SEGMENT_TABLE_CACHE_MAX = 256


def segment_demand_table(
    request: HeterogeneousSVC, percentile: float = 95.0
) -> SegmentDemandTable:
    """Memoized :class:`SegmentDemandTable` per request shape and percentile.

    Keyed by the exact per-VM ``(mean, variance)`` sequence, so two equal
    requests share one table (``O(N^2)`` Lemma-1 work saved per admission).
    The returned table is shared and read-only; copy before mutating.
    """
    key = (
        tuple((demand.mean, demand.variance) for demand in request.demands),
        percentile,
    )
    cached = _SEGMENT_TABLE_CACHE.get(key)
    if cached is None:
        cached = SegmentDemandTable(request, percentile=percentile).freeze()
        if len(_SEGMENT_TABLE_CACHE) >= _SEGMENT_TABLE_CACHE_MAX:
            # Simple wholesale reset: shapes are few, refilling is cheap.
            _SEGMENT_TABLE_CACHE.clear()
        _SEGMENT_TABLE_CACHE[key] = cached
    return cached
