"""VM allocation algorithms (Sections IV and V of the paper).

=====================================  ===========================================
:class:`SVCHomogeneousAllocator`       Algorithm 1: lowest-subtree DP that also
                                       minimizes the maximum bandwidth occupancy
                                       ratio (homogeneous SVC and deterministic VC)
:class:`AdaptedTIVCAllocator`          the adapted-TIVC baseline: same validity
                                       condition (Eq. 4) but feasibility-only,
                                       no occupancy optimization (Section VI-B3)
:class:`OktopusAllocator`              the adapted-TIVC search applied to
                                       deterministic VC requests — the Oktopus
                                       baseline used for mean-VC / percentile-VC
:class:`SVCHeterogeneousExactAllocator`  subset DP, exact but exponential
                                       (Section V-B, "Dynamic programming based
                                       allocation algorithm")
:class:`SVCHeterogeneousAllocator`     the substring first-fit heuristic with
                                       occupancy optimization (Section V-B)
:class:`FirstFitAllocator`             the plain first-fit baseline
=====================================  ===========================================
"""

from repro.allocation.base import Allocation, Allocator, expand_vm_placement
from repro.allocation.demand_model import (
    SegmentDemandTable,
    homogeneous_split_moments,
    link_demand_homogeneous,
    subset_split_demand,
)
from repro.allocation.svc_homogeneous import (
    AdaptedTIVCAllocator,
    GlobalMinMaxAllocator,
    OktopusAllocator,
    SVCHomogeneousAllocator,
)
from repro.allocation.svc_het_exact import SVCHeterogeneousExactAllocator
from repro.allocation.svc_het_heuristic import SVCHeterogeneousAllocator
from repro.allocation.first_fit import FirstFitAllocator
from repro.allocation.dispatch import DispatchingAllocator, default_allocator, baseline_allocator
from repro.allocation.resize import (
    ResizePlan,
    plan_in_place,
    resized_request,
    swap_occupancies,
)

__all__ = [
    "Allocation",
    "Allocator",
    "expand_vm_placement",
    "SegmentDemandTable",
    "homogeneous_split_moments",
    "link_demand_homogeneous",
    "subset_split_demand",
    "AdaptedTIVCAllocator",
    "GlobalMinMaxAllocator",
    "OktopusAllocator",
    "SVCHomogeneousAllocator",
    "SVCHeterogeneousExactAllocator",
    "SVCHeterogeneousAllocator",
    "FirstFitAllocator",
    "DispatchingAllocator",
    "default_allocator",
    "baseline_allocator",
    "ResizePlan",
    "plan_in_place",
    "resized_request",
    "swap_occupancies",
]
