"""Substring heuristic allocation for heterogeneous SVC (Section V-B).

VMs are sorted in ascending order of the 95th percentile of their demand;
allocable sets are restricted to *contiguous substrings* of the sorted
sequence ``S_N`` (a first-fit-inspired structure: a sequential greedy pass
always assigns disjoint substrings to sibling subtrees).  Each subtree's
allocable set therefore has ``O(N^2)`` members instead of ``O(2^N)``, giving
overall complexity ``O(|V| * Delta * N^4)`` while keeping the min-max
occupancy optimization of Algorithm 1: ``Opt(T_v[i], <a,b>)`` is minimized
over all split points ``k`` with ``<a,k-1>`` allocable in ``T_v[i-1]`` and
``<k,b>`` allocable in the i-th child.

Segments are half-open ``[s, e)`` with ``0 <= s <= e <= N`` over the sorted
order; ``[s, s)`` is the empty segment.  Tables are dense ``(N+1) x (N+1)``
float arrays with ``inf`` marking "not allocable"; entries below the
diagonal are invalid and stay ``inf`` throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.abstractions.requests import HeterogeneousSVC, VirtualClusterRequest
from repro.allocation.base import Allocation, Allocator
from repro.allocation.demand_model import SegmentDemandTable
from repro.network.link_state import LinkState, NetworkState
from repro.obs.instruments import (
    REASON_NO_FEASIBLE_SUBTREE,
    REASON_NO_FREE_SLOTS,
    admission_instruments,
)
from repro.stochastic.normal import Normal

_FEASIBLE_LIMIT = 1.0


@dataclass
class _SegmentTable:
    """DP state per vertex: Opt per segment + per-child split points."""

    values: np.ndarray  # (N+1, N+1); values[s, e] = Opt(T_v, [s, e))
    choices: List[np.ndarray]  # choices[i][s, e] = split point k for child i


def _empty_segments(n: int) -> np.ndarray:
    values = np.full((n + 1, n + 1), np.inf)
    np.fill_diagonal(values, 0.0)
    return values


class SVCHeterogeneousAllocator(Allocator):
    """The paper's polynomial heterogeneous allocator (substring heuristic)."""

    name = "svc-het"

    def __init__(self, percentile: float = 95.0) -> None:
        self._percentile = percentile

    def supports(self, request: VirtualClusterRequest) -> bool:
        return isinstance(request, HeterogeneousSVC)

    def allocate(
        self, state: NetworkState, request: VirtualClusterRequest, request_id: int
    ) -> Optional[Allocation]:
        if not isinstance(request, HeterogeneousSVC):
            raise TypeError(f"{self.name} only places heterogeneous SVC requests")
        obs = admission_instruments()
        trace = obs.start(self.name)
        t_start = perf_counter()
        n = request.n_vms
        if n > state.total_free_slots:
            obs.done(
                self.name, perf_counter() - t_start, admitted=False,
                reason=REASON_NO_FREE_SLOTS, trace=trace, n_vms=n,
            )
            return None
        segments = SegmentDemandTable(request, percentile=self._percentile)

        tree = state.tree
        tables: Dict[int, _SegmentTable] = {}
        host: Optional[int] = None
        host_value = np.inf
        for _level, node_ids in tree.bottom_up_levels():
            for node_id in node_ids:
                table = self._build_vertex(state, node_id, n, segments, tables)
                tables[node_id] = table
                value = float(table.values[0, n])
                if np.isfinite(value) and value < host_value:
                    host, host_value = node_id, value
            if host is not None:
                break
        if host is None:
            obs.done(
                self.name, perf_counter() - t_start, admitted=False,
                reason=REASON_NO_FEASIBLE_SUBTREE, trace=trace, n_vms=n,
            )
            return None

        node_segments: Dict[int, Tuple[int, int]] = {}
        self._backtrack(tree, tables, host, 0, n, node_segments)

        machine_vms: Dict[int, Tuple[int, ...]] = {}
        link_demands: Dict[int, Normal] = {}
        for node_id, (start, end) in node_segments.items():
            if start == end:
                continue
            if tree.node(node_id).is_machine:
                machine_vms[node_id] = segments.segment_vms(start, end)
            if node_id != host and 0 < end - start < n:
                link_demands[node_id] = segments.segment_demand(start, end)
        machine_counts = {machine: len(vms) for machine, vms in machine_vms.items()}
        allocation = Allocation(
            request=request,
            request_id=request_id,
            host_node=host,
            machine_counts=machine_counts,
            machine_vms=machine_vms,
            link_demands=link_demands,
            max_occupancy=host_value,
        )
        obs.done(self.name, perf_counter() - t_start, admitted=True, trace=trace, n_vms=n)
        return allocation

    # ------------------------------------------------------------------
    # DP construction
    # ------------------------------------------------------------------

    def _build_vertex(
        self,
        state: NetworkState,
        node_id: int,
        n: int,
        segments: SegmentDemandTable,
        tables: Dict[int, _SegmentTable],
    ) -> _SegmentTable:
        tree = state.tree
        node = tree.node(node_id)
        if node.is_machine:
            # Any substring short enough for the machine's free slots fits;
            # co-located VMs use no links, so the inner objective is 0.
            values = np.full((n + 1, n + 1), np.inf)
            limit = state.free_slots(node_id)
            starts, ends = np.meshgrid(np.arange(n + 1), np.arange(n + 1), indexing="ij")
            length = ends - starts
            values[(length >= 0) & (length <= limit)] = 0.0
            return _SegmentTable(values=values, choices=[])

        partial = _empty_segments(n)
        choices: List[np.ndarray] = []
        for child_id in node.children:
            child_eff = self._child_effective(state, child_id, n, segments, tables)
            new_values = np.full((n + 1, n + 1), np.inf)
            choice = np.full((n + 1, n + 1), -1, dtype=np.int64)
            for k in range(n + 1):
                # Segment [s, e) = [s, k) placed so far + [k, e) in this child.
                candidate = np.maximum(partial[:, k : k + 1], child_eff[k : k + 1, :])
                better = candidate < new_values
                new_values[better] = candidate[better]
                choice[better] = k
            partial = new_values
            choices.append(choice)
        return _SegmentTable(values=partial, choices=choices)

    def _child_effective(
        self,
        state: NetworkState,
        child_id: int,
        n: int,
        segments: SegmentDemandTable,
        tables: Dict[int, _SegmentTable],
    ) -> np.ndarray:
        """max(Opt(child, seg), O_uplink(seg)), inf where the uplink rejects."""
        link_state: LinkState = state.links[child_id]
        variance = link_state.var_total + segments.demand_var
        effective_demand = (
            link_state.mean_total
            + segments.demand_mean
            + state.risk_c * np.sqrt(np.maximum(variance, 0.0))
        )
        occupancy = (link_state.deterministic_total + effective_demand) / link_state.capacity
        effective = np.maximum(tables[child_id].values, occupancy)
        effective[occupancy >= _FEASIBLE_LIMIT] = np.inf
        return effective

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------

    def _backtrack(
        self,
        tree,
        tables: Dict[int, _SegmentTable],
        node_id: int,
        start: int,
        end: int,
        node_segments: Dict[int, Tuple[int, int]],
    ) -> None:
        node_segments[node_id] = (start, end)
        if start == end:
            return
        node = tree.node(node_id)
        if node.is_machine:
            return
        table = tables[node_id]
        right = end
        for index in range(len(node.children) - 1, -1, -1):
            split = int(table.choices[index][start, right])
            if split < 0:
                raise RuntimeError(f"backtracking hit an infeasible segment at {node_id}")
            self._backtrack(tree, tables, node.children[index], split, right, node_segments)
            right = split
        if right != start:
            raise RuntimeError(f"backtracking left [{start}, {right}) unassigned at {node_id}")
