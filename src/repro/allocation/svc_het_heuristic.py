"""Substring heuristic allocation for heterogeneous SVC (Section V-B).

VMs are sorted in ascending order of the 95th percentile of their demand;
allocable sets are restricted to *contiguous substrings* of the sorted
sequence ``S_N`` (a first-fit-inspired structure: a sequential greedy pass
always assigns disjoint substrings to sibling subtrees).  Each subtree's
allocable set therefore has ``O(N^2)`` members instead of ``O(2^N)``, giving
overall complexity ``O(|V| * Delta * N^4)`` while keeping the min-max
occupancy optimization of Algorithm 1: ``Opt(T_v[i], <a,b>)`` is minimized
over all split points ``k`` with ``<a,k-1>`` allocable in ``T_v[i-1]`` and
``<k,b>`` allocable in the i-th child.

Segments are half-open ``[s, e)`` with ``0 <= s <= e <= N`` over the sorted
order; ``[s, s)`` is the empty segment.  Tables are dense ``(N+1) x (N+1)``
float arrays with ``inf`` marking "not allocable"; entries below the
diagonal are invalid and stay ``inf`` throughout.

Two semantic rules of ``_child_effective`` (both the paper's objective and
regression-tested):

* an **empty segment costs exactly zero** — placing nothing in a child puts
  no demand on the child's uplink, so the uplink's *existing* occupancy must
  not be charged to (or reject) the skip;
* a **zero-capacity uplink admits nothing** — occupancy is guarded to
  ``inf`` instead of the NaN a raw division would produce (NaN compares
  false everywhere and would silently survive both the feasibility mask and
  the min-update of the combine step).

Two implementations of the tree DP coexist, mirroring Algorithm 1's layout
in ``svc_homogeneous.py``:

* the **reference** path (``fast=False``, name ``svc-het-seed``) — the
  straight-line implementation, kept as the baseline the fast path is proven
  against decision for decision;
* the **fast** path (``fast=True``, the default) — numerically identical,
  but built on the observation that the segment combine
  ``(A ⊗ B)[s, e] = min over k of max(A[s, k], B[k, e])`` is an exactly
  associative (min, max)-matrix product over IEEE floats (``min``/``max``
  select an operand, they never round), so vertex *values* may be computed
  in any grouping.  Concretely it (a) memoizes the ``O(N^2)`` Lemma-1
  segment-demand table per request shape, (b) stores every fast-path table
  in **band form** ``band[s, d] = table[s, s + d]`` — an
  ``(N+1) x (cap+1)`` rectangle holding exactly the potentially-finite
  entries (the invariant ``band[s, d] = inf`` whenever ``s + d > N`` keeps
  out-of-range reads harmless), so each kernel does work proportional to
  the feasible band instead of the full ``(N+1)^2`` matrix, (c) shares one
  read-only machine table per free-slot count, (d) shares the per-child
  effective band per (child table, uplink state) and derives from each its
  **tight cap** — the longest segment the child can still absorb once
  uplink occupancy is masked — which bounds every later band, (e) scans
  each tree level with a **row-0-only** value vector per vertex (all a
  host check needs is ``Opt[0, N]``), materializing full tables only for
  levels the search ascends past, (f) materializes those tables with a
  **balanced pair-combine** whose intermediates are cached by operand
  identity (runs of identical children — pristine racks — collapse to
  ``O(log)`` unique combines), and (g) rebuilds per-child split choices
  **lazily**, only for vertices on the accepted placement path, with the
  reference's sequential combine.

Every value the fast path compares or returns is produced by the same
max/min/compare operations on the same floats as the reference path (bands
only ever exclude provably-``inf`` candidates), so the produced host /
placement / ``max_occupancy`` decisions are bit-for-bit the same — not
merely statistically equivalent
(``tests/allocation/test_het_fast_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.abstractions.requests import HeterogeneousSVC, VirtualClusterRequest
from repro.allocation.base import Allocation, Allocator
from repro.allocation.demand_model import SegmentDemandTable, segment_demand_table
from repro.network.link_state import LinkState, NetworkState
from repro.obs.instruments import (
    PHASE_ALLOC,
    PHASE_BATCH_OCCUPANCY,
    PHASE_COMBINE,
    PHASE_TABLE_BUILD,
    REASON_NO_FEASIBLE_SUBTREE,
    REASON_NO_FREE_SLOTS,
    admission_instruments,
)
from repro.stochastic.normal import Normal

_FEASIBLE_LIMIT = 1.0

# Below this request size the structural caps (free slots under a child)
# are already narrow relative to N and the tight-cap finite scans cost more
# than the band width they'd shave.  Purely a work-routing threshold: caps
# only ever exclude provably-inf candidates, so values are unaffected.
_DENSE_N = 52


@dataclass
class _SegmentTable:
    """DP state per vertex: Opt per segment + per-child split points."""

    values: np.ndarray  # (N+1, N+1); values[s, e] = Opt(T_v, [s, e))
    choices: List[np.ndarray]  # choices[i][s, e] = split point k for child i


@dataclass
class _ValueTable:
    """Value-only DP state per vertex (fast path), in band form.

    ``values[s, d]`` is the table entry for segment ``[s, s + d)`` — the
    whole ``(N+1) x (cap+1)`` rectangle of *potentially* finite entries,
    where ``cap`` is the band width: every segment longer than ``cap`` is
    provably ``inf`` (no longer segment is allocable in the subtree), as is
    every entry with ``s + d > N``.  Band form keeps the per-combine work
    proportional to the feasible entries instead of the full ``(N+1)^2``
    matrix.  Split choices are not stored — they are rebuilt lazily for the
    placement path only.
    """

    values: np.ndarray
    cap: int


def _band_of(matrix: np.ndarray, n: int) -> np.ndarray:
    """Strided band view ``band[s, d] = matrix[s, s + d]`` over a padded copy.

    Entries with ``s + d > n`` read padding or a neighboring row — they are
    never *used*: every consumer masks them with a table band that is inf
    there (the band invariant), so only in-bounds reads matter and the view
    costs one flat copy.
    """
    flat = np.full((n + 1) * (n + 2), np.inf)
    flat[: (n + 1) * (n + 1)] = matrix.ravel()
    stride = flat.strides[0]
    band = as_strided(flat, shape=(n + 1, n + 1), strides=((n + 2) * stride, stride))
    band.flags.writeable = False
    return band


@dataclass
class _FastCaches:
    """Per-``allocate`` table caches of the fast path (no cross-request state).

    ``machine`` shares one read-only table per free-slot count; ``vertex``
    (full tables) and ``row0`` (host-check vectors) share whole vertex
    results per child-state signature; ``eff`` shares the effective child
    band — paired with its tight finite-band cap — per (child table
    identity, uplink state); ``pair`` shares balanced-combine intermediates
    per operand identity.  The lookup counters feed the obs cache-hit
    counters once per request.
    """

    machine: Dict[int, _ValueTable] = field(default_factory=dict)
    vertex: Dict[Tuple, _ValueTable] = field(default_factory=dict)
    row0: Dict[Tuple, np.ndarray] = field(default_factory=dict)
    eff: Dict[Tuple, Tuple[np.ndarray, int]] = field(default_factory=dict)
    # pair values keep their operands alive so the id()-based key stays unique.
    pair: Dict[Tuple, Tuple] = field(default_factory=dict)
    # Band views of the request's segment demand moments (see _band_of).
    mean_band: Optional[np.ndarray] = None
    var_band: Optional[np.ndarray] = None
    machine_lookups: int = 0
    vertex_lookups: int = 0
    eff_lookups: int = 0


def _empty_segments(n: int) -> np.ndarray:
    values = np.full((n + 1, n + 1), np.inf)
    np.fill_diagonal(values, 0.0)
    return values


class SVCHeterogeneousAllocator(Allocator):
    """The paper's polynomial heterogeneous allocator (substring heuristic).

    ``fast=False`` runs the straight-line reference implementation (identical
    decisions, no sharing/banding) — used by the equivalence tests and as the
    ``svc-het-seed`` baseline of ``benchmarks/bench_admission_path.py``.
    """

    name = "svc-het"

    def __init__(self, percentile: float = 95.0, fast: bool = True) -> None:
        self._percentile = percentile
        self._fast = fast
        if not fast:
            self.name = "svc-het-seed"

    def supports(self, request: VirtualClusterRequest) -> bool:
        return isinstance(request, HeterogeneousSVC)

    def resize_link_demands(
        self,
        state: NetworkState,
        new_request: VirtualClusterRequest,
        host_node: int,
        machine_counts,
        machine_vms=None,
    ) -> Dict[int, Normal]:
        """Occupancy-delta query: the resized footprint on a fixed placement.

        Heterogeneous VMs are *not* interchangeable, so the per-link demand
        is the exact Lemma-1 subset demand (Section V-A ground truth) of the
        VM identities each link separates from the rest — computed from the
        placement's ``machine_vms`` accumulated up to the host node.
        """
        if not isinstance(new_request, HeterogeneousSVC):
            raise TypeError(f"{self.name} cannot resize a {type(new_request).__name__}")
        if machine_vms is None:
            raise ValueError("heterogeneous resize needs per-machine VM identities")
        from repro.allocation.demand_model import subset_split_demand

        tree = state.tree
        below: Dict[int, List[int]] = {}
        for machine_id, vms in machine_vms.items():
            node_id = machine_id
            while node_id != host_node:
                below.setdefault(node_id, []).extend(vms)
                parent = tree.node(node_id).parent
                if parent is None:
                    raise ValueError(
                        f"machine {machine_id} is not under host node {host_node}"
                    )
                node_id = parent
        n = new_request.n_vms
        demands: Dict[int, Normal] = {}
        for node_id, subset in below.items():
            if 0 < len(subset) < n:
                demands[node_id] = subset_split_demand(new_request, subset)
        return demands

    def allocate(
        self, state: NetworkState, request: VirtualClusterRequest, request_id: int
    ) -> Optional[Allocation]:
        if not isinstance(request, HeterogeneousSVC):
            raise TypeError(f"{self.name} only places heterogeneous SVC requests")
        obs = admission_instruments()
        trace = obs.start(self.name)
        phases: Optional[Dict[str, float]] = trace.phases if trace is not None else None
        t_start = perf_counter()
        n = request.n_vms
        if n > state.total_free_slots:
            obs.done(
                self.name, perf_counter() - t_start, admitted=False,
                reason=REASON_NO_FREE_SLOTS, trace=trace, n_vms=n,
            )
            return None
        segments = segment_demand_table(request, percentile=self._percentile)

        tree = state.tree
        tables: Dict = {}
        host: Optional[int] = None
        host_value = np.inf
        caches = _FastCaches() if self._fast else None
        if caches is not None:
            caches.mean_band = _band_of(segments.demand_mean, n)
            caches.var_band = _band_of(segments.demand_var, n)
        # Fast path: nodes of the previous level scanned but not yet
        # materialized into full tables (they are, lazily, only if the
        # search ascends past them — their children feed the next level).
        pending: List[int] = []
        scan_inputs: Dict[int, Tuple[Tuple, List[Tuple[np.ndarray, int]]]] = {}
        for _level, node_ids in tree.bottom_up_levels():
            if caches is not None and _level == 0:
                # Machine level, unrolled: the table is the shared 0/inf band
                # per free-slot count, and a machine hosts the whole request
                # iff its free slots cover N — in which case its Opt value is
                # 0.0 and the first such machine in node order wins, exactly
                # as the generic loop below decides.
                t_phase = perf_counter() if phases is not None else 0.0
                free_slots = state.free_slots
                for node_id in node_ids:
                    free = free_slots(node_id)
                    tables[node_id] = self._machine_table(
                        min(free, n), n, caches.machine
                    )
                    if host is None and free >= n:
                        host, host_value = node_id, 0.0
                caches.machine_lookups = len(node_ids)
                if phases is not None:
                    phases[PHASE_TABLE_BUILD] = (
                        phases.get(PHASE_TABLE_BUILD, 0.0) + perf_counter() - t_phase
                    )
                if host is not None:
                    break
                continue
            if caches is not None:
                for prev_id in pending:
                    t_phase = perf_counter() if phases is not None else 0.0
                    key, effs_caps = scan_inputs[prev_id]
                    caches.vertex_lookups += 1
                    table = caches.vertex.get(key)
                    if table is None:
                        table = self._balanced_values(effs_caps, n, caches)
                        caches.vertex[key] = table
                    tables[prev_id] = table
                    if phases is not None:
                        phases[PHASE_COMBINE] = (
                            phases.get(PHASE_COMBINE, 0.0) + perf_counter() - t_phase
                        )
                pending = []
                for node_id in node_ids:
                    node = tree.node(node_id)
                    if node.is_machine:
                        caches.machine_lookups += 1
                        free = state.free_slots(node_id)
                        tables[node_id] = self._machine_table(
                            min(free, n), n, caches.machine
                        )
                        if free >= n and 0.0 < host_value:
                            host, host_value = node_id, 0.0
                        continue
                    key, effs_caps = self._vertex_inputs(
                        state, node_id, n, segments, tables, caches, phases
                    )
                    scan_inputs[node_id] = (key, effs_caps)
                    t_phase = perf_counter() if phases is not None else 0.0
                    caches.vertex_lookups += 1
                    row0 = caches.row0.get(key)
                    if row0 is None:
                        row0 = self._row0_values(effs_caps, n)
                        row0.flags.writeable = False
                        caches.row0[key] = row0
                    if phases is not None:
                        phases[PHASE_TABLE_BUILD] = (
                            phases.get(PHASE_TABLE_BUILD, 0.0)
                            + perf_counter() - t_phase
                        )
                    value = float(row0[n])
                    if np.isfinite(value) and value < host_value:
                        host, host_value = node_id, value
                    pending.append(node_id)
            else:
                for node_id in node_ids:
                    table = self._build_vertex(state, node_id, n, segments, tables)
                    tables[node_id] = table
                    value = float(table.values[0, n])
                    if np.isfinite(value) and value < host_value:
                        host, host_value = node_id, value
            if host is not None:
                break
        if caches is not None:
            # Every probe that did not insert a new table was served by a
            # shared one (hits = lookups - inserts), folded in once per request.
            obs.cache("het_machine", caches.machine_lookups,
                      caches.machine_lookups - len(caches.machine))
            obs.cache("het_vertex", caches.vertex_lookups,
                      caches.vertex_lookups
                      - len(caches.row0) - len(caches.vertex))
            obs.cache("het_eff", caches.eff_lookups,
                      caches.eff_lookups - len(caches.eff))
        if host is None:
            obs.done(
                self.name, perf_counter() - t_start, admitted=False,
                reason=REASON_NO_FEASIBLE_SUBTREE, trace=trace, n_vms=n,
            )
            return None

        t_alloc = perf_counter() if phases is not None else 0.0
        node_segments: Dict[int, Tuple[int, int]] = {}
        if caches is not None:
            self._backtrack_fast(
                state, n, segments, tables, caches, {}, host, 0, n,
                node_segments, phases,
            )
        else:
            self._backtrack(tree, tables, host, 0, n, node_segments)

        machine_vms: Dict[int, Tuple[int, ...]] = {}
        link_demands: Dict[int, Normal] = {}
        for node_id, (start, end) in node_segments.items():
            if start == end:
                continue
            if tree.node(node_id).is_machine:
                machine_vms[node_id] = segments.segment_vms(start, end)
            if node_id != host and 0 < end - start < n:
                link_demands[node_id] = segments.segment_demand(start, end)
        machine_counts = {machine: len(vms) for machine, vms in machine_vms.items()}
        allocation = Allocation(
            request=request,
            request_id=request_id,
            host_node=host,
            machine_counts=machine_counts,
            machine_vms=machine_vms,
            link_demands=link_demands,
            max_occupancy=host_value,
        )
        if phases is not None:
            phases[PHASE_ALLOC] = perf_counter() - t_alloc
        obs.done(self.name, perf_counter() - t_start, admitted=True, trace=trace, n_vms=n)
        return allocation

    # ------------------------------------------------------------------
    # DP construction (reference path)
    # ------------------------------------------------------------------

    def _build_vertex(
        self,
        state: NetworkState,
        node_id: int,
        n: int,
        segments: SegmentDemandTable,
        tables: Dict[int, _SegmentTable],
    ) -> _SegmentTable:
        tree = state.tree
        node = tree.node(node_id)
        if node.is_machine:
            # Any substring short enough for the machine's free slots fits;
            # co-located VMs use no links, so the inner objective is 0.
            values = np.full((n + 1, n + 1), np.inf)
            limit = state.free_slots(node_id)
            starts, ends = np.meshgrid(np.arange(n + 1), np.arange(n + 1), indexing="ij")
            length = ends - starts
            values[(length >= 0) & (length <= limit)] = 0.0
            return _SegmentTable(values=values, choices=[])

        partial = _empty_segments(n)
        choices: List[np.ndarray] = []
        for child_id in node.children:
            child_eff = self._child_effective(state, child_id, n, segments, tables)
            new_values = np.full((n + 1, n + 1), np.inf)
            choice = np.full((n + 1, n + 1), -1, dtype=np.int64)
            for k in range(n + 1):
                # Segment [s, e) = [s, k) placed so far + [k, e) in this child.
                candidate = np.maximum(partial[:, k : k + 1], child_eff[k : k + 1, :])
                better = candidate < new_values
                new_values[better] = candidate[better]
                choice[better] = k
            partial = new_values
            choices.append(choice)
        return _SegmentTable(values=partial, choices=choices)

    def _child_effective(
        self,
        state: NetworkState,
        child_id: int,
        n: int,
        segments: SegmentDemandTable,
        tables: Dict,
    ) -> np.ndarray:
        """max(Opt(child, seg), O_uplink(seg)), inf where the uplink rejects.

        Shared verbatim by the reference and fast paths (the fast path only
        adds caching around it), so the effective matrices are bit-identical
        by construction.  A zero-capacity uplink admits nothing into the
        subtree; empty segments place nothing in it, cost exactly 0, and are
        always feasible regardless of the uplink's existing occupancy.
        """
        link_state: LinkState = state.links[child_id]
        if link_state.capacity > 0.0:
            variance = link_state.var_total + segments.demand_var
            effective_demand = (
                link_state.mean_total
                + segments.demand_mean
                + state.risk_c * np.sqrt(np.maximum(variance, 0.0))
            )
            occupancy = (
                link_state.deterministic_total + effective_demand
            ) / link_state.capacity
            effective = np.maximum(tables[child_id].values, occupancy)
            effective[occupancy >= _FEASIBLE_LIMIT] = np.inf
        else:
            # Guarded: a raw division would yield inf (or NaN for an all-zero
            # numerator), and NaN slips through every comparison mask.
            effective = np.full((n + 1, n + 1), np.inf)
        np.fill_diagonal(effective, 0.0)
        return effective

    # ------------------------------------------------------------------
    # Fast DP construction (numerically identical to the reference above)
    # ------------------------------------------------------------------

    @staticmethod
    def _machine_table(
        limit: int, n: int, machine_cache: Dict[int, _ValueTable]
    ) -> _ValueTable:
        """Shared per-free-slot-count machine table, in band form.

        Machines with the same number of free slots have identical DP tables
        (any segment no longer than ``limit`` fits at inner objective 0), so
        one read-only ``(n+1) x (limit+1)`` band serves all of them for the
        current request.
        """
        table = machine_cache.get(limit)
        if table is None:
            values = np.zeros((n + 1, limit + 1))
            over = np.arange(n + 1)[:, None] + np.arange(limit + 1)[None, :] > n
            values[over] = np.inf
            values.flags.writeable = False
            table = _ValueTable(values=values, cap=limit)
            machine_cache[limit] = table
        return table

    def _vertex_inputs(
        self,
        state: NetworkState,
        node_id: int,
        n: int,
        segments: SegmentDemandTable,
        tables: Dict,
        caches: _FastCaches,
        phases: Optional[Dict[str, float]] = None,
    ) -> Tuple[Tuple, List[Tuple[np.ndarray, int]]]:
        """Signature + per-child (effective band, tight cap) for a vertex.

        The vertex DP is a pure function of the children's tables and uplink
        states, so vertices whose children are in bit-identical states (the
        common case: most racks of a datacenter look alike) share results
        via the signature-keyed ``row0``/``vertex`` caches.  Table identity
        is safe as a key: machine tables are shared per free-slot count and
        vertex tables per signature, so equal ids imply bit-identical tables.

        The tight cap — the longest segment whose effective entry is still
        finite — is a pure function of the effective matrix, so it is cached
        alongside it and the signature caches stay consistent.  Bands built
        from tight caps exclude only provably-``inf`` candidates.
        """
        t_phase = perf_counter() if phases is not None else 0.0
        links = state.links
        free_under = state.free_slots_under
        signature: List[Tuple] = []
        entries: List = []
        caps: List[int] = []
        misses: List[Tuple[int, int, Tuple]] = []
        for index, child_id in enumerate(state.tree.node(node_id).children):
            link_state = links[child_id]
            cap = min(n, free_under(child_id))
            sig = (
                id(tables[child_id]),
                link_state.deterministic_total,
                link_state.mean_total,
                link_state.var_total,
                link_state.capacity,
                cap,
            )
            signature.append(sig)
            caps.append(cap)
            caches.eff_lookups += 1
            eff_key = sig[:5]  # child table identity + uplink state
            entry = caches.eff.get(eff_key)
            entries.append(entry)
            if entry is None:
                misses.append((index, child_id, eff_key))
        if misses:
            unique: Dict[Tuple, Tuple[int, int]] = {}
            for index, child_id, eff_key in misses:
                unique.setdefault(eff_key, (index, child_id))
            built = self._child_effective_bands(
                state, [child_id for _, child_id in unique.values()], n, caches,
                tables,
            )
            # Segments longer than the tight cap are provably inf, so bands
            # built from it exclude nothing reachable.  At small sizes the
            # scan costs more than it saves; the structural cap serves then.
            tighten = n > _DENSE_N
            for (eff_key, (index, _child_id)), eff in zip(unique.items(), built):
                eff.flags.writeable = False
                if tighten:
                    # Column 0 (empty segments) is always finite (0.0), so
                    # the finite-column set is never empty and the tight cap
                    # is well defined.
                    finite_cols = np.isfinite(eff).any(axis=0)
                    entry = (eff, int(np.nonzero(finite_cols)[0].max()))
                else:
                    entry = (eff, min(caps[index], eff.shape[1] - 1))
                caches.eff[eff_key] = entry
            for index, _child_id, eff_key in misses:
                entries[index] = caches.eff[eff_key]
        effs_caps = [
            (entry[0], min(cap, entry[1])) for entry, cap in zip(entries, caps)
        ]
        if phases is not None:
            phases[PHASE_BATCH_OCCUPANCY] = (
                phases.get(PHASE_BATCH_OCCUPANCY, 0.0) + perf_counter() - t_phase
            )
        return tuple(signature), effs_caps

    def _child_effective_bands(
        self,
        state: NetworkState,
        child_ids: List[int],
        n: int,
        caches: _FastCaches,
        tables: Dict,
    ) -> List[np.ndarray]:
        """One stacked occupancy pass over several children, in band form.

        Broadcasting the per-child uplink scalars over the band views of the
        request's segment demand moments applies the exact per-element float
        operations of :meth:`_child_effective` in the exact same order, so
        every in-band entry is bit-identical to the scalar full-matrix build
        — there are just ``O(1)`` numpy dispatches per vertex, each over
        ``O(N * cap)`` elements.  Entries past a child's ``s + d > n``
        boundary read the demand bands' padding but are forced to ``inf`` by
        the child table band (the band invariant), never by a float that
        could differ.  Zero-capacity uplinks admit only the zero-cost empty
        segment.
        """
        links = state.links
        widths = [tables[c].values.shape[1] for c in child_ids]
        results: Dict[int, np.ndarray] = {}
        live = [c for c in child_ids if links[c].capacity > 0.0]
        if live:
            wmax = max(tables[c].values.shape[1] for c in live)
            stacked_tables = np.full((len(live), n + 1, wmax), np.inf)
            for slot, child_id in enumerate(live):
                band = tables[child_id].values
                stacked_tables[slot, :, : band.shape[1]] = band
            det = np.array([links[c].deterministic_total for c in live])[:, None, None]
            mean = np.array([links[c].mean_total for c in live])[:, None, None]
            var = np.array([links[c].var_total for c in live])[:, None, None]
            capacity = np.array([links[c].capacity for c in live])[:, None, None]
            variance = var + caches.var_band[None, :, :wmax]
            effective_demand = (
                mean + caches.mean_band[None, :, :wmax]
            ) + state.risk_c * np.sqrt(np.maximum(variance, 0.0))
            occupancy = (det + effective_demand) / capacity
            stacked = np.maximum(stacked_tables, occupancy)
            stacked[occupancy >= _FEASIBLE_LIMIT] = np.inf
            stacked[:, :, 0] = 0.0
            for slot, child_id in enumerate(live):
                results[child_id] = stacked[slot, :, : tables[child_id].values.shape[1]]
        for child_id, width in zip(child_ids, widths):
            if child_id not in results:
                # Guarded zero-capacity uplink: nothing but the empty
                # segment enters the subtree (a raw division would yield
                # inf, or NaN for an all-zero numerator, and NaN slips
                # through every comparison mask).
                band = np.full((n + 1, width), np.inf)
                band[:, 0] = 0.0
                results[child_id] = band
        return [results[c] for c in child_ids]

    @staticmethod
    def _row0_values(effs_caps: List[Tuple[np.ndarray, int]], n: int) -> np.ndarray:
        """Row 0 of the vertex table: ``Opt(T_v, [0, e))`` for every ``e``.

        The host check only reads ``Opt[0, N]``, and row 0 of the sequential
        DP is closed over row 0 of its partials — ``new[0, e] = min over k
        of max(row[k], eff[k, e])`` — so a level scan needs one
        ``O(children * N * cap)`` vector pass per vertex instead of the full
        table.  With the child in band form the fold becomes an
        anti-diagonal min: ``new[e] = min over length l of
        max(row[e - l], band[e - l, l])``, one negative-stride view over a
        padded max matrix.  Every skipped candidate is outside a feasible
        band and hence provably ``inf``; same floats otherwise, hence
        bit-identical host decisions.
        """
        row = np.full(n + 1, np.inf)
        row[0] = 0.0
        for band, cap in effs_caps:
            width = cap + 1
            folded = np.maximum(row[:, None], band[:, :width])
            padded = np.full((n + width, width), np.inf)
            padded[width - 1 :] = folded
            row_stride, col_stride = padded.strides
            # shifted[l, e] = folded[e - l, l]  (inf padding where e < l).
            shifted = as_strided(
                padded[width - 1 :],
                shape=(width, n + 1),
                strides=(col_stride - row_stride, row_stride),
            )
            row = shifted.min(axis=0)
        return row

    def _balanced_values(
        self,
        effs_caps: List[Tuple[np.ndarray, int]],
        n: int,
        caches: _FastCaches,
    ) -> _ValueTable:
        """Full vertex value table via an order-preserving balanced combine.

        ``(min, max)`` over floats is exactly associative (both select an
        operand, nothing is rounded), so adjacent children can be combined
        pairwise in a balanced tree: the same candidate partitions are
        enumerated, grouped differently, and the resulting values are
        bit-identical to the sequential reference.  Balancing keeps *both*
        operands' bands small (sequential growth makes the left band reach
        ``N`` after a handful of children), and intermediates are shared by
        operand identity — runs of identical children, e.g. the machines of
        a pristine rack, collapse to ``O(log children)`` unique combines.
        """
        if not effs_caps:
            values = np.zeros((n + 1, 1))  # only empty segments, at cost 0
            values.flags.writeable = False
            return _ValueTable(values=values, cap=0)
        items = list(effs_caps)
        combined = len(items) > 1
        while len(items) > 1:
            merged: List[Tuple[np.ndarray, int]] = []
            for i in range(0, len(items) - 1, 2):
                a, cap_a = items[i]
                b, cap_b = items[i + 1]
                pair_key = (id(a), cap_a, id(b), cap_b)
                entry = caches.pair.get(pair_key)
                if entry is None:
                    values = self._combine_band_values(a, cap_a, b, cap_b, n)
                    values.flags.writeable = False
                    entry = (values, min(n, cap_a + cap_b), a, b)
                    caches.pair[pair_key] = entry
                merged.append((entry[0], entry[1]))
            if len(items) % 2:
                merged.append(items[-1])
            items = merged
        values, cap = items[0]
        values = values[:, : cap + 1]
        if combined and n > _DENSE_N:
            # One tight-cap scan per materialized vertex (the pair combines
            # above carry the loose structural cap) keeps the next level's
            # bands at the true finite width.
            finite_cols = np.isfinite(values).any(axis=0)
            cap = int(np.nonzero(finite_cols)[0].max())
            values = values[:, : cap + 1]
        return _ValueTable(values=values, cap=cap)

    @staticmethod
    def _combine_band_values(
        a: np.ndarray, cap_a: int, b: np.ndarray, cap_b: int, n: int
    ) -> np.ndarray:
        """Values-only band combine — ``O(cap_a * cap_b * N)`` contiguous ops.

        In band coordinates the segment combine reads
        ``new[s, d] = min over j of max(a[s, j], b[s + j, d - j])`` with
        ``j`` the length placed in the left operand.  The *smaller* cap is
        enumerated: each iteration fixes one split length and folds a
        rectangular slice of the other operand with an in-place min (the
        ``cap_a > cap_b`` branch walks ``b``'s split lengths and reads
        ``b[s + d - db, db]`` — a function of ``s + d`` — through a
        stride-trick view of one padded column).  Every skipped ``j`` is
        outside a feasible band and hence provably ``inf``; min/max are
        exactly associative and commutative over floats, so any fold order
        gives the reference's values bit for bit.  The output keeps the band
        invariant: entries with ``s + d > n`` only ever see ``inf``
        candidates (both operands hold the invariant) and stay ``inf``.
        """
        width = min(n, cap_a + cap_b) + 1
        out = np.full((n + 1, width), np.inf)
        if cap_a <= cap_b:
            for da in range(min(cap_a, n) + 1):
                hi = min(da + cap_b + 1, width)
                # new[s, da + t] <- max(a[s, da], b[s + da, t])
                tmp = np.maximum(
                    a[: n + 1 - da, da][:, None], b[da:, : hi - da]
                )
                np.minimum(
                    out[: n + 1 - da, da:hi], tmp, out=out[: n + 1 - da, da:hi]
                )
        else:
            for db in range(min(cap_b, n) + 1):
                hi = min(db + cap_a + 1, width)
                column = np.concatenate([b[:, db], np.full(cap_a, np.inf)])
                (stride,) = column.strides
                # shifted[s, t] = b[s + t, db]
                shifted = as_strided(
                    column, shape=(n + 1, hi - db), strides=(stride, stride)
                )
                tmp = np.maximum(a[:, : hi - db], shifted)
                np.minimum(out[:, db:hi], tmp, out=out[:, db:hi])
        return out

    @staticmethod
    def _combine_band(
        partial: np.ndarray,
        prev_cap: int,
        child_eff: np.ndarray,
        child_cap: int,
        n: int,
    ) -> Tuple[np.ndarray, int, np.ndarray]:
        """Banded (min, max)-combine with split choices (placement rebuilds).

        Produces exactly what the reference per-``k`` scan produces:
        ``new[s, e] = min over k of max(partial[s, k], child_eff[k, e])``
        and the *first* minimizing ``k`` (``argmin`` returns the first
        occurrence, matching the reference's strict ``<`` update; every
        ``k`` a band excludes is provably ``inf`` and so never the
        minimizer of a finite entry).

        Finite candidates need ``s <= k <= s + prev_cap`` (everything the
        left operand could absorb) and ``k <= e <= k + child_cap`` (what the
        right operand can hold — both caps are tight finite bands), so with
        ``j = k - s`` and ``d = e - s`` the whole search lives in an
        ``(n+1) x (D+1) x (J+1)`` tensor with ``J = prev_cap`` and
        ``D = min(n, prev_cap + child_cap)`` instead of the full
        ``(n+1)^3``.  Only max/compare operations touch the floats, so the
        surviving values are bit-identical to the reference's.

        Returns ``(values, tight, choices)`` where ``tight`` is the longest
        segment with a finite result — the tight band for the next combine.
        """
        cap_j = prev_cap
        cap_l = child_cap
        cap_d = min(n, prev_cap + child_cap)
        s = np.arange(n + 1)
        j = np.arange(cap_j + 1)
        d = np.arange(cap_d + 1)

        # Partial band pb[s, j] = partial[s, s + j] (inf where s + j > n).
        cols = s[:, None] + j[None, :]
        pb = partial[s[:, None], np.minimum(cols, n)]
        pb[cols > n] = np.inf

        # Child band padded: cb[k, l] = child_eff[k, k + l]; the child is
        # already in band form (inf past ``k + l > n`` by the invariant);
        # the extra row/column catch out-of-range k and l with a permanent
        # inf.
        cb = np.full((n + 2, cap_l + 2), np.inf)
        cb[: n + 1, : cap_l + 1] = child_eff[:, : cap_l + 1]

        # cand[s, d, j] = max(pb[s, j], cb[s + j, d - j])
        row = np.minimum(s[:, None, None] + j[None, None, :], n + 1)
        off = d[None, :, None] - j[None, None, :]
        off = np.where((off < 0) | (off > cap_l), cap_l + 1, off)
        cand = np.maximum(pb[:, None, :], cb[row, off])
        jmin = np.argmin(cand, axis=2)
        band_values = np.take_along_axis(cand, jmin[:, :, None], axis=2)[:, :, 0]

        new_values = np.full((n + 1, n + 1), np.inf)
        ecols = s[:, None] + d[None, :]
        valid = (ecols <= n) & np.isfinite(band_values)
        s_idx, d_idx = np.nonzero(valid)
        e_idx = ecols[valid]
        new_values[s_idx, e_idx] = band_values[valid]
        tight = int(d_idx.max()) if d_idx.size else 0
        choice = np.full((n + 1, n + 1), -1, dtype=np.int64)
        choice[s_idx, e_idx] = s_idx + jmin[s_idx, d_idx]
        return new_values, tight, choice

    def _build_vertex_choices(
        self,
        state: NetworkState,
        node_id: int,
        n: int,
        segments: SegmentDemandTable,
        tables: Dict,
        caches: _FastCaches,
        phases: Optional[Dict[str, float]] = None,
    ) -> _SegmentTable:
        """Sequential banded rebuild, with split choices, of one vertex.

        Only vertices on the accepted placement path need their per-child
        split points, so the search keeps value-only tables and this rebuild
        runs for a handful of vertices per admit.  The sequential
        left-to-right prefix order is exactly the reference's, so the
        recorded first-minimizing splits are the reference's splits.
        """
        _key, effs_caps = self._vertex_inputs(
            state, node_id, n, segments, tables, caches, phases
        )
        t_phase = perf_counter() if phases is not None else 0.0
        partial = _empty_segments(n)
        prev_cap = 0
        choices: List[np.ndarray] = []
        for eff, cap in effs_caps:
            partial, prev_cap, choice = self._combine_band(partial, prev_cap, eff, cap, n)
            choices.append(choice)
        if phases is not None:
            phases[PHASE_COMBINE] = (
                phases.get(PHASE_COMBINE, 0.0) + perf_counter() - t_phase
            )
        return _SegmentTable(values=partial, choices=choices)

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------

    def _backtrack(
        self,
        tree,
        tables: Dict[int, _SegmentTable],
        node_id: int,
        start: int,
        end: int,
        node_segments: Dict[int, Tuple[int, int]],
    ) -> None:
        node_segments[node_id] = (start, end)
        if start == end:
            return
        node = tree.node(node_id)
        if node.is_machine:
            return
        table = tables[node_id]
        right = end
        for index in range(len(node.children) - 1, -1, -1):
            split = int(table.choices[index][start, right])
            if split < 0:
                raise RuntimeError(f"backtracking hit an infeasible segment at {node_id}")
            self._backtrack(tree, tables, node.children[index], split, right, node_segments)
            right = split
        if right != start:
            raise RuntimeError(f"backtracking left [{start}, {right}) unassigned at {node_id}")

    def _backtrack_fast(
        self,
        state: NetworkState,
        n: int,
        segments: SegmentDemandTable,
        tables: Dict,
        caches: _FastCaches,
        choice_tables: Dict[int, _SegmentTable],
        node_id: int,
        start: int,
        end: int,
        node_segments: Dict[int, Tuple[int, int]],
        phases: Optional[Dict[str, float]] = None,
    ) -> None:
        """Reference backtrack over lazily rebuilt choice tables."""
        node_segments[node_id] = (start, end)
        if start == end:
            return
        tree = state.tree
        node = tree.node(node_id)
        if node.is_machine:
            return
        table = choice_tables.get(node_id)
        if table is None:
            table = self._build_vertex_choices(
                state, node_id, n, segments, tables, caches, phases
            )
            choice_tables[node_id] = table
        right = end
        for index in range(len(node.children) - 1, -1, -1):
            split = int(table.choices[index][start, right])
            if split < 0:
                raise RuntimeError(f"backtracking hit an infeasible segment at {node_id}")
            self._backtrack_fast(
                state, n, segments, tables, caches, choice_tables,
                node.children[index], split, right, node_segments, phases,
            )
            right = split
        if right != start:
            raise RuntimeError(f"backtracking left [{start}, {right}) unassigned at {node_id}")
