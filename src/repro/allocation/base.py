"""Allocator interface and the allocation record.

An allocator maps a tenant request onto empty VM slots such that every
physical link still satisfies the probabilistic guarantee (Eq. 4 — i.e.
``O_L < 1`` on all links).  The result is an :class:`Allocation`: which
machines host how many VMs, and the demand footprint recorded on every link
that separates parts of the cluster.  Allocations are pure descriptions —
:meth:`repro.network.link_state.NetworkState.commit` applies them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.abstractions.requests import VirtualClusterRequest
from repro.network.link_state import NetworkState
from repro.stochastic.normal import Normal
from repro.topology.tree import Tree


@dataclass
class Allocation:
    """A concrete placement of a virtual cluster in the datacenter.

    ``machine_counts`` maps machine node-id to the number of VMs it hosts;
    ``link_demands`` maps link-id to the request's demand on that link (a
    degenerate :class:`Normal` for deterministic requests).  For
    heterogeneous requests ``machine_vms`` additionally records *which* VM
    indices each machine hosts.  ``max_occupancy`` is the objective value —
    the maximum post-allocation ``O_L`` over the links of the hosting subtree
    — reported by the optimizing allocators (NaN when not computed).
    """

    request: VirtualClusterRequest
    request_id: int
    host_node: int
    machine_counts: Dict[int, int]
    link_demands: Dict[int, Normal]
    machine_vms: Optional[Dict[int, Tuple[int, ...]]] = None
    max_occupancy: float = float("nan")

    def __post_init__(self) -> None:
        placed = sum(self.machine_counts.values())
        if placed != self.request.n_vms:
            raise ValueError(
                f"allocation places {placed} VMs but the request asks for {self.request.n_vms}"
            )
        if any(count <= 0 for count in self.machine_counts.values()):
            raise ValueError("machine_counts must only contain positive entries")
        if self.machine_vms is not None:
            for machine_id, vms in self.machine_vms.items():
                if len(vms) != self.machine_counts.get(machine_id, 0):
                    raise ValueError(
                        f"machine {machine_id}: VM identity list disagrees with its count"
                    )

    @property
    def deterministic(self) -> bool:
        """Whether the footprint is reserved (``D_L``) or statistically shared."""
        return self.request.is_deterministic

    @property
    def num_machines(self) -> int:
        return len(self.machine_counts)


def expand_vm_placement(allocation: Allocation) -> List[int]:
    """Machine id hosting each VM, indexed by VM number ``0..N-1``.

    For heterogeneous allocations the recorded VM identities are honored;
    for homogeneous ones VMs are interchangeable and numbered machine by
    machine in ascending machine-id order (deterministic for the simulator).
    """
    placement: List[int] = [-1] * allocation.request.n_vms
    if allocation.machine_vms is not None:
        for machine_id, vms in allocation.machine_vms.items():
            for vm in vms:
                placement[vm] = machine_id
    else:
        vm = 0
        for machine_id in sorted(allocation.machine_counts):
            for _ in range(allocation.machine_counts[machine_id]):
                placement[vm] = machine_id
                vm += 1
    if any(machine < 0 for machine in placement):
        raise ValueError("allocation does not cover every VM")
    return placement


def link_demands_from_counts(
    tree: Tree,
    host_node: int,
    machine_counts: Dict[int, int],
    split_mean: np.ndarray,
    split_var: np.ndarray,
) -> Dict[int, Normal]:
    """Per-link demand footprint of a homogeneous placement.

    Accumulates per-machine VM counts up the tree to ``host_node`` and looks
    up the Lemma-1 split moments for each crossed link.  Links with the whole
    cluster (or none of it) below carry zero demand and are omitted; in
    particular nothing is recorded at or above the hosting subtree's uplink.
    """
    n = len(split_mean) - 1
    below: Dict[int, int] = {}
    for machine_id, count in machine_counts.items():
        node_id = machine_id
        while node_id != host_node:
            below[node_id] = below.get(node_id, 0) + count
            parent = tree.node(node_id).parent
            if parent is None:
                raise ValueError(f"machine {machine_id} is not under host node {host_node}")
            node_id = parent
    demands: Dict[int, Normal] = {}
    for node_id, count in below.items():
        if 0 < count < n:
            demands[node_id] = Normal.from_variance(
                float(split_mean[count]), float(split_var[count])
            )
    return demands


class Allocator(abc.ABC):
    """Interface shared by every VM allocation algorithm."""

    #: Short identifier used in experiment tables and logs.
    name: str = "allocator"

    @abc.abstractmethod
    def allocate(
        self, state: NetworkState, request: VirtualClusterRequest, request_id: int
    ) -> Optional[Allocation]:
        """Place ``request`` given the current network state.

        Returns the allocation (without committing it), or None when no valid
        placement exists — the admission-control rejection of Section III-C.
        """

    def supports(self, request: VirtualClusterRequest) -> bool:
        """Whether this algorithm can handle the given request type."""
        return True

    def resize_link_demands(
        self,
        state: NetworkState,
        new_request: VirtualClusterRequest,
        host_node: int,
        machine_counts: Dict[int, int],
        machine_vms: Optional[Dict[int, Tuple[int, ...]]] = None,
    ) -> Dict[int, Normal]:
        """Recompute a placement's per-link demand for a resized request.

        The in-place resize planner (:mod:`repro.allocation.resize`) keeps a
        tenant's placement and asks the allocator that understands the
        request kind for the new Eq. 6 footprint over that placement.
        Allocators that cannot answer leave this default, which refuses.
        """
        raise TypeError(
            f"{self.name} cannot recompute link demands for a "
            f"{type(new_request).__name__}"
        )

    def occupancy_delta(
        self, state: NetworkState, old_allocation: Allocation, new_allocation: Allocation
    ) -> Dict[int, float]:
        """Per-link Eq. 6 occupancy if ``old`` were swapped for ``new``.

        A read-only probe over the links either footprint touches; the
        in-place resize commits only when every value stays below 1 (Eq. 4).
        """
        from repro.allocation.resize import swap_occupancies

        return swap_occupancies(state, old_allocation, new_allocation)

    def batch_context(self) -> "BatchContext":
        """A context for a run of *sequential* allocate calls that may share
        work between them (the service's admission batcher drives one batch
        of coalesced same-shape requests through a single context).

        The contract is strict: ``context.allocate(state, request, rid)``
        must return exactly what ``self.allocate(state, request, rid)``
        would — batching is an amortization, never a semantic change.  The
        base implementation shares nothing; allocators with reusable DP
        tables override this (see ``svc_homogeneous``).
        """
        return BatchContext(self)


class BatchContext:
    """Pass-through batch context: one allocator, no shared state.

    Subclasses may carry caches that survive across ``allocate`` calls, as
    long as every state-dependent input either is re-read per call or
    participates in the cache key — that is what keeps batched decisions
    bit-identical to sequential ones.  Contexts are single-threaded: the
    admission service drives one context per worker batch, under its lock.
    """

    def __init__(self, allocator: Allocator) -> None:
        self.allocator = allocator

    def allocate(
        self, state: NetworkState, request: VirtualClusterRequest, request_id: int
    ) -> Optional[Allocation]:
        return self.allocator.allocate(state, request, request_id)

    def note_commit(self, state: NetworkState, allocation: Allocation) -> None:
        """The caller committed ``allocation`` to ``state``.

        :meth:`NetworkManager.request` calls this after every successful
        commit inside a batch, letting caching contexts invalidate exactly
        the dirty path instead of rediscovering it by re-keying every
        vertex.  Contexts must stay correct without it (mutations they were
        not told about are caught via ``state.version``); the notification
        is purely a precision upgrade.  Default: nothing cached, no-op.
        """
