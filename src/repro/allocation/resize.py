"""Elastic resize planning: in-place feasibility for a resized tenancy.

The paper's admission model is placement-once, but tenants grow and shrink.
This module plans an **in-place** resize — reuse the tenant's existing
placement, recompute the per-link Eq. 6 occupancy with the new
``(N, mu, sigma)`` via :mod:`repro.allocation.demand_model`, and accept only
if every touched link stays strictly feasible (Eq. 4, ``O_L < 1``):

* *grow* adds the new VMs to the tenant's current machines first (then to
  other machines under the same hosting subtree), so locality is preserved
  and no existing VM migrates;
* *shrink* releases the highest-index VMs, exactly inverting the VM
  numbering of :func:`repro.allocation.base.expand_vm_placement`.

When no in-place plan exists (``plan_in_place`` returns None) the caller
falls back to an atomic release + re-admit through the allocator — see
:meth:`repro.manager.network_manager.NetworkManager.resize`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.abstractions.requests import (
    DeterministicVC,
    HeterogeneousSVC,
    HomogeneousSVC,
    VirtualClusterRequest,
)
from repro.allocation.base import Allocation, Allocator, expand_vm_placement
from repro.network.link_state import NetworkState
from repro.stochastic.normal import Normal

_FEASIBLE_LIMIT = 1.0  # validity is the strict inequality O_L < 1 (Eq. 4)


def resized_request(
    request: VirtualClusterRequest,
    new_n: Optional[int] = None,
    new_mu: Optional[float] = None,
    new_sigma: Optional[float] = None,
) -> VirtualClusterRequest:
    """The request a tenant becomes after a resize; kind is preserved.

    ``new_mu`` maps onto the per-VM bandwidth for :class:`DeterministicVC`
    and the per-VM demand mean for the stochastic kinds.  For
    :class:`HeterogeneousSVC` a shrink truncates the highest VM indices and
    a grow appends VMs whose demand defaults to the last VM's; when the VM
    count is unchanged, ``new_mu``/``new_sigma`` override every VM's moment.
    Validation happens in the request dataclasses themselves.
    """
    if new_n is None and new_mu is None and new_sigma is None:
        raise ValueError("resize needs at least one of new_n, new_mu, new_sigma")
    if isinstance(request, DeterministicVC):
        if new_sigma is not None and new_sigma != 0.0:
            raise ValueError("deterministic requests carry no sigma to resize")
        return DeterministicVC(
            n_vms=request.n_vms if new_n is None else int(new_n),
            bandwidth=request.bandwidth if new_mu is None else float(new_mu),
        )
    if isinstance(request, HomogeneousSVC):
        return HomogeneousSVC(
            n_vms=request.n_vms if new_n is None else int(new_n),
            mean=request.mean if new_mu is None else float(new_mu),
            std=request.std if new_sigma is None else float(new_sigma),
        )
    if isinstance(request, HeterogeneousSVC):
        n = request.n_vms if new_n is None else int(new_n)
        if n < 1:
            raise ValueError(f"resize target must keep at least one VM, got {n}")
        demands = list(request.demands[:n])
        if n <= request.n_vms and (new_mu is not None or new_sigma is not None):
            demands = [
                Normal(
                    d.mean if new_mu is None else float(new_mu),
                    d.std if new_sigma is None else float(new_sigma),
                )
                for d in demands
            ]
        template = demands[-1]
        while len(demands) < n:
            demands.append(
                Normal(
                    template.mean if new_mu is None else float(new_mu),
                    template.std if new_sigma is None else float(new_sigma),
                )
            )
        return HeterogeneousSVC(n_vms=n, demands=tuple(demands))
    raise TypeError(f"cannot resize a {type(request).__name__}")


def swap_occupancies(
    state: NetworkState, old_allocation: Allocation, new_allocation: Allocation
) -> Dict[int, float]:
    """Eq. 6 occupancy of every touched link if old were swapped for new.

    Probes :meth:`LinkState.occupancy_with` with the *delta* between the new
    and old footprints — the resident old footprint is still committed, so
    the delta form asks exactly "what would ``O_L`` be after the swap"
    without mutating anything.
    """
    deterministic = old_allocation.deterministic
    occupancies: Dict[int, float] = {}
    touched = set(old_allocation.link_demands) | set(new_allocation.link_demands)
    for link_id in touched:
        link_state = state.links[link_id]
        old_demand = old_allocation.link_demands.get(link_id)
        new_demand = new_allocation.link_demands.get(link_id)
        old_mean = old_demand.mean if old_demand is not None else 0.0
        old_var = old_demand.variance if old_demand is not None else 0.0
        new_mean = new_demand.mean if new_demand is not None else 0.0
        new_var = new_demand.variance if new_demand is not None else 0.0
        if deterministic:
            occupancies[link_id] = link_state.occupancy_with(
                state.risk_c, extra_deterministic=new_mean - old_mean
            )
        else:
            occupancies[link_id] = link_state.occupancy_with(
                state.risk_c,
                extra_mean=new_mean - old_mean,
                extra_var=new_var - old_var,
            )
    return occupancies


@dataclass(frozen=True)
class ResizePlan:
    """A feasible in-place resize: the new allocation + its occupancy probe."""

    allocation: Allocation
    occupancy_after: Dict[int, float]


def plan_in_place(
    state: NetworkState,
    allocator: Allocator,
    old_allocation: Allocation,
    new_request: VirtualClusterRequest,
) -> Optional[ResizePlan]:
    """Plan a resize on the tenant's current placement, or None.

    None means either the grow does not fit under the current hosting
    subtree or a touched link would violate Eq. 4 — the caller falls back
    to release + re-admit.  The returned allocation keeps the tenant's
    request id and host node; only counts/identities and link demands move.
    """
    old = old_allocation
    n_old = old.request.n_vms
    n_new = new_request.n_vms
    heterogeneous = old.machine_vms is not None

    machine_vms: Optional[Dict[int, tuple]] = None
    if n_new == n_old:
        machine_counts = dict(old.machine_counts)
        if heterogeneous:
            machine_vms = {m: tuple(v) for m, v in old.machine_vms.items()}
    elif n_new < n_old:
        if heterogeneous:
            machine_vms = {}
            for machine_id, vms in old.machine_vms.items():
                kept = tuple(vm for vm in vms if vm < n_new)
                if kept:
                    machine_vms[machine_id] = kept
            machine_counts = {m: len(v) for m, v in machine_vms.items()}
        else:
            placement = expand_vm_placement(old)
            machine_counts = {}
            for machine_id in placement[:n_new]:
                machine_counts[machine_id] = machine_counts.get(machine_id, 0) + 1
    else:
        machine_counts = dict(old.machine_counts)
        if heterogeneous:
            machine_vms = {m: tuple(v) for m, v in old.machine_vms.items()}
        remaining = n_new - n_old
        next_vm = n_old
        current = sorted(machine_counts)
        others = [
            machine_id
            for machine_id in state.tree.machines_under(old.host_node)
            if machine_id not in machine_counts
        ]
        for machine_id in current + sorted(others):
            if remaining == 0:
                break
            take = min(state.free_slots(machine_id), remaining)
            if take <= 0:
                continue
            machine_counts[machine_id] = machine_counts.get(machine_id, 0) + take
            if machine_vms is not None:
                machine_vms[machine_id] = machine_vms.get(machine_id, ()) + tuple(
                    range(next_vm, next_vm + take)
                )
                next_vm += take
            remaining -= take
        if remaining:
            return None  # the grow does not fit under the current host subtree

    link_demands = allocator.resize_link_demands(
        state, new_request, old.host_node, machine_counts, machine_vms
    )
    allocation = Allocation(
        request=new_request,
        request_id=old.request_id,
        host_node=old.host_node,
        machine_counts=machine_counts,
        link_demands=link_demands,
        machine_vms=machine_vms,
    )
    occupancy_after = swap_occupancies(state, old, allocation)
    if any(occ >= _FEASIBLE_LIMIT for occ in occupancy_after.values()):
        return None
    allocation.max_occupancy = max(occupancy_after.values(), default=0.0)
    return ResizePlan(allocation=allocation, occupancy_after=occupancy_after)
