"""Request-type dispatching composite allocator.

The network sharing framework accepts deterministic VC, homogeneous SVC, and
heterogeneous SVC requests side by side (Section III-A: "the deterministic
and stochastic bandwidth requirements can co-exist").  The dispatcher routes
each request to the algorithm that handles its type.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.abstractions.requests import VirtualClusterRequest
from repro.allocation.base import Allocation, Allocator, BatchContext
from repro.allocation.first_fit import FirstFitAllocator
from repro.allocation.svc_het_heuristic import SVCHeterogeneousAllocator
from repro.allocation.svc_homogeneous import (
    AdaptedTIVCAllocator,
    SVCHomogeneousAllocator,
)
from repro.network.link_state import NetworkState


class DispatchingAllocator(Allocator):
    """Routes each request to the first registered allocator that supports it.

    Rejections are attributed: when the supporting allocator returns None,
    :attr:`last_rejected_by` names it and :attr:`rejection_counts` tallies it
    — the service stats endpoint reports these so operators can tell *which*
    algorithm is turning tenants away.
    """

    name = "dispatch"

    def __init__(self, allocators: Sequence[Allocator]) -> None:
        if not allocators:
            raise ValueError("at least one allocator is required")
        self._allocators = tuple(allocators)
        #: Name of the allocator whose None the last ``allocate`` call
        #: returned; None after a successful allocation.
        self.last_rejected_by: Optional[str] = None
        #: Lifetime rejection tally per allocator name.
        self.rejection_counts: Dict[str, int] = {}

    def supports(self, request: VirtualClusterRequest) -> bool:
        return any(allocator.supports(request) for allocator in self._allocators)

    def allocate(
        self,
        state: NetworkState,
        request: VirtualClusterRequest,
        request_id: int,
        batch: Optional["_DispatchingBatch"] = None,
    ) -> Optional[Allocation]:
        for allocator in self._allocators:
            if allocator.supports(request):
                if batch is not None:
                    allocation = batch.context_for(allocator).allocate(
                        state, request, request_id
                    )
                else:
                    allocation = allocator.allocate(state, request, request_id)
                if allocation is None:
                    self.last_rejected_by = allocator.name
                    self.rejection_counts[allocator.name] = (
                        self.rejection_counts.get(allocator.name, 0) + 1
                    )
                else:
                    self.last_rejected_by = None
                return allocation
        raise TypeError(
            f"no registered allocator supports {type(request).__name__} "
            f"(registered: {[a.name for a in self._allocators]})"
        )

    def resize_link_demands(
        self,
        state: NetworkState,
        new_request: VirtualClusterRequest,
        host_node: int,
        machine_counts,
        machine_vms=None,
    ):
        for allocator in self._allocators:
            if allocator.supports(new_request):
                return allocator.resize_link_demands(
                    state, new_request, host_node, machine_counts, machine_vms
                )
        raise TypeError(
            f"no registered allocator supports {type(new_request).__name__} "
            f"(registered: {[a.name for a in self._allocators]})"
        )

    def batch_context(self) -> "BatchContext":
        return _DispatchingBatch(self)


class _DispatchingBatch(BatchContext):
    """Routes each batch member to its allocator's own batch context.

    Dispatch itself is stateless, so the only thing to carry across calls is
    the per-allocator context (where the DP table sharing lives).  Rejection
    attribution still flows through the dispatcher's counters, exactly as in
    the unbatched path.
    """

    def __init__(self, dispatcher: DispatchingAllocator) -> None:
        super().__init__(dispatcher)
        self._contexts: Dict[int, BatchContext] = {}

    def context_for(self, allocator: Allocator) -> BatchContext:
        context = self._contexts.get(id(allocator))
        if context is None:
            context = allocator.batch_context()
            self._contexts[id(allocator)] = context
        return context

    def allocate(
        self, state: NetworkState, request: VirtualClusterRequest, request_id: int
    ) -> Optional[Allocation]:
        return self.allocator.allocate(state, request, request_id, batch=self)

    def note_commit(self, state: NetworkState, allocation) -> None:
        # Every member context caches against the same state: all of them
        # need the dirty path, not just the one that produced the placement.
        for context in self._contexts.values():
            context.note_commit(state, allocation)


def default_allocator() -> DispatchingAllocator:
    """The paper's system: Algorithm 1 + the substring heuristic.

    Homogeneous SVC and deterministic VC requests go through the optimizing
    DP (Algorithm 1); heterogeneous SVC requests through the substring
    heuristic with occupancy optimization.
    """
    return DispatchingAllocator([SVCHomogeneousAllocator(), SVCHeterogeneousAllocator()])


def baseline_allocator() -> DispatchingAllocator:
    """The comparison stack: adapted TIVC + plain first fit (Section VI-B3)."""
    return DispatchingAllocator([AdaptedTIVCAllocator(), FirstFitAllocator()])


def first_fit_allocator() -> DispatchingAllocator:
    """Locality-greedy first fit only, for all request types."""
    return DispatchingAllocator([FirstFitAllocator()])


ALLOCATOR_FACTORIES = {
    "default": default_allocator,
    "baseline": baseline_allocator,
    "first-fit": first_fit_allocator,
}
"""Named allocator stacks selectable from the CLI (``--allocator``)."""


def allocator_by_name(name: str) -> DispatchingAllocator:
    """Build one of the named allocator stacks, with a helpful error."""
    try:
        factory = ALLOCATOR_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown allocator {name!r}; choose from {sorted(ALLOCATOR_FACTORIES)}"
        ) from None
    return factory()
