"""Plain first-fit heterogeneous allocation (Section V-B / VI-B3 baseline).

"In FF, VMs are sorted by their bandwidth demands and then placed
sequentially in the first subtree having sufficient bandwidth and empty VM
slots.  Once a VM cannot be allocated to the current subtree, [the] next
child subtree is tried."

We walk the machines in tree order, maintaining for the current machine and
every ancestor switch the contiguous segment of the sorted sequence placed in
its subtree so far.  Placing the next VM is allowed when every one of those
uplinks still satisfies ``O_L < 1`` under its extended segment (validity per
Section V-A, checked with the final rest-of-cluster-outside split, which is
exact because first fit never revisits a closed subtree).  No backtracking,
no occupancy optimization — this is the baseline the substring heuristic is
compared against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.abstractions.requests import HeterogeneousSVC, VirtualClusterRequest
from repro.allocation.base import Allocation, Allocator
from repro.allocation.demand_model import SegmentDemandTable
from repro.network.link_state import NetworkState
from repro.stochastic.normal import Normal

_FEASIBLE_LIMIT = 1.0


class FirstFitAllocator(Allocator):
    """Sequential greedy placement of the percentile-sorted VM sequence."""

    name = "first-fit"

    def __init__(self, percentile: float = 95.0) -> None:
        self._percentile = percentile

    def supports(self, request: VirtualClusterRequest) -> bool:
        return isinstance(request, HeterogeneousSVC)

    def allocate(
        self, state: NetworkState, request: VirtualClusterRequest, request_id: int
    ) -> Optional[Allocation]:
        if not isinstance(request, HeterogeneousSVC):
            raise TypeError(f"{self.name} only places heterogeneous SVC requests")
        n = request.n_vms
        if n > state.total_free_slots:
            return None
        segments = SegmentDemandTable(request, percentile=self._percentile)
        tree = state.tree

        # Segment start per node: the sorted position at which its subtree
        # began receiving VMs (None = nothing placed there yet).
        segment_start: Dict[int, int] = {}
        machine_segments: List[Tuple[int, int, int]] = []  # (machine, start, end)
        position = 0
        for machine_id in tree.machine_ids:
            if position == n:
                break
            free = state.free_slots(machine_id)
            if free == 0:
                continue
            placed_here = 0
            start_here = position
            while position < n and placed_here < free:
                if not self._can_extend(state, tree, segments, segment_start, machine_id, position):
                    break
                self._extend(tree, segment_start, machine_id, position)
                position += 1
                placed_here += 1
            if placed_here:
                machine_segments.append((machine_id, start_here, position))
        if position < n:
            return None

        machine_vms = {
            machine_id: segments.segment_vms(start, end)
            for machine_id, start, end in machine_segments
        }
        machine_counts = {m: len(vms) for m, vms in machine_vms.items()}
        host = self._hosting_subtree(tree, [m for m, _, _ in machine_segments])
        link_demands: Dict[int, Normal] = {}
        for node_id, start in segment_start.items():
            if node_id == host:
                continue
            end = self._segment_end(tree, segment_start, machine_segments, node_id)
            if 0 < end - start < n:
                link_demands[node_id] = segments.segment_demand(start, end)
        max_occ = 0.0
        for link in tree.links_under(host):
            link_state = state.links[link.link_id]
            demand = link_demands.get(link.link_id)
            if demand is None:
                occ = link_state.occupancy(state.risk_c)
            else:
                occ = link_state.occupancy_with(
                    state.risk_c, extra_mean=demand.mean, extra_var=demand.variance
                )
            max_occ = max(max_occ, occ)
        return Allocation(
            request=request,
            request_id=request_id,
            host_node=host,
            machine_counts=machine_counts,
            machine_vms=machine_vms,
            link_demands=link_demands,
            max_occupancy=max_occ,
        )

    # ------------------------------------------------------------------

    def _can_extend(
        self,
        state: NetworkState,
        tree,
        segments: SegmentDemandTable,
        segment_start: Dict[int, int],
        machine_id: int,
        position: int,
    ) -> bool:
        """Would placing sorted VM ``position`` on ``machine_id`` stay valid?

        Checks ``O_L < 1`` on the machine uplink and every ancestor uplink
        under the extended segment ``[start_v, position + 1)``.
        """
        for link_id in tree.uplink_chain(machine_id):
            start = segment_start.get(link_id, position)
            demand = segments.segment_demand(start, position + 1)
            occ = state.links[link_id].occupancy_with(
                state.risk_c, extra_mean=demand.mean, extra_var=demand.variance
            )
            if occ >= _FEASIBLE_LIMIT:
                return False
        return True

    @staticmethod
    def _extend(tree, segment_start: Dict[int, int], machine_id: int, position: int) -> None:
        for link_id in tree.uplink_chain(machine_id):
            segment_start.setdefault(link_id, position)

    @staticmethod
    def _hosting_subtree(tree, machines: List[int]) -> int:
        """Lowest common ancestor of the used machines (the hosting subtree)."""
        if len(machines) == 1:
            return machines[0]
        # Root-first ancestor paths; the host is the deepest common prefix node.
        paths = [
            [tree.root_id] + list(reversed(tree.uplink_chain(machine)))
            for machine in machines
        ]
        depth = min(len(path) for path in paths)
        host = tree.root_id
        for level in range(depth):
            candidates = {path[level] for path in paths}
            if len(candidates) != 1:
                break
            host = candidates.pop()
        return host

    @staticmethod
    def _segment_end(
        tree,
        segment_start: Dict[int, int],
        machine_segments: List[Tuple[int, int, int]],
        node_id: int,
    ) -> int:
        """Last sorted position (exclusive) placed inside ``node_id``'s subtree."""
        end = segment_start[node_id]
        machines = set(tree.machines_under(node_id))
        for machine_id, _start, seg_end in machine_segments:
            if machine_id in machines:
                end = max(end, seg_end)
        return end
