"""Exact DP allocation for heterogeneous SVC (Section V-B, first algorithm).

The homogeneous DP generalizes by letting allocable sets contain *VM subsets*
instead of VM counts.  The number of subsets is ``O(2^N)`` per subtree, so the
algorithm is exponential — "which can be applied for small N but is
infeasible for large N".  We implement it faithfully with bitmask subsets and
guard against large ``N``; it serves as the optimality reference the
substring heuristic is validated against in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.abstractions.requests import HeterogeneousSVC, VirtualClusterRequest
from repro.allocation.base import Allocation, Allocator
from repro.allocation.demand_model import _vec_min_moments
from repro.network.link_state import LinkState, NetworkState
from repro.obs.instruments import (
    REASON_NO_FEASIBLE_SUBTREE,
    REASON_NO_FREE_SLOTS,
    admission_instruments,
)
from repro.stochastic.normal import Normal

#: Hard cap on N for the exact algorithm; beyond this the state space
#: (2^N subsets per vertex) makes the search impractical by design.
MAX_EXACT_VMS = 14

_FEASIBLE_LIMIT = 1.0


#: Bounded memo of :func:`_mask_split_demands` results (same discipline as
#: ``demand_model._SPLIT_MOMENTS_CACHE``): exhaustive test sweeps and repeated
#: small requests reuse the ``O(2^N)`` subset moments instead of recomputing.
_MASK_MOMENTS_CACHE: "dict" = {}
_MASK_MOMENTS_CACHE_MAX = 128


def _mask_split_demands(request: HeterogeneousSVC) -> Tuple[np.ndarray, np.ndarray]:
    """Demand moments on a link for *every* VM subset, indexed by bitmask.

    ``mu[mask]``/``var[mask]`` give the moments of ``min(B(mask), B(~mask))``.
    Computed via subset-sum DP over bits and one vectorized Lemma 1 pass.
    Memoized per request shape; the cached arrays are read-only.
    """
    key = tuple((demand.mean, demand.variance) for demand in request.demands)
    cached = _MASK_MOMENTS_CACHE.get(key)
    if cached is not None:
        return cached
    n = request.n_vms
    size = 1 << n
    mean = np.zeros(size)
    var = np.zeros(size)
    for bit in range(n):
        demand = request.demands[bit]
        step = 1 << bit
        for base in range(0, size, step << 1):
            lo = base + step
            mean[lo : lo + step] = mean[base : base + step] + demand.mean
            var[lo : lo + step] = var[base : base + step] + demand.variance
    total_mean = mean[size - 1]
    total_var = var[size - 1]
    mu, sigma_sq = _vec_min_moments(mean, var, total_mean - mean, total_var - var)
    mu[0] = mu[size - 1] = 0.0
    sigma_sq[0] = sigma_sq[size - 1] = 0.0
    np.maximum(mu, 0.0, out=mu)
    mu.flags.writeable = False
    sigma_sq.flags.writeable = False
    if len(_MASK_MOMENTS_CACHE) >= _MASK_MOMENTS_CACHE_MAX:
        _MASK_MOMENTS_CACHE.clear()
    _MASK_MOMENTS_CACHE[key] = (mu, sigma_sq)
    return mu, sigma_sq


@dataclass
class _MaskTable:
    """DP state per vertex: Opt value per allocable subset + split choices."""

    values: Dict[int, float]
    choices: List[Dict[int, int]]  # choices[i][mask] = child-i submask


class SVCHeterogeneousExactAllocator(Allocator):
    """Exact (exponential) heterogeneous placement; optimal min-max occupancy."""

    name = "svc-het-exact"

    def __init__(self, max_vms: int = MAX_EXACT_VMS) -> None:
        if max_vms < 1 or max_vms > MAX_EXACT_VMS:
            raise ValueError(f"max_vms must be in [1, {MAX_EXACT_VMS}], got {max_vms}")
        self._max_vms = max_vms

    def supports(self, request: VirtualClusterRequest) -> bool:
        return isinstance(request, HeterogeneousSVC) and request.n_vms <= self._max_vms

    def allocate(
        self, state: NetworkState, request: VirtualClusterRequest, request_id: int
    ) -> Optional[Allocation]:
        if not isinstance(request, HeterogeneousSVC):
            raise TypeError(f"{self.name} only places heterogeneous SVC requests")
        if request.n_vms > self._max_vms:
            raise ValueError(
                f"{self.name} is exponential in N; refusing N={request.n_vms} "
                f"(> {self._max_vms}). Use SVCHeterogeneousAllocator instead."
            )
        obs = admission_instruments()
        trace = obs.start(self.name)
        t_start = perf_counter()
        n = request.n_vms
        if n > state.total_free_slots:
            obs.done(
                self.name, perf_counter() - t_start, admitted=False,
                reason=REASON_NO_FREE_SLOTS, trace=trace, n_vms=n,
            )
            return None
        full_mask = (1 << n) - 1
        demand_mean, demand_var = _mask_split_demands(request)

        tree = state.tree
        tables: Dict[int, _MaskTable] = {}
        host: Optional[int] = None
        host_value = math.inf
        for _level, node_ids in tree.bottom_up_levels():
            for node_id in node_ids:
                table = self._build_vertex(
                    state, node_id, request, demand_mean, demand_var, tables
                )
                tables[node_id] = table
                value = table.values.get(full_mask)
                if value is not None and value < host_value:
                    host, host_value = node_id, value
            if host is not None:
                break
        if host is None:
            obs.done(
                self.name, perf_counter() - t_start, admitted=False,
                reason=REASON_NO_FEASIBLE_SUBTREE, trace=trace, n_vms=n,
            )
            return None

        machine_vms: Dict[int, Tuple[int, ...]] = {}
        link_demands: Dict[int, Normal] = {}
        self._backtrack(
            state, tables, host, full_mask, demand_mean, demand_var, machine_vms,
            link_demands, host,
        )
        machine_counts = {machine: len(vms) for machine, vms in machine_vms.items()}
        allocation = Allocation(
            request=request,
            request_id=request_id,
            host_node=host,
            machine_counts=machine_counts,
            machine_vms=machine_vms,
            link_demands=link_demands,
            max_occupancy=host_value,
        )
        obs.done(self.name, perf_counter() - t_start, admitted=True, trace=trace, n_vms=n)
        return allocation

    # ------------------------------------------------------------------

    def _build_vertex(
        self,
        state: NetworkState,
        node_id: int,
        request: HeterogeneousSVC,
        demand_mean: np.ndarray,
        demand_var: np.ndarray,
        tables: Dict[int, _MaskTable],
    ) -> _MaskTable:
        tree = state.tree
        node = tree.node(node_id)
        n = request.n_vms
        if node.is_machine:
            limit = min(state.free_slots(node_id), n)
            values = {
                mask: 0.0
                for mask in range(1 << n)
                if bin(mask).count("1") <= limit
            }
            return _MaskTable(values=values, choices=[])

        partial: Dict[int, float] = {0: 0.0}
        choices: List[Dict[int, int]] = []
        for child_id in node.children:
            child_eff = self._child_effective(
                state, child_id, demand_mean, demand_var, tables
            )
            new_partial: Dict[int, float] = {}
            choice: Dict[int, int] = {}
            for child_mask, child_value in child_eff.items():
                for part_mask, part_value in partial.items():
                    if child_mask & part_mask:
                        continue
                    mask = child_mask | part_mask
                    value = max(child_value, part_value)
                    best = new_partial.get(mask)
                    if best is None or value < best:
                        new_partial[mask] = value
                        choice[mask] = child_mask
            partial = new_partial
            choices.append(choice)
        return _MaskTable(values=partial, choices=choices)

    def _child_effective(
        self,
        state: NetworkState,
        child_id: int,
        demand_mean: np.ndarray,
        demand_var: np.ndarray,
        tables: Dict[int, _MaskTable],
    ) -> Dict[int, float]:
        link_state: LinkState = state.links[child_id]
        risk_c = state.risk_c
        effective: Dict[int, float] = {}
        child_values = tables[child_id].values
        if link_state.capacity <= 0.0:
            # A zero-capacity uplink admits nothing into the subtree; skipping
            # it (the empty subset) stays free.  Guarded here because the raw
            # occupancy division is undefined at capacity 0.
            if 0 in child_values:
                effective[0] = child_values[0]
            return effective
        for mask, value in child_values.items():
            if mask == 0:
                # Placing nothing in the child puts no demand on its uplink:
                # the skip costs exactly the child's (zero) inner objective
                # and must never be rejected by the uplink's existing load.
                effective[0] = value
                continue
            occ = link_state.occupancy_with(
                risk_c,
                extra_mean=float(demand_mean[mask]),
                extra_var=float(demand_var[mask]),
            )
            if occ >= _FEASIBLE_LIMIT:
                continue
            effective[mask] = max(value, occ)
        return effective

    def _backtrack(
        self,
        state: NetworkState,
        tables: Dict[int, _MaskTable],
        node_id: int,
        mask: int,
        demand_mean: np.ndarray,
        demand_var: np.ndarray,
        machine_vms: Dict[int, Tuple[int, ...]],
        link_demands: Dict[int, Normal],
        host: int,
    ) -> None:
        if mask == 0:
            return
        # Record the uplink demand unless the subset is empty/full
        # (the demand arrays are exactly zero there).
        if node_id != host and (demand_mean[mask] > 0.0 or demand_var[mask] > 0.0):
            link_demands[node_id] = Normal.from_variance(
                float(demand_mean[mask]), float(demand_var[mask])
            )
        node = state.tree.node(node_id)
        if node.is_machine:
            machine_vms[node_id] = tuple(
                bit for bit in range(mask.bit_length()) if mask & (1 << bit)
            )
            return
        table = tables[node_id]
        remaining = mask
        for index in range(len(node.children) - 1, -1, -1):
            child_mask = table.choices[index].get(remaining)
            if child_mask is None:
                raise RuntimeError(f"backtracking hit an unknown mask at node {node_id}")
            self._backtrack(
                state, tables, node.children[index], child_mask,
                demand_mean, demand_var, machine_vms, link_demands, host,
            )
            remaining &= ~child_mask
        if remaining:
            raise RuntimeError(f"backtracking left VMs unassigned at node {node_id}")
