"""Algorithm 1: homogeneous VM allocation with occupancy optimization.

One bottom-up tree traversal computes, for every vertex ``v``, the allocable
VM set of the subtree ``T_v`` together with ``Opt(T_v, h)`` — the minimum,
over all valid placements of ``h`` VMs inside ``T_v``, of the maximum
bandwidth occupancy ratio of the links in ``T_v`` (Lemma 2 / Eqs. 11-12).
The request is placed in the lowest-level subtree that can host all ``N``
VMs, choosing the placement that minimizes the maximum ``O_L``.

The same tree search with the optimization switched off (feasible sums only,
first-found split recorded) is exactly the paper's *adapted TIVC* baseline:
the TIVC/Oktopus-style search with the validity condition replaced by Eq. (4)
but "no distinction between [multiple valid allocations]" (Section IV-C).
Running that variant on deterministic VC requests gives the Oktopus baseline
used for mean-VC and percentile-VC.

Implementation notes: allocable sets are dense ``float`` arrays of length
``N + 1`` indexed by VM count, holding the ``Opt`` value (``inf`` means "not
allocable").  The per-child combine step is the (min, max) convolution of the
partial array with the child's array — done with one vectorized pass per
feasible child count.

Two implementations of the tree DP coexist:

* the **seed** path (``fast=False``) — the original straight-line
  implementation, kept verbatim as the reference the fast path is proven
  against (placement-equivalence tests compare the two decision for
  decision);
* the **fast** path (``fast=True``, the default) — numerically identical,
  but (a) caps every split size at the child subtree's *free-slot total*
  (maintained incrementally by :class:`~repro.network.link_state.NetworkState`)
  instead of iterating to ``N``, (b) computes the uplink occupancy of all
  children of a vertex in one broadcast batch, (c) shares one table across
  all machines with the same free-slot count (and one table across vertices
  whose children are in bit-identical states), and (d) replaces the
  per-``e`` Python loop of the combine step with a single index-gather
  (min, max)-convolution.

Every floating-point operation of the fast path is elementwise-identical to
the seed path, so the produced host / placement / ``max_occupancy`` decisions
are bit-for-bit the same — not merely statistically equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.abstractions.requests import (
    DeterministicVC,
    HomogeneousSVC,
    VirtualClusterRequest,
)
from repro.allocation.base import (
    Allocation,
    Allocator,
    BatchContext,
    link_demands_from_counts,
)
from repro.allocation.demand_model import homogeneous_split_moments
from repro.network.link_state import LinkState, NetworkState
from repro.obs.instruments import (
    PHASE_ALLOC,
    PHASE_BATCH_OCCUPANCY,
    PHASE_COMBINE,
    PHASE_PRUNE,
    PHASE_TABLE_BUILD,
    REASON_NO_FEASIBLE_SUBTREE,
    REASON_NO_FREE_SLOTS,
    admission_instruments,
)
from repro.stochastic.normal import Normal

_FEASIBLE_LIMIT = 1.0  # validity is the strict inequality O_L < 1 (Eq. 4)


@dataclass
class _VertexTable:
    """DP state of one vertex: values over VM counts + per-child split choices."""

    values: np.ndarray  # Opt(T_v, h) over h = 0..N; inf = not allocable
    choices: List[np.ndarray]  # choices[i][s] = VMs given to child i when T_v[i] holds s


def _uplink_occupancy_vector(
    link_state: LinkState,
    risk_c: float,
    split_mean: np.ndarray,
    split_var: np.ndarray,
    deterministic: bool,
) -> np.ndarray:
    """``O_L(N, e)`` for every split size ``e`` of the candidate request.

    For a stochastic request the candidate moments join the CLT aggregate;
    for a deterministic request the candidate mean joins ``D_L`` and only the
    existing stochastic aggregate contributes variance (Section IV-B).
    """
    if deterministic:
        stoch_mean = link_state.mean_total
        variance = np.full_like(split_mean, max(link_state.var_total, 0.0))
        reserved = link_state.deterministic_total + split_mean
    else:
        stoch_mean = link_state.mean_total + split_mean
        variance = link_state.var_total + split_var
        reserved = np.full_like(split_mean, link_state.deterministic_total)
    effective = stoch_mean + risk_c * np.sqrt(np.maximum(variance, 0.0))
    return (reserved + effective) / link_state.capacity


class _HomogeneousTreeSearch(Allocator):
    """Shared machinery for Algorithm 1 and the adapted-TIVC baseline.

    ``optimize=True`` records, per reachable VM count, the split minimizing
    the maximum occupancy ratio (Algorithm 1 proper); ``optimize=False``
    keeps only feasibility and the first-found split (adapted TIVC).
    """

    def __init__(self, optimize: bool, localize: bool = True, fast: bool = True) -> None:
        self._optimize = optimize
        self._localize = localize
        self._fast = fast

    def supports(self, request: VirtualClusterRequest) -> bool:
        return isinstance(request, (HomogeneousSVC, DeterministicVC))

    def allocate(
        self,
        state: NetworkState,
        request: VirtualClusterRequest,
        request_id: int,
        shared: Optional["_SharedTableBatch"] = None,
    ) -> Optional[Allocation]:
        if not self.supports(request):
            raise TypeError(f"{self.name} cannot place a {type(request).__name__}")
        # Observability: counters always tick; phase wall-times only
        # accumulate on sampled traces (``phases`` stays None otherwise, so
        # the hot path pays one None check per section).
        obs = admission_instruments()
        trace = obs.start(self.name)
        phases: Optional[Dict[str, float]] = trace.phases if trace is not None else None
        t_start = perf_counter()
        n = request.n_vms
        if n > state.total_free_slots:
            obs.done(
                self.name, perf_counter() - t_start, admitted=False,
                reason=REASON_NO_FREE_SLOTS, trace=trace, n_vms=n,
            )
            return None

        split_mean, split_var = homogeneous_split_moments(request)
        deterministic = request.is_deterministic
        tree = state.tree

        tables: Dict[int, _VertexTable] = {}
        host: Optional[int] = None
        host_value = np.inf
        if self._fast and shared is not None:
            # Batch mode: tables survive across the batch's allocate calls.
            # Every state-dependent input is either re-read per call (free
            # slots, hosts) or part of the cache key (link moments, caps),
            # so reuse cannot change a decision — only skip rebuilding
            # tables whose inputs did not move since the previous member.
            machine_cache, vertex_cache, conv = shared.caches_for(state, request, n)
        else:
            machine_cache = {}
            vertex_cache = {}
            conv = self._convolution_context(n) if self._fast else None
        machine_lookups = 0
        vertex_lookups = 0
        machine_pre = len(machine_cache)
        vertex_pre = len(vertex_cache)
        if phases is not None:
            phases[PHASE_PRUNE] = perf_counter() - t_start
        for _level, node_ids in tree.bottom_up_levels():
            if self._fast and _level == 0:
                # Machine level, unrolled: the table is the shared 0/inf step
                # function per free-slot count, and a machine hosts the whole
                # request iff its free slots cover N — in which case its
                # Opt value is 0.0 and (for both the optimizing and the
                # first-feasible variant) the first such machine in node
                # order wins, exactly as the generic loop below decides.
                t_phase = perf_counter() if phases is not None else 0.0
                free_slots = state.free_slots
                for node_id in node_ids:
                    free = free_slots(node_id)
                    tables[node_id] = self._machine_table(
                        min(free, n), n, machine_cache
                    )
                    if host is None and free >= n:
                        host, host_value = node_id, 0.0
                machine_lookups = len(node_ids)
                if phases is not None:
                    phases[PHASE_TABLE_BUILD] = (
                        phases.get(PHASE_TABLE_BUILD, 0.0) + perf_counter() - t_phase
                    )
                if host is not None and self._localize:
                    break
                continue
            for node_id in node_ids:
                if self._fast:
                    vertex_lookups += 1
                    table = self._build_vertex_fast(
                        state, node_id, n, split_mean, split_var, deterministic,
                        tables, machine_cache, vertex_cache, conv, phases,
                        shared=shared,
                    )
                else:
                    t_phase = perf_counter() if phases is not None else 0.0
                    table = self._build_vertex(
                        state, node_id, n, split_mean, split_var, deterministic, tables
                    )
                    if phases is not None:
                        phases[PHASE_TABLE_BUILD] = (
                            phases.get(PHASE_TABLE_BUILD, 0.0)
                            + perf_counter() - t_phase
                        )
                tables[node_id] = table
                value = float(table.values[n])
                if not np.isfinite(value):
                    continue
                if self._optimize:
                    if value < host_value:
                        host, host_value = node_id, value
                elif host is None:
                    host, host_value = node_id, value
            if host is not None and self._localize:
                break  # lowest feasible level found
        if not self._localize and np.isfinite(float(tables[tree.root_id].values[n])):
            # Locality ablation: ignore the lowest-subtree bias and take the
            # global min-max placement, Opt(T_root, N).
            host = tree.root_id
            host_value = float(tables[tree.root_id].values[n])
        if self._fast:
            # Hit/miss bookkeeping is derived once per request: every probe
            # that did not insert a new table was served by a shared one.
            # Counting inserts relative to the pre-call size keeps the math
            # right when a batch context carries tables in from earlier calls.
            obs.cache(
                "machine",
                machine_lookups,
                machine_lookups - (len(machine_cache) - machine_pre),
            )
            obs.cache(
                "vertex",
                vertex_lookups,
                vertex_lookups - (len(vertex_cache) - vertex_pre),
            )
        if host is None:
            obs.done(
                self.name, perf_counter() - t_start, admitted=False,
                reason=REASON_NO_FEASIBLE_SUBTREE, trace=trace, n_vms=n,
            )
            return None

        t_alloc = perf_counter() if phases is not None else 0.0
        machine_counts: Dict[int, int] = {}
        self._backtrack(tree, tables, host, n, machine_counts)
        link_demands = link_demands_from_counts(
            tree, host, machine_counts, split_mean, split_var
        )
        allocation = Allocation(
            request=request,
            request_id=request_id,
            host_node=host,
            machine_counts=machine_counts,
            link_demands=link_demands,
            max_occupancy=self._subtree_max_occupancy(state, host, link_demands),
        )
        if phases is not None:
            phases[PHASE_ALLOC] = perf_counter() - t_alloc
        obs.done(self.name, perf_counter() - t_start, admitted=True, trace=trace, n_vms=n)
        return allocation

    # ------------------------------------------------------------------
    # DP construction
    # ------------------------------------------------------------------

    def _build_vertex(
        self,
        state: NetworkState,
        node_id: int,
        n: int,
        split_mean: np.ndarray,
        split_var: np.ndarray,
        deterministic: bool,
        tables: Dict[int, _VertexTable],
    ) -> _VertexTable:
        tree = state.tree
        node = tree.node(node_id)
        if node.is_machine:
            # Lines 4-7 of Algorithm 1: a machine can absorb up to its free
            # slots, and VMs co-located on one machine use no links.
            values = np.full(n + 1, np.inf)
            limit = min(state.free_slots(node_id), n)
            values[: limit + 1] = 0.0
            return _VertexTable(values=values, choices=[])

        partial = np.full(n + 1, np.inf)
        partial[0] = 0.0  # T_v[0] = {v}: no links, nothing placed
        choices: List[np.ndarray] = []
        for child_id in node.children:
            child_eff = self._child_effective(
                state, child_id, n, split_mean, split_var, deterministic, tables
            )
            partial, choice = self._combine(partial, child_eff, n)
            choices.append(choice)
        return _VertexTable(values=partial, choices=choices)

    def _child_effective(
        self,
        state: NetworkState,
        child_id: int,
        n: int,
        split_mean: np.ndarray,
        split_var: np.ndarray,
        deterministic: bool,
        tables: Dict[int, _VertexTable],
    ) -> np.ndarray:
        """max(Opt(T_child, e), O_uplink(N, e)) with infeasible e set to inf.

        The uplink filter implements the allocable-set definition
        (Definition 1): the bandwidth constraint of every link inside the
        child subtree *and* of its uplink.
        """
        child_values = tables[child_id].values
        occ = _uplink_occupancy_vector(
            state.links[child_id], state.risk_c, split_mean, split_var, deterministic
        )
        effective = np.maximum(child_values, occ)
        effective[occ >= _FEASIBLE_LIMIT] = np.inf
        return effective

    def _combine(
        self, partial: np.ndarray, child_eff: np.ndarray, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(min, max)-convolve the running table with one child's table.

        Implements Eq. (11): ``Opt(T_v[i], s) = min over e+h=s of
        max(Opt(T_v[i-1], h), effective_child(e))``, recording the minimizing
        ``e`` (the ``D_v[i, s]`` table of Algorithm 1).  In the
        feasibility-only variant the first feasible ``e`` is recorded
        instead — TIVC "makes no distinction" between valid splits.
        """
        new_values = np.full(n + 1, np.inf)
        choice = np.full(n + 1, -1, dtype=np.int64)
        feasible_h = np.isfinite(partial)
        if not feasible_h.any():
            return new_values, choice
        max_h = int(np.flatnonzero(feasible_h)[-1])
        for e in np.flatnonzero(np.isfinite(child_eff)):
            e = int(e)
            upper = min(max_h, n - e)
            if upper < 0:
                continue
            segment = partial[: upper + 1]
            # Infeasible h (inf) propagates through the max, so no extra mask.
            candidate = np.maximum(child_eff[e], segment)
            target = new_values[e : e + upper + 1]
            chosen = choice[e : e + upper + 1]
            if self._optimize:
                better = candidate < target
            else:
                better = np.isfinite(candidate) & ~np.isfinite(target)
            target[better] = candidate[better]
            chosen[better] = e
        return new_values, choice

    # ------------------------------------------------------------------
    # Fast DP construction (numerically identical to the seed path above)
    # ------------------------------------------------------------------

    @staticmethod
    def _machine_table(limit: int, n: int, machine_cache: Dict[int, _VertexTable]) -> _VertexTable:
        """Shared per-free-slot-count machine table (lines 4-7 of Algorithm 1).

        Machines with the same number of free slots have identical DP tables,
        so one read-only array serves all of them for the current request.
        """
        table = machine_cache.get(limit)
        if table is None:
            values = np.full(n + 1, np.inf)
            values[: limit + 1] = 0.0
            values.flags.writeable = False
            table = _VertexTable(values=values, choices=[])
            machine_cache[limit] = table
        return table

    def _build_vertex_fast(
        self,
        state: NetworkState,
        node_id: int,
        n: int,
        split_mean: np.ndarray,
        split_var: np.ndarray,
        deterministic: bool,
        tables: Dict[int, _VertexTable],
        machine_cache: Dict[int, _VertexTable],
        vertex_cache: Dict[Tuple, _VertexTable],
        conv: Tuple[np.ndarray, np.ndarray, np.ndarray],
        phases: Optional[Dict[str, float]] = None,
        shared: Optional["_SharedTableBatch"] = None,
    ) -> _VertexTable:
        """Pruned, batched equivalent of :meth:`_build_vertex`.

        Split sizes are capped at ``min(N, free_slots_under(child))`` — every
        entry beyond that cap is ``inf`` in the child's table anyway (a
        subtree cannot absorb more VMs than its free slots), so skipping them
        changes nothing.  The uplink occupancy of *all* children is computed
        in one broadcast batch; the elementwise operations match the seed
        path's exactly, so the resulting floats are bit-identical.

        The vertex DP is a pure function of the children's tables and uplink
        states, so vertices whose children are in bit-identical states (the
        common case: most racks of a datacenter look alike) share one table
        via ``vertex_cache``, keyed by the per-child (table identity, link
        state, slot cap) signature.
        """
        tree = state.tree
        node = tree.node(node_id)
        if node.is_machine:
            return self._machine_table(min(state.free_slots(node_id), n), n, machine_cache)

        children = node.children
        if not children:
            partial = np.full(n + 1, np.inf)
            partial[0] = 0.0
            return _VertexTable(values=partial, choices=[])

        if shared is not None:
            # Dirty-path skip: a batch context knows (from note_commit)
            # which subtrees the previous members touched.  A clean vertex
            # provably has the same signature as last call — its children's
            # tables, uplink moments, and slot caps are all unmoved — so we
            # can skip re-keying its children entirely.
            memo_key = shared.signature_for(node_id)
            if memo_key is not None:
                memo_hit = vertex_cache.get(memo_key)
                if memo_hit is not None:
                    return memo_hit

        # ``phases`` (sampled traces only) splits the work into disjoint
        # wall-time sections: table_build = per-child metadata + signature +
        # cache probe, batch_occupancy = the broadcast O_L(N, e) block,
        # combine = the (min, max)-convolutions.
        t_phase = perf_counter() if phases is not None else 0.0
        num = len(children)
        caps = np.empty(num, dtype=np.int64)
        det = np.empty(num)
        mean = np.empty(num)
        var = np.empty(num)
        capacity = np.empty(num)
        links = state.links
        signature: List[Tuple] = []
        for i, child_id in enumerate(children):
            link_state = links[child_id]
            det[i] = link_state.deterministic_total
            mean[i] = link_state.mean_total
            var[i] = link_state.var_total
            capacity[i] = link_state.capacity
            caps[i] = cap = min(n, state.free_slots_under(child_id))
            # Table identity is safe as a key: machine tables are shared per
            # free-slot count and cached vertex tables are shared per
            # signature, so equal ids imply bit-identical child tables.
            signature.append(
                (id(tables[child_id]), det[i], mean[i], var[i], capacity[i], cap)
            )
        key = tuple(signature)
        if shared is not None:
            shared.store_signature(node_id, key)
        cached = vertex_cache.get(key)
        if phases is not None:
            phases[PHASE_TABLE_BUILD] = (
                phases.get(PHASE_TABLE_BUILD, 0.0) + perf_counter() - t_phase
            )
        if cached is not None:
            return cached

        partial = np.full(n + 1, np.inf)
        partial[0] = 0.0  # T_v[0] = {v}: no links, nothing placed
        choices: List[np.ndarray] = []
        t_phase = perf_counter() if phases is not None else 0.0
        width = int(caps.max())
        sm = split_mean[: width + 1][None, :]
        if deterministic:
            reserved = det[:, None] + sm
            effective = mean[:, None] + state.risk_c * np.sqrt(np.maximum(var[:, None], 0.0))
            occ = (reserved + effective) / capacity[:, None]
        else:
            sv = split_var[: width + 1][None, :]
            stoch_mean = mean[:, None] + sm
            variance = var[:, None] + sv
            effective = stoch_mean + state.risk_c * np.sqrt(np.maximum(variance, 0.0))
            occ = (det[:, None] + effective) / capacity[:, None]
        if phases is not None:
            phases[PHASE_BATCH_OCCUPANCY] = (
                phases.get(PHASE_BATCH_OCCUPANCY, 0.0) + perf_counter() - t_phase
            )
            t_phase = perf_counter()

        for i, child_id in enumerate(children):
            cap = int(caps[i])
            row = occ[i, : cap + 1]
            child_values = tables[child_id].values
            child_eff = np.maximum(child_values[: cap + 1], row)
            child_eff[row >= _FEASIBLE_LIMIT] = np.inf
            partial, choice = self._combine_fast(partial, child_eff, n, conv)
            choices.append(choice)
        if phases is not None:
            phases[PHASE_COMBINE] = (
                phases.get(PHASE_COMBINE, 0.0) + perf_counter() - t_phase
            )
        table = _VertexTable(values=partial, choices=choices)
        vertex_cache[key] = table
        return table

    @staticmethod
    def _convolution_context(n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-allocate scratch for :meth:`_combine_fast`.

        ``idx_full[e, s] = s - e``; gathering a partial table through its
        first ``cap + 1`` rows yields the shifted matrix ``partial[s - e]``
        in one C call.  Negative entries wrap into the permanent ``inf``
        tail of ``scratch``, encoding the ``s < e`` infeasible corner.
        """
        s_index = np.arange(n + 1)
        idx_full = s_index[None, :] - s_index[:, None]
        scratch = np.empty(2 * n + 1)
        scratch[n + 1 :] = np.inf
        return s_index, idx_full, scratch

    def _combine_fast(
        self,
        partial: np.ndarray,
        child_eff: np.ndarray,
        n: int,
        conv: Tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched (min, max)-convolution — no per-``e`` Python loop.

        Produces exactly what :meth:`_combine` produces.  ``cand[e, s]`` is
        the candidate value of giving the child ``e`` VMs out of sum ``s``;
        the seed's ascending-``e`` scalar loop keeps, per ``s``, the *first*
        ``e`` attaining the minimum (optimize) or the first feasible ``e``
        (TIVC) — which is precisely ``argmin`` / ``argmax(isfinite)`` along
        the ``e`` axis, both of which return the first occurrence.  Only
        ``max``/``min``/compare operations touch the floats, so the values
        are bit-identical to the seed's.  ``child_eff`` may be shorter than
        ``n + 1``; missing entries are infeasible.
        """
        s_index, idx_full, scratch = conv
        cap = child_eff.size - 1
        scratch[: n + 1] = partial
        cand = scratch[idx_full[: cap + 1]]
        np.maximum(child_eff[:, None], cand, out=cand)
        if self._optimize:
            choice = np.argmin(cand, axis=0)
        else:
            choice = np.argmax(np.isfinite(cand), axis=0)
        new_values = cand[choice, s_index]
        choice[np.isinf(new_values)] = -1
        return new_values, choice

    # ------------------------------------------------------------------
    # Backtracking (the Alloc() procedure of Algorithm 1)
    # ------------------------------------------------------------------

    def _backtrack(
        self,
        tree,
        tables: Dict[int, _VertexTable],
        node_id: int,
        count: int,
        machine_counts: Dict[int, int],
    ) -> None:
        if count == 0:
            return
        node = tree.node(node_id)
        if node.is_machine:
            machine_counts[node_id] = count
            return
        table = tables[node_id]
        remaining = count
        for index in range(len(node.children) - 1, -1, -1):
            child_count = int(table.choices[index][remaining])
            if child_count < 0:
                raise RuntimeError(
                    f"backtracking hit an infeasible entry at node {node_id}"
                )
            self._backtrack(tree, tables, node.children[index], child_count, machine_counts)
            remaining -= child_count
        if remaining != 0:
            raise RuntimeError(f"backtracking left {remaining} VMs unassigned at {node_id}")

    # ------------------------------------------------------------------
    # Elastic resize support
    # ------------------------------------------------------------------

    def resize_link_demands(
        self,
        state: NetworkState,
        new_request: VirtualClusterRequest,
        host_node: int,
        machine_counts,
        machine_vms=None,
    ):
        """Occupancy-delta query: the resized footprint on a fixed placement.

        Homogeneous VMs are interchangeable, so the new per-link demand is
        just the Lemma-1 split moments of the *new* request looked up at the
        placement's unchanged per-link VM counts.
        """
        if not self.supports(new_request):
            raise TypeError(f"{self.name} cannot resize a {type(new_request).__name__}")
        split_mean, split_var = homogeneous_split_moments(new_request)
        return link_demands_from_counts(
            state.tree, host_node, machine_counts, split_mean, split_var
        )

    # ------------------------------------------------------------------
    # Batch admission
    # ------------------------------------------------------------------

    def batch_context(self) -> "BatchContext":
        """Cache-sharing batch context (the service batcher's amortizer).

        The DP tables are pure functions of their inputs (child tables,
        uplink link state, slot caps — all in the vertex-cache key) and the
        request's split moments (fixed within one shape class), so a run of
        same-shape requests can keep one machine/vertex cache alive across
        the whole run: after a commit only the tables along the dirty path
        from the host machines to the root rebuild, everything else is a
        cache hit.  Decisions stay bit-identical to sequential calls.
        """
        if not self._fast:
            return BatchContext(self)  # the seed path has no caches to share
        return _SharedTableBatch(self)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @staticmethod
    def _subtree_max_occupancy(
        state: NetworkState, host: int, link_demands: Dict[int, Normal]
    ) -> float:
        """Post-allocation ``max O_L`` over the hosting subtree's links."""
        worst = 0.0
        for link in state.tree.links_under(host):
            link_state = state.links[link.link_id]
            demand = link_demands.get(link.link_id)
            if demand is None:
                occ = link_state.occupancy(state.risk_c)
            else:
                # extra mean and extra deterministic reservation enter Eq. (6)
                # identically, so one call covers both request kinds.
                occ = link_state.occupancy_with(
                    state.risk_c, extra_mean=demand.mean, extra_var=demand.variance
                )
            if occ > worst:
                worst = occ
        return worst


def _request_shape(request: VirtualClusterRequest) -> Tuple:
    """The shape class two requests must share for DP tables to be reusable.

    Vertex tables bake in the request's per-split demand moments, so only
    requests with identical ``(kind, N, moments)`` may share a cache.
    """
    if isinstance(request, DeterministicVC):
        return ("deterministic", request.n_vms, request.bandwidth)
    return ("homogeneous", request.n_vms, request.mean, request.std)


class _SharedTableBatch(BatchContext):
    """Batch context holding the machine/vertex caches across allocate calls.

    Single-threaded by contract (the admission worker drives one batch under
    the service lock).  A shape change inside the batch resets the caches —
    correctness never depends on the caller coalescing only compatible
    requests, it only profits from it.
    """

    def __init__(self, allocator: "_HomogeneousTreeSearch") -> None:
        super().__init__(allocator)
        self._shape: Optional[Tuple] = None
        self._machine_cache: Dict[int, _VertexTable] = {}
        self._vertex_cache: Dict[Tuple, _VertexTable] = {}
        self._conv: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        #: node_id -> the signature key computed for it last call.  Valid
        #: only while the node is not in ``_dirty`` and the state version
        #: matches ``_state_version``: then every signature input (child
        #: table ids, uplink moments, free-slot caps) is provably unchanged
        #: and the per-child re-keying loop can be skipped outright.
        self._signatures: Dict[int, Tuple] = {}
        self._dirty: set = set()
        self._state_version: Optional[int] = None

    def caches_for(self, state: NetworkState, request: VirtualClusterRequest, n: int):
        shape = _request_shape(request)
        if shape != self._shape:
            self._shape = shape
            self._machine_cache = {}
            self._vertex_cache = {}
            self._signatures = {}
            self._dirty.clear()
            self._conv = _HomogeneousTreeSearch._convolution_context(n)
        if state.version != self._state_version:
            # The state moved without a note_commit (a release, or a commit
            # outside this batch): every freshness memo is suspect.  The
            # content-addressed table caches stay — they can only hit when
            # their full input signature matches, stale or not.
            self._signatures = {}
            self._dirty.clear()
            self._state_version = state.version
        return self._machine_cache, self._vertex_cache, self._conv

    def signature_for(self, node_id: int) -> Optional[Tuple]:
        """The node's memoized signature key, or None if it must be re-keyed."""
        if node_id in self._dirty:
            return None
        return self._signatures.get(node_id)

    def store_signature(self, node_id: int, key: Tuple) -> None:
        self._signatures[node_id] = key
        self._dirty.discard(node_id)

    def note_commit(self, state: NetworkState, allocation) -> None:
        """Mark exactly the committed placement's ancestor paths dirty."""
        for machine_id in allocation.machine_counts:
            self._dirty.update(state.ancestors(machine_id))
        self._state_version = state.version

    def allocate(
        self, state: NetworkState, request: VirtualClusterRequest, request_id: int
    ) -> Optional[Allocation]:
        return self.allocator.allocate(state, request, request_id, shared=self)


class SVCHomogeneousAllocator(_HomogeneousTreeSearch):
    """Algorithm 1: lowest-level subtree + min-max occupancy placement.

    ``fast=False`` runs the seed reference implementation (identical
    decisions, no pruning/batching) — used by the equivalence tests and as
    the baseline of ``benchmarks/bench_admission_path.py``.
    """

    name = "svc-dp"

    def __init__(self, fast: bool = True) -> None:
        super().__init__(optimize=True, fast=fast)
        if not fast:
            self.name = "svc-dp-seed"


class GlobalMinMaxAllocator(_HomogeneousTreeSearch):
    """Locality ablation: min-max occupancy over the *whole* tree.

    Drops the lowest-level-subtree bias of Algorithm 1 and places at the
    global optimum of ``max_L O_L``.  Not part of the paper's system — it
    exists to quantify what the locality heuristic buys (upper-level links
    conserved, future requests accommodated; see
    ``experiments/ablation_locality.py``).
    """

    name = "svc-global"

    def __init__(self) -> None:
        super().__init__(optimize=True, localize=False)


class AdaptedTIVCAllocator(_HomogeneousTreeSearch):
    """The adapted-TIVC baseline: Eq. (4) validity, no occupancy optimization."""

    name = "tivc"

    def __init__(self, fast: bool = True) -> None:
        super().__init__(optimize=False, fast=fast)


class OktopusAllocator(AdaptedTIVCAllocator):
    """The Oktopus virtual-cluster allocator (deterministic requests only)."""

    name = "oktopus"

    def supports(self, request: VirtualClusterRequest) -> bool:
        return isinstance(request, DeterministicVC)
