"""Cluster coordinator: locality-first routing + two-phase core-link commits.

The coordinator is the cluster's client-facing admission front-end.  It owns
three pieces of state, all guarded by one lock (the same single-owner
discipline as ``AdmissionService``):

* a **replica** ``NetworkManager`` over the *global* tree, kept in sync by
  applying every shard admission and release (translated to global ids).
  Routing reads per-shard free slots from it without touching a shard, and
  the cross-shard allocator runs on it with the exact full-tree Lemma-1
  moments — so a placement spanning shards carries the same per-link
  effective bandwidth ``E^L_i`` a single giant manager would compute, and
  Eq. (1) composes across shards (DESIGN.md §9);
* the **core-link ledger** (:mod:`repro.cluster.ledger`): the global truth
  for aggregation-uplink capacity, with TTL'd reservations for in-flight
  two-phase rounds;
* a **write-ahead log** (reusing :class:`repro.service.journal.Journal`)
  whose record order is the order coordinator state changed.

Request lifecycle:

* **local** — routed to one shard (most free capacity, weighted by the
  advisory rebalancer; with a single shard this degenerates to a pass-
  through, which is what makes the one-shard cluster bit-identical to the
  direct service).  The shard's own serialized admission guards everything
  it touches, including its own core links; the coordinator mirrors the
  decision into replica + ledger after the ack.
* **cross-shard** — placement computed on the replica, then a two-phase
  round: ``reserve`` effective bandwidth on the ledger (TTL'd), journal the
  intent, ``adopt`` one revalidated fragment per shard, ``commit`` the
  reservation (or release every adopted fragment and ``abort`` on any
  conflict).  Every step is idempotent per global request id, so crash
  recovery can re-walk the protocol without double-counting or leaking.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.abstractions.requests import (
    DeterministicVC,
    HeterogeneousSVC,
    HomogeneousSVC,
    VirtualClusterRequest,
)
from repro.allocation.base import Allocation
from repro.cluster.ledger import CoreDemand, CoreLinkLedger, core_demands_of
from repro.cluster.partition import ClusterPartition
from repro.cluster.rebalance import ShardLoadRebalancer
from repro.cluster.shard import ShardHandle
from repro.allocation.resize import plan_in_place, resized_request
from repro.faults.failpoints import (
    FAILPOINTS,
    FP_COORD_AFTER_COMMIT,
    FP_COORD_AFTER_RESERVE,
    FP_COORD_BEFORE_COMMIT,
    FP_COORD_BEFORE_WAL,
    FP_COORD_RESIZE_AFTER_WAL,
    FP_COORD_RESIZE_BEFORE_WAL,
    InjectedCrash,
)
from repro.manager.network_manager import (
    RESIZE_IN_PLACE,
    RESIZE_REJECTED,
    RESIZE_REPLACED,
    NetworkManager,
)
from repro.obs.federation import federation_meta, merge_snapshots
from repro.obs.flightrec import flight_recorder
from repro.obs.instruments import cluster_instruments, global_registry
from repro.obs.tracing import SpanTracer, Trace, TraceContext, take_remote_spans
from repro.service.codec import allocation_from_dict, allocation_to_dict
from repro.service.errors import ConflictError, ServiceError
from repro.service.journal import Journal

logger = logging.getLogger(__name__)


def _tspan(trace: Optional[Trace], name: str):
    """A span on ``trace``, or a no-op scope when the request is unsampled."""
    return trace.span(name) if trace is not None else nullcontext()

#: Coordinator WAL record types.  Unknown ops are skipped at replay, same
#: forward-compatibility contract as ``recover_manager``.
OP_RINTENT = "rintent"    # keyed single-shard submit routed, awaiting decision
OP_RADMIT = "radmit"      # single-shard admission acknowledged by its shard
OP_RREJECT = "rreject"    # keyed rejection decided
OP_XINTENT = "xintent"    # two-phase round: reserved + fragments chosen
OP_XCOMMIT = "xcommit"    # two-phase round: all fragments adopted
OP_XABORT = "xabort"      # two-phase round: rolled back
OP_RELEASE = "release"    # tenant departure completed
OP_RSINTENT = "rsintent"  # resize routed to the owning shard, awaiting its ack
OP_RSDONE = "rsdone"      # resize decided (accepted records carry the new size)

ROUTE_LOCAL = "local"
ROUTE_CROSS = "cross_shard"
ROUTE_SPILL = "spill"
ROUTE_REJECT = "reject"
ROUTE_DEDUP = "dedup"

WAL_FILENAME = "coordinator.jsonl"


class CoordinatorError(ServiceError):
    """The coordinator could not produce a decision (outcome unknown)."""


class ClusterCoordinator:
    """Routes admissions over K shards; owns the global request-id space."""

    def __init__(
        self,
        partition: ClusterPartition,
        shards: Sequence[ShardHandle],
        *,
        directory: Optional[Path] = None,
        epsilon: float = 0.05,
        allocator=None,
        fsync: bool = False,
        reserve_ttl_s: float = 30.0,
        max_cross_retries: int = 2,
        decision_timeout_s: float = 30.0,
        rebalancer: Optional[ShardLoadRebalancer] = None,
        trace_sample_every: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if len(shards) != partition.num_shards:
            raise ValueError(
                f"partition has {partition.num_shards} shards, got {len(shards)} handles"
            )
        self.partition = partition
        self.shards = list(shards)
        self.clock = clock
        self.decision_timeout_s = decision_timeout_s
        self.max_cross_retries = max_cross_retries
        self.replica = NetworkManager(partition.tree, epsilon=epsilon, allocator=allocator)
        self.ledger = CoreLinkLedger(
            partition.tree,
            partition.core_link_ids,
            epsilon=epsilon,
            reserve_ttl_s=reserve_ttl_s,
            clock=clock,
        )
        self.rebalancer = rebalancer
        self._lock = threading.RLock()
        self._next_gid = 1
        #: global id -> {shard index -> shard-local request id}.
        self._gid_map: Dict[int, Dict[int, int]] = {}
        #: (shard index, shard-local request id) -> global id.
        self._srid_map: Dict[Tuple[int, int], int] = {}
        #: client idempotency key -> decision payload.
        self._idem: Dict[str, Dict[str, Any]] = {}
        #: client keys with a decision currently in flight (double-submit guard).
        self._inflight: set = set()
        #: shard index -> VMs of submits routed there but not yet decided;
        #: routing discounts these so concurrent submits spread across
        #: shards instead of piling onto the momentarily-most-free one.
        self._inflight_vms: Dict[int, int] = {}
        self._shard_stats: Dict[int, Dict[str, Any]] = {}
        self.admitted_count = 0
        self.rejected_count = 0
        #: Per-outcome resize tallies — separate from the admission
        #: counters, same discipline as ``NetworkManager.resize_counts``.
        self.resize_counts: Dict[str, int] = {
            RESIZE_IN_PLACE: 0,
            RESIZE_REPLACED: 0,
            RESIZE_REJECTED: 0,
        }
        #: Monotonic resize round counter (restored from the WAL) so every
        #: round hands its shard a fresh idempotency key.
        self._resize_seq = 0
        self._wal: Optional[Journal] = None
        if directory is not None:
            directory = Path(directory)
            directory.mkdir(parents=True, exist_ok=True)
            self._wal = Journal(directory / WAL_FILENAME, fsync=fsync)
        self._obs = cluster_instruments()
        self._obs.bind_coordinator(self)
        #: End-to-end trace ring: every sampled admission becomes one trace
        #: whose local spans cover routing/reserve/commit and whose remote
        #: spans are the shard workers' allocator legs, all under a single
        #: cluster-wide trace id.
        self.tracer = SpanTracer(sample_every=trace_sample_every, keep=128)
        if self._wal is not None and self._wal.next_seq > 1:
            self._recover()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def active_tenancies(self) -> int:
        with self._lock:
            return len(self._gid_map)

    def fragments_of(self, gid: int) -> Optional[Dict[int, int]]:
        with self._lock:
            entry = self._gid_map.get(gid)
            return dict(entry) if entry is not None else None

    def allocation_of(self, gid: int) -> Optional[Allocation]:
        """The admitted global-id allocation for one tenant, or None."""
        with self._lock:
            tenancy = self.replica.get_tenancy(gid)
            return tenancy.allocation if tenancy is not None else None

    def shard_free_slots(self, shard_index: int) -> int:
        """Free slots of one shard, read from the replica (no shard RPC)."""
        view = self.shards[shard_index].view
        state = self.replica.state
        return sum(state.free_slots_under(agg) for agg in view.core_link_ids)

    def cached_shard_stat(self, shard_index: int, field: str) -> float:
        """Last collected shard summary value (0 before the first refresh)."""
        stats = self._shard_stats.get(shard_index)
        return float(stats.get(field, 0)) if stats else 0.0

    def refresh_shard_stats(self) -> List[Dict[str, Any]]:
        """Collect per-shard summaries; feeds the rebalancer and the gauges."""
        summaries = []
        for shard in self.shards:
            try:
                stats = shard.stats()
            except ServiceError as exc:
                stats = {
                    "shard": shard.index,
                    "free_slots": 0,
                    "total_slots": shard.view.total_slots,
                    "queue_depth": 0,
                    "active_tenancies": 0,
                    "max_occupancy": 0.0,
                    "error": str(exc),
                }
            self._shard_stats[shard.index] = stats
            summaries.append(stats)
        if self.rebalancer is not None:
            self.rebalancer.maybe_update(summaries)
        return summaries

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            payload = {
                "shards": self.num_shards,
                "admitted_total": self.admitted_count,
                "rejected_total": self.rejected_count,
                "active_tenancies": len(self._gid_map),
                "resizes": dict(self.resize_counts),
                "pending_reservations": self.ledger.pending_reservations,
                "core_occupancy": self.ledger.occupancies(),
                "replica_max_occupancy": self.replica.max_occupancy(),
                "free_slots": {
                    shard.index: self.shard_free_slots(shard.index)
                    for shard in self.shards
                },
            }
            if self.rebalancer is not None:
                payload["rebalancer"] = self.rebalancer.describe()
            return payload

    # ------------------------------------------------------------------
    # Observability: federation, traces, flight recorder
    # ------------------------------------------------------------------

    def cluster_metrics(self) -> Dict[str, Any]:
        """One federated snapshot: every shard's registry + the coordinator's.

        Per-shard series gain a ``shard`` label; families reported by two
        or more sources additionally get a ``shard="all"`` aggregate.  A
        shard whose scrape fails is skipped (and counted), so one dead
        worker never blanks the cluster view.
        """
        sources: Dict[str, Dict[str, Any]] = {}
        for shard in self.shards:
            try:
                sources[str(shard.index)] = shard.metrics_snapshot()
                self._obs.federation_scrape("ok")
            except ServiceError as exc:
                self._obs.federation_scrape("error")
                logger.warning(
                    "shard %d metrics scrape failed: %s", shard.index, exc
                )
        sources["coordinator"] = global_registry().snapshot()
        merged = merge_snapshots(sources)
        meta = federation_meta(sources)
        return {
            "metrics": merged,
            "meta": meta,
            "stats": self.stats(),
            "shard_stats": self.refresh_shard_stats(),
        }

    def recent_traces(self, limit: int = 16) -> List[Dict[str, Any]]:
        """Most recent end-to-end admission traces from the coordinator ring."""
        return self.tracer.recent(limit)

    def collect_obs_dumps(self) -> Dict[str, Any]:
        """Flight-recorder rings and trace buffers, cluster-wide."""
        shards: List[Dict[str, Any]] = []
        for shard in self.shards:
            try:
                shards.append(shard.obs_dump())
            except ServiceError as exc:
                shards.append({"shard": shard.index, "error": str(exc)})
        return {
            "coordinator": {
                "pid": os.getpid(),
                "flight": flight_recorder().events(),
                "traces": self.tracer.recent(),
            },
            "shards": shards,
        }

    def _collect_remote(
        self, trace: Optional[Trace], tctx: Optional[TraceContext]
    ) -> None:
        """Fold shard-side spans buffered for this trace into it."""
        if trace is None or tctx is None:
            return
        spans = take_remote_spans(tctx.trace_id)
        for span in spans:
            trace.add_remote(span)
        if spans:
            self._obs.trace_spans("shard", len(spans))

    def _finish_trace(
        self, trace: Optional[Trace], route: str, outcome: str
    ) -> None:
        if trace is None:
            return
        trace.annotate(route=route, outcome=outcome)
        self._obs.trace_spans("coordinator", len(trace.spans))
        self.tracer.finish(trace)

    @staticmethod
    def _flight(kind: str, **fields: Any) -> None:
        flight_recorder().record(kind, component="coordinator", **fields)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _route(self, request: VirtualClusterRequest) -> int:
        """Locality-first: the shard with the most weighted free capacity.

        Shards that can hold the whole cluster are preferred; when none
        can, the fullest-but-best shard still gets the request so its
        allocator produces the authoritative rejection (keeping per-shard
        decision streams identical to a standalone service's).
        """
        weights = (
            self.rebalancer.weights()
            if self.rebalancer is not None
            else (1.0,) * self.num_shards
        )
        scored = []
        for shard in self.shards:
            free = max(
                0,
                self.shard_free_slots(shard.index)
                - self._inflight_vms.get(shard.index, 0),
            )
            scored.append((free * weights[shard.index], free, shard.index))
        fitting = [row for row in scored if row[1] >= request.n_vms]
        pool = fitting if fitting else scored
        pool.sort(key=lambda row: (-row[0], row[2]))
        return pool[0][2]

    # ------------------------------------------------------------------
    # Submit
    # ------------------------------------------------------------------

    def submit(
        self,
        request: VirtualClusterRequest,
        idempotency_key: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Admit or reject one tenant request; returns the decision payload.

        Raises :class:`CoordinatorError` (or a transport
        :class:`ServiceError`) when the outcome is *unknown* — the caller
        retries with the same ``idempotency_key`` and converges on the
        journaled decision.
        """
        if idempotency_key is None:
            return self._submit(request, None, timeout)
        with self._lock:
            known = self._idem.get(idempotency_key)
            if known is not None:
                self._obs.routing(ROUTE_DEDUP)
                return dict(known, deduped=True)
            if idempotency_key in self._inflight:
                raise CoordinatorError(
                    f"key {idempotency_key!r} already has a decision in "
                    "flight; retry after it resolves"
                )
            self._inflight.add(idempotency_key)
        try:
            return self._submit(request, idempotency_key, timeout)
        finally:
            with self._lock:
                self._inflight.discard(idempotency_key)

    def _submit(
        self,
        request: VirtualClusterRequest,
        idempotency_key: Optional[str],
        timeout: Optional[float],
    ) -> Dict[str, Any]:
        started = self.clock()
        trace = self.tracer.start("cluster_admission")
        tctx: Optional[TraceContext] = None
        with self._lock:
            for _expired in self.ledger.expire():
                self._obs.reservation("expire")
            if idempotency_key is not None:
                known = self._idem.get(idempotency_key)
                if known is not None:
                    self._obs.routing(ROUTE_DEDUP)
                    return dict(known, deduped=True)
            gid = self._next_gid
            self._next_gid += 1
            if trace is not None:
                # The cluster-wide id must be unique across processes and
                # coordinator restarts within one run; pid + ring id is.
                tctx = TraceContext(f"{os.getpid()}-{trace.trace_id}")
                trace.annotate(gid=gid, trace_id_global=tctx.trace_id)
            with _tspan(trace, "route"):
                target = self._route(request)
            FAILPOINTS.hit(FP_COORD_BEFORE_WAL)
            # The shard sees a per-gid key, never the client's: retries
            # after a rolled-back round get a fresh gid and therefore a
            # clean shard-side dedup slate, while client-level dedup lives
            # in the coordinator's own WAL-rebuilt index.
            skey = f"r-{gid}"
            if self._wal is not None:
                try:
                    self._wal.append(
                        OP_RINTENT, gid=gid, idem=idempotency_key,
                        skey=skey, shard=target,
                    )
                except InjectedCrash:
                    raise
                except Exception as exc:
                    # Nothing happened yet beyond burning a gid; the
                    # outcome is unknown to the caller, who retries.
                    self._flight(
                        "wal_error", op=OP_RINTENT, gid=gid, error=str(exc)
                    )
                    raise CoordinatorError(
                        f"intent not journaled ({type(exc).__name__})"
                    ) from exc
            pending = int(request.n_vms)
            self._inflight_vms[target] = self._inflight_vms.get(target, 0) + pending
        try:
            with _tspan(trace, f"shard{target}:submit"):
                decision = self.shards[target].submit(
                    request,
                    idempotency_key=skey,
                    timeout=self.decision_timeout_s if timeout is None else timeout,
                    trace=tctx,
                )
            self._collect_remote(trace, tctx)
            outcome = decision.get("outcome")
            if outcome == "admitted":
                return self._complete_local_admit(
                    gid, target, decision, idempotency_key, started, trace=trace
                )
            if outcome == "rejected":
                if self.num_shards > 1:
                    return self._submit_cross(
                        request, gid, idempotency_key, started,
                        first_reject=decision, trace=trace, tctx=tctx,
                    )
                return self._complete_reject(
                    gid, idempotency_key, decision.get("detail"), started,
                    ROUTE_REJECT, trace=trace,
                )
            raise CoordinatorError(
                f"shard {target} returned outcome {outcome!r} (ticket unresolved?)"
            )
        finally:
            with self._lock:
                remaining = self._inflight_vms.get(target, 0) - pending
                if remaining > 0:
                    self._inflight_vms[target] = remaining
                else:
                    self._inflight_vms.pop(target, None)

    def _complete_local_admit(
        self,
        gid: int,
        shard_index: int,
        decision: Dict[str, Any],
        idempotency_key: Optional[str],
        started: float,
        trace: Optional[Trace] = None,
    ) -> Dict[str, Any]:
        srid = decision["request_id"]
        local_allocation = decision.get("allocation")
        with self._lock:
            existing = self._srid_map.get((shard_index, srid))
            if existing is not None:
                # The shard deduplicated a retried key onto a tenancy the
                # coordinator already accounts for — reuse its global id.
                payload = self._decision(
                    existing, "admitted", decision.get("detail"), ROUTE_LOCAL
                )
                self._remember(idempotency_key, payload)
                self._obs.routing(ROUTE_DEDUP)
                self._finish_trace(trace, ROUTE_DEDUP, "admitted")
                return payload
            if local_allocation is None:
                raise CoordinatorError(
                    f"shard {shard_index} acked request {srid} without an allocation"
                )
            view = self.shards[shard_index].view
            global_allocation = view.allocation_to_global(local_allocation, request_id=gid)
            if self._wal is not None:
                try:
                    self._wal.append(
                        OP_RADMIT,
                        gid=gid,
                        shard=shard_index,
                        srid=srid,
                        idem=idempotency_key,
                        allocation=allocation_to_dict(global_allocation),
                    )
                except InjectedCrash:
                    raise
                except Exception as exc:
                    # The WAL will not remember this admission, so the
                    # shard must forget it too (same rollback discipline
                    # as the shard's own journal failures).
                    self._flight(
                        "wal_error", op=OP_RADMIT, gid=gid, error=str(exc)
                    )
                    try:
                        self.shards[shard_index].release(srid)
                    except ServiceError:
                        logger.warning(
                            "gid=%d: rollback release on shard %d failed; "
                            "recovery will settle it", gid, shard_index,
                        )
                    raise CoordinatorError(
                        f"admission not journaled ({type(exc).__name__}); "
                        "rolled back"
                    ) from exc
            self.replica.adopt(global_allocation)
            core = core_demands_of(global_allocation, self.partition.core_link_ids)
            if core:
                self.ledger.commit_direct(gid, core)
                self._obs.reservation("mirror")
            self._gid_map[gid] = {shard_index: srid}
            self._srid_map[(shard_index, srid)] = gid
            self.admitted_count += 1
            payload = self._decision(
                gid, "admitted", decision.get("detail"), ROUTE_LOCAL
            )
            self._remember(idempotency_key, payload)
            self._obs.routing(ROUTE_LOCAL)
            self._obs.observe_latency("local", self.clock() - started)
            self._flight(
                "cluster_decision", gid=gid, outcome="admitted",
                route=ROUTE_LOCAL, shard=shard_index,
            )
            self._finish_trace(trace, ROUTE_LOCAL, "admitted")
            return payload

    def _complete_reject(
        self,
        gid: int,
        idempotency_key: Optional[str],
        detail: Optional[str],
        started: float,
        route: str,
        trace: Optional[Trace] = None,
    ) -> Dict[str, Any]:
        with self._lock:
            if self._wal is not None and idempotency_key is not None:
                try:
                    self._wal.append(OP_RREJECT, gid=gid, idem=idempotency_key)
                except InjectedCrash:
                    raise
                except Exception as exc:
                    # Roll forward: a lost reject record only means a
                    # post-crash retry re-runs the (deterministic) decision.
                    self._flight(
                        "wal_error", op=OP_RREJECT, gid=gid, error=str(exc)
                    )
                    logger.warning("gid=%d: reject not journaled: %s", gid, exc)
            self.rejected_count += 1
            payload = self._decision(gid, "rejected", detail, route)
            self._remember(idempotency_key, payload)
            self._obs.routing(route)
            self._obs.observe_latency("local", self.clock() - started)
            self._flight(
                "cluster_decision", gid=gid, outcome="rejected",
                route=route, detail=detail,
            )
            self._finish_trace(trace, route, "rejected")
            return payload

    # ------------------------------------------------------------------
    # Cross-shard two-phase path
    # ------------------------------------------------------------------

    def _submit_cross(
        self,
        request: VirtualClusterRequest,
        gid: int,
        idempotency_key: Optional[str],
        started: float,
        first_reject: Dict[str, Any],
        trace: Optional[Trace] = None,
        tctx: Optional[TraceContext] = None,
    ) -> Dict[str, Any]:
        last_detail = first_reject.get("detail")
        for attempt in range(1 + self.max_cross_retries):
            fragment_key = f"xfrag-{gid}-r{attempt}"
            with self._lock:
                with _tspan(trace, "cross_allocate"):
                    allocation = self.replica.allocator.allocate(
                        self.replica.state, request, gid
                    )
                if allocation is None:
                    return self._complete_reject(
                        gid, idempotency_key, last_detail, started,
                        ROUTE_REJECT, trace=trace,
                    )
                core = core_demands_of(allocation, self.partition.core_link_ids)
                with _tspan(trace, "reserve"):
                    reserved = self.ledger.reserve(gid, core)
                if not reserved:
                    self._obs.reservation("reserve_denied")
                    self._flight("reservation_denied", gid=gid)
                    return self._complete_reject(
                        gid,
                        idempotency_key,
                        "core links at capacity (reservation denied)",
                        started,
                        ROUTE_REJECT,
                        trace=trace,
                    )
                self._obs.reservation("reserve")
                FAILPOINTS.hit(FP_COORD_AFTER_RESERVE)
                fragments = self._fragment(allocation)
                if self._wal is not None:
                    try:
                        self._wal.append(
                            OP_XINTENT,
                            gid=gid,
                            idem=idempotency_key,
                            fkey=fragment_key,
                            allocation=allocation_to_dict(allocation),
                            fragments={
                                str(shard_index): allocation_to_dict(fragment)
                                for shard_index, fragment in fragments.items()
                            },
                            core={
                                str(link_id): demand.to_dict()
                                for link_id, demand in core.items()
                            },
                        )
                    except InjectedCrash:
                        raise
                    except Exception as exc:
                        self.ledger.abort(gid)
                        self._obs.reservation("abort")
                        self._flight(
                            "wal_error", op=OP_XINTENT, gid=gid, error=str(exc)
                        )
                        self._flight(
                            "reservation_abort", gid=gid,
                            reason="intent_not_journaled",
                        )
                        raise CoordinatorError(
                            f"two-phase intent not journaled "
                            f"({type(exc).__name__}); reservation aborted"
                        ) from exc
            adopted: Dict[int, int] = {}
            failure: Optional[Exception] = None
            for shard_index in sorted(fragments):
                try:
                    with _tspan(trace, f"shard{shard_index}:adopt"):
                        adopted[shard_index] = self.shards[shard_index].adopt(
                            fragments[shard_index],
                            idempotency_key=fragment_key,
                            trace=tctx,
                        )
                    self._collect_remote(trace, tctx)
                except ConflictError as exc:
                    failure = exc
                    break
                except ServiceError as exc:
                    failure = exc
                    break
            if failure is None:
                with self._lock:
                    FAILPOINTS.hit(FP_COORD_BEFORE_COMMIT)
                    with _tspan(trace, "commit"):
                        self.ledger.commit(gid)
                    self._obs.reservation("commit")
                    if self._wal is not None:
                        try:
                            self._wal.append(
                                OP_XCOMMIT,
                                gid=gid,
                                idem=idempotency_key,
                                srids={
                                    str(shard_index): srid
                                    for shard_index, srid in adopted.items()
                                },
                            )
                        except InjectedCrash:
                            raise
                        except Exception as exc:
                            # Without the commit record, recovery would
                            # presume-abort this round — make the live
                            # process agree: undo everything and report
                            # the outcome as unknown.
                            for shard_index, srid in adopted.items():
                                try:
                                    self.shards[shard_index].release(srid)
                                except ServiceError:
                                    logger.warning(
                                        "gid=%d: commit rollback on shard %d "
                                        "failed; recovery will presume-abort",
                                        gid, shard_index,
                                    )
                            self.ledger.release(gid)
                            self._obs.reservation("abort")
                            self._flight(
                                "wal_error", op=OP_XCOMMIT, gid=gid,
                                error=str(exc),
                            )
                            self._flight(
                                "reservation_abort", gid=gid,
                                reason="commit_not_journaled",
                            )
                            raise CoordinatorError(
                                f"commit not journaled ({type(exc).__name__}); "
                                "round rolled back"
                            ) from exc
                    FAILPOINTS.hit(FP_COORD_AFTER_COMMIT)
                    self.replica.adopt(allocation)
                    self._gid_map[gid] = dict(adopted)
                    for shard_index, srid in adopted.items():
                        self._srid_map[(shard_index, srid)] = gid
                    self.admitted_count += 1
                    route = ROUTE_SPILL if len(fragments) == 1 else ROUTE_CROSS
                    payload = self._decision(gid, "admitted", None, route)
                    self._remember(idempotency_key, payload)
                    self._obs.routing(route)
                    self._obs.observe_latency("cross", self.clock() - started)
                    self._flight(
                        "cluster_decision", gid=gid, outcome="admitted",
                        route=route, shards=sorted(fragments),
                    )
                    self._finish_trace(trace, route, "admitted")
                    return payload
            # Roll back this round: release adopted fragments, abort the
            # reservation, journal the abort, then retry or give up.
            for shard_index, srid in adopted.items():
                try:
                    self.shards[shard_index].release(srid)
                except ServiceError:
                    logger.warning(
                        "gid=%d: fragment release on shard %d failed; recovery "
                        "will presume-abort it", gid, shard_index,
                    )
            with self._lock:
                self.ledger.abort(gid)
                self._obs.reservation("abort")
                self._flight(
                    "reservation_abort", gid=gid,
                    reason=f"{type(failure).__name__}: {failure}",
                )
                if self._wal is not None:
                    try:
                        self._wal.append(OP_XABORT, gid=gid)
                    except InjectedCrash:
                        raise
                    except Exception as exc:
                        # Roll forward: a missing abort record just means
                        # recovery presumes the abort from the dangling
                        # intent, which lands in the same place.
                        logger.warning("gid=%d: abort not journaled: %s", gid, exc)
            if isinstance(failure, ConflictError):
                last_detail = f"cross-shard conflict: {failure}"
                continue
            raise CoordinatorError(
                f"cross-shard round for gid={gid} failed: {failure}"
            ) from failure
        return self._complete_reject(
            gid,
            idempotency_key,
            last_detail or "cross-shard placement kept conflicting",
            started,
            ROUTE_REJECT,
            trace=trace,
        )

    def _fragment(self, allocation: Allocation) -> Dict[int, Allocation]:
        """Split a global allocation into per-shard sub-allocations.

        Each fragment carries the *exact* per-link demands the full-tree
        placement computed (including the shard's own aggregation uplinks),
        translated to shard-local ids, plus a sub-request sized to the VMs
        the shard hosts — so shard-side revalidation and release math see
        precisely this tenant's footprint on their links, never a
        recomputed (and differently-split) one.
        """
        partition = self.partition
        per_shard_machines: Dict[int, Dict[int, int]] = {}
        for machine_id, count in allocation.machine_counts.items():
            shard_index = partition.node_to_shard[machine_id]
            per_shard_machines.setdefault(shard_index, {})[machine_id] = count
        per_shard_links: Dict[int, Dict[int, Any]] = {
            shard_index: {} for shard_index in per_shard_machines
        }
        for link_id, demand in allocation.link_demands.items():
            shard_index = partition.node_to_shard[link_id]
            # A link of a shard no VM landed in cannot carry hose demand.
            per_shard_links.setdefault(shard_index, {})[link_id] = demand
        fragments: Dict[int, Allocation] = {}
        for shard_index, machines in per_shard_machines.items():
            view = self.shards[shard_index].view
            placed = sum(machines.values())
            sub_request, machine_vms = self._sub_request(
                allocation, machines, placed
            )
            fragments[shard_index] = Allocation(
                request=sub_request,
                request_id=allocation.request_id,
                host_node=view.tree.root_id,
                machine_counts={
                    view.from_global[machine_id]: count
                    for machine_id, count in machines.items()
                },
                link_demands={
                    view.from_global[link_id]: demand
                    for link_id, demand in per_shard_links.get(shard_index, {}).items()
                },
                machine_vms=(
                    {
                        view.from_global[machine_id]: vms
                        for machine_id, vms in machine_vms.items()
                    }
                    if machine_vms is not None
                    else None
                ),
            )
        return fragments

    @staticmethod
    def _sub_request(
        allocation: Allocation, machines: Dict[int, int], placed: int
    ) -> Tuple[VirtualClusterRequest, Optional[Dict[int, Tuple[int, ...]]]]:
        """A request describing only the VMs one shard hosts.

        For heterogeneous requests the hosted VM indices are remapped to a
        dense ``0..k-1`` range (ascending original index) so the fragment
        is a self-consistent ``HeterogeneousSVC``.
        """
        request = allocation.request
        if isinstance(request, HeterogeneousSVC):
            if allocation.machine_vms is None:
                raise CoordinatorError(
                    "heterogeneous allocation lacks VM identities; cannot fragment"
                )
            hosted: List[int] = []
            for machine_id in machines:
                hosted.extend(allocation.machine_vms[machine_id])
            hosted.sort()
            remap = {vm: index for index, vm in enumerate(hosted)}
            machine_vms = {
                machine_id: tuple(remap[vm] for vm in allocation.machine_vms[machine_id])
                for machine_id in machines
            }
            sub = HeterogeneousSVC(
                n_vms=len(hosted),
                demands=tuple(request.demands[vm] for vm in hosted),
            )
            return sub, machine_vms
        if isinstance(request, DeterministicVC):
            return DeterministicVC(n_vms=placed, bandwidth=request.bandwidth), None
        if isinstance(request, HomogeneousSVC):
            return HomogeneousSVC(n_vms=placed, mean=request.mean, std=request.std), None
        raise CoordinatorError(f"cannot fragment request type {type(request).__name__}")

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------

    def release(self, gid: int) -> bool:
        """Release one admitted tenant across all its shards; False if unknown.

        Raises :class:`CoordinatorError` when the outcome is *unknown*: a
        fragment could not be released at its shard AND the release record
        could not be journaled, so no durable store records the departure.
        The caller retries ``release(gid)`` — fragment releases and the
        WAL append are both idempotent.
        """
        with self._lock:
            entry = self._gid_map.get(gid)
            if entry is None:
                return False
            fragments = dict(entry)
        shard_failures = 0
        for shard_index, srid in sorted(fragments.items()):
            try:
                self.shards[shard_index].release(srid)
            except ServiceError:
                shard_failures += 1
                logger.warning(
                    "gid=%d: release on shard %d failed; recovery will finish it",
                    gid, shard_index,
                )
        with self._lock:
            journaled = False
            if shard_failures and self._wal is not None:
                # The failed shards' journals still carry their fragments,
                # so this WAL record is the only durable evidence of the
                # departure — it must land before the release is acked, or
                # recovery would re-adopt the surviving fragments.
                try:
                    self._wal.append(OP_RELEASE, gid=gid)
                except InjectedCrash:
                    raise
                except Exception as exc:
                    # Nothing durable records the release; keep the maps
                    # intact so a retry re-runs the idempotent steps.
                    raise CoordinatorError(
                        f"release of gid {gid} not journaled "
                        f"({type(exc).__name__}); outcome unknown"
                    ) from exc
                journaled = True
            if self._gid_map.pop(gid, None) is None:
                return True  # lost a race with a concurrent release
            for shard_index, srid in fragments.items():
                self._srid_map.pop((shard_index, srid), None)
            tenancy = self.replica.get_tenancy(gid)
            if tenancy is not None:
                self.replica.release(tenancy)
            self.ledger.release(gid)
            if self._wal is not None and not journaled:
                try:
                    self._wal.append(OP_RELEASE, gid=gid)
                except InjectedCrash:
                    raise
                except Exception as exc:
                    # Roll forward: every fragment is gone from its shard
                    # journal, so recovery's release-completion pass will
                    # finish the job without this record.
                    logger.warning("gid=%d: release not journaled: %s", gid, exc)
        return True

    # ------------------------------------------------------------------
    # Resize
    # ------------------------------------------------------------------

    def resize(
        self,
        gid: int,
        new_n: Optional[int] = None,
        new_mu: Optional[float] = None,
        new_sigma: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Resize one admitted tenant at its owning shard.

        Single-fragment tenancies route to their shard, whose serialized
        resize path revalidates Eq. (6) on every link it owns.  Grows that
        would add effective bandwidth to the shared core links first pass a
        two-phase **delta reservation** on the ledger (estimated from an
        in-place plan on the replica), so a concurrent cross-shard round
        cannot race the grown footprint past ``O_L = 1``; the reservation
        is dropped once the ledger's committed entry is swapped to the
        post-resize footprint (or on any failure).  Cross-shard tenancies
        are rejected — shrinking or growing a placement that spans shards
        would need a cross-shard re-plan, not a resize.

        Raises :class:`CoordinatorError` when the outcome is unknown (the
        shard acked nothing durable); a retry with the same
        ``idempotency_key`` converges on the journaled decision.
        """
        started = self.clock()
        if idempotency_key is not None:
            with self._lock:
                known = self._idem.get(idempotency_key)
                if known is not None:
                    return dict(known, deduped=True)
                if idempotency_key in self._inflight:
                    raise CoordinatorError(
                        f"key {idempotency_key!r} already has a decision in "
                        "flight; retry after it resolves"
                    )
                self._inflight.add(idempotency_key)
        try:
            return self._resize(
                gid, new_n, new_mu, new_sigma, idempotency_key, started
            )
        finally:
            if idempotency_key is not None:
                with self._lock:
                    self._inflight.discard(idempotency_key)

    def _resize(
        self,
        gid: int,
        new_n: Optional[int],
        new_mu: Optional[float],
        new_sigma: Optional[float],
        idempotency_key: Optional[str],
        started: float,
    ) -> Dict[str, Any]:
        reserve_id = -gid  # synthetic ledger id for the delta hold
        with self._lock:
            for _expired in self.ledger.expire():
                self._obs.reservation("expire")
            entry = self._gid_map.get(gid)
            if entry is None:
                return {
                    "outcome": "unknown",
                    "request_id": gid,
                    "detail": f"no active tenancy with id {gid}",
                }
            if len(entry) > 1:
                return self._resize_rejected(
                    gid,
                    "tenancy spans multiple shards; resize requires a "
                    "single-shard placement",
                    idempotency_key,
                    started,
                )
            ((shard_index, srid),) = entry.items()
            tenancy = self.replica.get_tenancy(gid)
            if tenancy is None:
                raise CoordinatorError(
                    f"gid {gid} mapped to shard {shard_index} but absent "
                    "from the replica"
                )
            old_allocation = tenancy.allocation
            try:
                new_request = resized_request(
                    old_allocation.request,
                    new_n=new_n,
                    new_mu=new_mu,
                    new_sigma=new_sigma,
                )
            except ValueError as exc:
                return self._resize_rejected(
                    gid, str(exc), idempotency_key, started
                )
            # Two-phase delta: estimate the post-resize core footprint from
            # an in-place plan on the replica and reserve the positive
            # component deltas before asking the shard.  The estimate only
            # guards capacity — the committed footprint is reconciled from
            # the shard's actual post-resize allocation afterwards.
            delta = self._core_delta(old_allocation, new_request)
            if delta:
                reserved = self.ledger.reserve(reserve_id, delta)
                if not reserved:
                    self._obs.reservation("reserve_denied")
                    self._flight("reservation_denied", gid=gid, resize=True)
                    return self._resize_rejected(
                        gid,
                        "core links at capacity (resize delta denied)",
                        idempotency_key,
                        started,
                    )
                self._obs.reservation("reserve")
            self._resize_seq += 1
            rseq = self._resize_seq
            skey = f"rs-{gid}-{rseq}"
            FAILPOINTS.hit(FP_COORD_RESIZE_BEFORE_WAL)
            if self._wal is not None:
                try:
                    self._wal.append(
                        OP_RSINTENT,
                        gid=gid,
                        shard=shard_index,
                        srid=srid,
                        skey=skey,
                        rseq=rseq,
                        idem=idempotency_key,
                    )
                except InjectedCrash:
                    raise
                except Exception as exc:
                    self.ledger.abort(reserve_id)
                    self._flight(
                        "wal_error", op=OP_RSINTENT, gid=gid, error=str(exc)
                    )
                    raise CoordinatorError(
                        f"resize intent not journaled ({type(exc).__name__})"
                    ) from exc
        try:
            decision = self.shards[shard_index].resize(
                srid,
                new_n=new_n,
                new_mu=new_mu,
                new_sigma=new_sigma,
                idempotency_key=skey,
            )
        except ServiceError as exc:
            with self._lock:
                self.ledger.abort(reserve_id)
                self._obs.reservation("abort")
            raise CoordinatorError(
                f"resize of gid {gid} did not conclude at shard "
                f"{shard_index}: {exc}"
            ) from exc
        outcome = decision.get("outcome")
        with self._lock:
            self.ledger.abort(reserve_id)
            if outcome not in (RESIZE_IN_PLACE, RESIZE_REPLACED):
                if outcome != RESIZE_REJECTED:
                    raise CoordinatorError(
                        f"shard {shard_index} returned resize outcome "
                        f"{outcome!r} for gid {gid}"
                    )
                return self._resize_rejected(
                    gid, decision.get("detail"), idempotency_key, started
                )
            local_allocation = decision.get("allocation")
            if local_allocation is None:
                # The shard deduplicated the key onto an earlier round; its
                # live tenancy is the post-resize truth.
                local_allocation = self._shard_active(shard_index).get(srid)
                if local_allocation is None:
                    raise CoordinatorError(
                        f"shard {shard_index} acked resize of srid {srid} "
                        "without an allocation"
                    )
            view = self.shards[shard_index].view
            global_allocation = view.allocation_to_global(
                local_allocation, request_id=gid
            )
            if self._wal is not None:
                try:
                    self._wal.append(
                        OP_RSDONE,
                        gid=gid,
                        shard=shard_index,
                        srid=srid,
                        outcome=outcome,
                        idem=idempotency_key,
                        allocation=allocation_to_dict(global_allocation),
                    )
                except InjectedCrash:
                    raise
                except Exception as exc:
                    # Roll forward: the shard has already committed the new
                    # size and its journal is authoritative — recovery's
                    # shard reconciliation re-derives the post-resize
                    # allocation without this record.
                    self._flight(
                        "wal_error", op=OP_RSDONE, gid=gid, error=str(exc)
                    )
                    logger.warning("gid=%d: resize not journaled: %s", gid, exc)
            FAILPOINTS.hit(FP_COORD_RESIZE_AFTER_WAL)
            old_tenancy = self.replica.get_tenancy(gid)
            if old_tenancy is not None:
                self.replica.release(old_tenancy)
            self.replica.adopt(global_allocation)
            self.ledger.release(gid)
            core = core_demands_of(global_allocation, self.partition.core_link_ids)
            if core:
                self.ledger.commit_direct(gid, core)
                self._obs.reservation("mirror")
            self.resize_counts[outcome] += 1
            payload = self._decision(
                gid, outcome, decision.get("detail"), ROUTE_LOCAL
            )
            self._remember(idempotency_key, payload)
            self._obs.observe_latency("resize", self.clock() - started)
            self._flight(
                "cluster_resize", gid=gid, outcome=outcome, shard=shard_index,
            )
            return payload

    def _resize_rejected(
        self,
        gid: int,
        detail: Optional[str],
        idempotency_key: Optional[str],
        started: float,
    ) -> Dict[str, Any]:
        """Settle a rejected resize: journal, tally, remember. Lock held."""
        if self._wal is not None:
            try:
                self._wal.append(
                    OP_RSDONE, gid=gid, outcome=RESIZE_REJECTED,
                    idem=idempotency_key,
                )
            except InjectedCrash:
                raise
            except Exception as exc:
                # Roll forward: the old allocation stands either way; a
                # post-crash retry re-runs the (deterministic) decision.
                logger.warning(
                    "gid=%d: resize reject not journaled: %s", gid, exc
                )
        self.resize_counts[RESIZE_REJECTED] += 1
        payload = self._decision(gid, RESIZE_REJECTED, detail, ROUTE_LOCAL)
        self._remember(idempotency_key, payload)
        self._obs.observe_latency("resize", self.clock() - started)
        self._flight(
            "cluster_resize", gid=gid, outcome=RESIZE_REJECTED, detail=detail,
        )
        return payload

    def _core_delta(
        self, old_allocation: Allocation, new_request
    ) -> Dict[int, CoreDemand]:
        """Positive core-link demand delta of an in-place resize estimate.

        Returns ``{}`` when no in-place plan exists on the replica (the
        shard may still accept via its fallback path — its own links are
        revalidated there; only the *extra* core headroom cannot be held in
        advance, which matches what the local-admit path risks today).
        """
        try:
            plan = plan_in_place(
                self.replica.state,
                self.replica.allocator,
                old_allocation,
                new_request,
            )
        except Exception:  # noqa: BLE001 — an estimate must never block
            plan = None
        if plan is None:
            return {}
        core_ids = self.partition.core_link_ids
        new_core = core_demands_of(plan.allocation, core_ids)
        old_core = core_demands_of(old_allocation, core_ids)
        delta: Dict[int, CoreDemand] = {}
        for link_id, new_demand in new_core.items():
            old_demand = old_core.get(link_id, CoreDemand())
            mean = max(0.0, new_demand.mean - old_demand.mean)
            variance = max(0.0, new_demand.variance - old_demand.variance)
            det = max(0.0, new_demand.deterministic - old_demand.deterministic)
            if mean > 0.0 or variance > 0.0 or det > 0.0:
                delta[link_id] = CoreDemand(
                    mean=mean, variance=variance, deterministic=det
                )
        return delta

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Stop the coordinator (shards are owned by the caller)."""
        if self._wal is not None:
            self._wal.close()

    def kill(self) -> None:
        """Chaos-harness death: drop the WAL handle without any drain."""
        if self._wal is not None:
            self._wal.close()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild coordinator state from the WAL + the recovered shards.

        The shards recover themselves (their own WALs) before the
        coordinator is constructed; this pass reconciles the coordinator's
        view with what each shard actually journaled: dangling two-phase
        rounds are presumed aborted, in-flight keyed submits resolve to
        the shard's journaled decision, half-done releases are finished,
        and shard tenancies the WAL never acknowledged are re-attached
        under fresh global ids.  Idempotent: recovering twice converges.

        Replica/ledger adoption is deferred until after the recovered set
        has been reconciled against the shards' live tenancies.  The WAL
        alone can over-state occupancy — a roll-forward release whose
        record was lost leaves a stale radmit whose slots the shard has
        since reused — and adopting stale tenancies into the replica
        first would conflict with the re-used slots.  Shard journals are
        authoritative for their own tenancies; only fragments still
        active at their shard are adopted.
        """
        assert self._wal is not None
        open_rintents: Dict[int, Dict[str, Any]] = {}
        open_xintents: Dict[int, Dict[str, Any]] = {}
        open_resizes: Dict[int, Dict[str, Any]] = {}
        closed_xintents: List[Dict[str, Any]] = []
        # gid -> (fragments {shard: srid}, global Allocation): the WAL's
        # view of what is admitted, before shard reconciliation.
        recovered: Dict[int, Tuple[Dict[int, int], Allocation]] = {}
        srid_to_gid: Dict[Tuple[int, int], int] = {}
        # Fragments of WAL-acknowledged releases: a shard that was down
        # for its fragment release still journals the tenancy as active,
        # and the orphan sweep must finish the release, not resurrect it.
        released_srids: set = set()

        def remember_admit(
            gid: int, srids: Dict[int, int], allocation: Allocation, key: Optional[str]
        ) -> None:
            if gid in recovered:
                return
            recovered[gid] = (dict(srids), allocation)
            for shard_index, srid in srids.items():
                srid_to_gid[(shard_index, srid)] = gid
            if key is not None:
                self._idem[key] = self._decision(gid, "admitted", None)
            self.admitted_count += 1

        max_gid = 0
        for record in Journal.iter_records(self._wal.path):
            op = record.get("op")
            gid = int(record.get("gid", 0))
            max_gid = max(max_gid, gid)
            if op == OP_RINTENT:
                open_rintents[gid] = record
            elif op == OP_RADMIT:
                key = record.get("idem")
                open_rintents.pop(gid, None)
                shard_index = int(record["shard"])
                srid = int(record["srid"])
                if (shard_index, srid) in srid_to_gid:
                    if key is not None:
                        existing = srid_to_gid[(shard_index, srid)]
                        self._idem[key] = self._decision(existing, "admitted", None)
                    continue
                allocation = allocation_from_dict(record["allocation"])
                remember_admit(gid, {shard_index: srid}, allocation, key)
            elif op == OP_RREJECT:
                key = record.get("idem")
                open_rintents.pop(gid, None)
                if key is not None:
                    self._idem[key] = self._decision(gid, "rejected", None)
                self.rejected_count += 1
            elif op == OP_XINTENT:
                open_xintents[gid] = record
            elif op == OP_XCOMMIT:
                open_rintents.pop(gid, None)
                intent = open_xintents.pop(gid, None)
                if intent is None:
                    continue
                allocation = allocation_from_dict(intent["allocation"])
                srids = {
                    int(shard_index): int(srid)
                    for shard_index, srid in record.get("srids", {}).items()
                }
                remember_admit(gid, srids, allocation, record.get("idem"))
            elif op == OP_XABORT:
                intent = open_xintents.pop(gid, None)
                if intent is not None:
                    closed_xintents.append(intent)
            elif op == OP_RELEASE:
                entry = recovered.pop(gid, None)
                open_resizes.pop(gid, None)
                if entry is None:
                    continue
                for shard_index, srid in entry[0].items():
                    srid_to_gid.pop((shard_index, srid), None)
                    released_srids.add((shard_index, srid))
            elif op == OP_RSINTENT:
                self._resize_seq = max(self._resize_seq, int(record.get("rseq", 0)))
                open_resizes[gid] = record
            elif op == OP_RSDONE:
                open_resizes.pop(gid, None)
                outcome = str(record.get("outcome", RESIZE_REJECTED))
                key = record.get("idem")
                if key is not None:
                    self._idem[key] = self._decision(gid, outcome, None)
                if outcome in self.resize_counts and not record.get("reconciled"):
                    self.resize_counts[outcome] += 1
                if "allocation" in record and gid in recovered:
                    srids, _stale = recovered[gid]
                    recovered[gid] = (
                        srids, allocation_from_dict(record["allocation"])
                    )
            # Unknown ops are skipped (forward compatibility).
        self._next_gid = max(self._next_gid, max_gid + 1)

        # Presumed abort: release fragments of rounds that never committed
        # (journaled aborts whose fragment releases may not have landed,
        # plus intents dangling at the crash).
        for intent in closed_xintents:
            self._presume_abort(intent, journal_abort=False)
        for gid, intent in sorted(open_xintents.items()):
            self._presume_abort(intent, journal_abort=True)

        # Resolve in-flight submits against the routed shard's journal.
        for gid, record in sorted(open_rintents.items()):
            shard_index = int(record["shard"])
            skey = record.get("skey")
            key = record.get("idem")
            found = self._shard_idem(shard_index, skey) if skey else None
            if found is None:
                continue  # never reached a shard; a retry starts fresh
            if found.get("outcome") == "admitted":
                srid = found.get("request_id")
                allocation = found.get("allocation")
                if srid is None or allocation is None:
                    # Journaled at the shard but since released — the
                    # coordinator rolled it back before the crash.
                    continue
                if (shard_index, int(srid)) in srid_to_gid:
                    if key is not None:
                        self._idem[key] = self._decision(
                            srid_to_gid[(shard_index, int(srid))],
                            "admitted", None,
                        )
                    continue
                view = self.shards[shard_index].view
                global_allocation = view.allocation_to_global(allocation, request_id=gid)
                self._wal.append(
                    OP_RADMIT,
                    gid=gid,
                    shard=shard_index,
                    srid=int(srid),
                    idem=key,
                    allocation=allocation_to_dict(global_allocation),
                )
                remember_admit(gid, {shard_index: int(srid)}, global_allocation, key)
            elif found.get("outcome") == "rejected" and self.num_shards == 1:
                # With one shard the shard's decision IS the decision.  In
                # a multi-shard cluster a local reject only means "did not
                # fit here" — the cross-shard path never concluded, so the
                # outcome stays unknown and a retry re-decides.
                if key is not None:
                    self._wal.append(OP_RREJECT, gid=gid, idem=key)
                    self._idem[key] = self._decision(gid, "rejected", None)
                self.rejected_count += 1

        # Finish releases that were acknowledged by some shards only (or
        # whose WAL record was lost in a roll-forward): a gid with ANY
        # fragment gone from its shard was being released — shards are the
        # source of truth, so drop it and release the remaining fragments.
        live_by_shard: Dict[int, Dict[int, Allocation]] = {
            shard.index: self._shard_active(shard.index) for shard in self.shards
        }
        active_by_shard = {
            shard_index: set(active) for shard_index, active in live_by_shard.items()
        }
        for gid in sorted(list(recovered)):
            fragments = recovered[gid][0]
            if all(
                srid in active_by_shard.get(shard_index, set())
                for shard_index, srid in fragments.items()
            ):
                continue
            for shard_index, srid in sorted(fragments.items()):
                if srid in active_by_shard.get(shard_index, set()):
                    try:
                        self.shards[shard_index].release(srid)
                        active_by_shard[shard_index].discard(srid)
                    except ServiceError:
                        logger.warning(
                            "recovery: gid=%d fragment on shard %d not releasable",
                            gid, shard_index,
                        )
                srid_to_gid.pop((shard_index, srid), None)
            recovered.pop(gid, None)
            self._wal.append(OP_RELEASE, gid=gid)

        # Resolve in-flight resizes against the owning shard's journal: an
        # intent without a done record means the crash hit between the two
        # appends — the shard either never saw the round (nothing changed)
        # or committed it (its journal is authoritative for the new size).
        for gid, record in sorted(open_resizes.items()):
            if gid not in recovered:
                continue
            shard_index = int(record["shard"])
            srid = int(record["srid"])
            skey = record.get("skey")
            key = record.get("idem")
            found = self._shard_idem(shard_index, skey) if skey else None
            if found is None:
                continue  # never reached the shard; a retry starts fresh
            outcome = found.get("outcome")
            if outcome in (RESIZE_IN_PLACE, RESIZE_REPLACED):
                live = live_by_shard.get(shard_index, {}).get(srid)
                if live is None:
                    continue  # the release pass already settled this gid
                view = self.shards[shard_index].view
                live_global = view.allocation_to_global(live, request_id=gid)
                self._wal.append(
                    OP_RSDONE,
                    gid=gid,
                    shard=shard_index,
                    srid=srid,
                    outcome=outcome,
                    idem=key,
                    allocation=allocation_to_dict(live_global),
                )
                srids = recovered[gid][0]
                recovered[gid] = (srids, live_global)
                if key is not None:
                    self._idem[key] = self._decision(gid, outcome, None)
                self.resize_counts[outcome] += 1
            elif outcome == RESIZE_REJECTED:
                self._wal.append(
                    OP_RSDONE, gid=gid, outcome=RESIZE_REJECTED, idem=key
                )
                if key is not None:
                    self._idem[key] = self._decision(gid, RESIZE_REJECTED, None)
                self.resize_counts[RESIZE_REJECTED] += 1

        # Shard-authoritative size reconciliation: whatever the WAL believes
        # a single-fragment tenant's allocation is, the shard's live tenancy
        # wins (a resize whose done record was rolled forward past a WAL
        # failure is re-derived here — no tenant stays half-sized).
        for gid in sorted(recovered):
            srids, allocation = recovered[gid]
            if len(srids) != 1:
                continue
            ((shard_index, srid),) = srids.items()
            live = live_by_shard.get(shard_index, {}).get(srid)
            if live is None:
                continue
            view = self.shards[shard_index].view
            live_global = view.allocation_to_global(live, request_id=gid)
            if self._footprint(live_global) != self._footprint(allocation):
                self._wal.append(
                    OP_RSDONE,
                    gid=gid,
                    shard=shard_index,
                    srid=srid,
                    outcome=RESIZE_IN_PLACE,
                    reconciled=True,
                    allocation=allocation_to_dict(live_global),
                )
                recovered[gid] = (srids, live_global)

        # Orphan sweep: shard tenancies the coordinator WAL never linked
        # (crash between shard ack and the radmit append).  Re-attach them
        # under fresh global ids so no acked-at-the-shard resource is lost.
        for shard in self.shards:
            active = self._shard_active(shard.index)
            for srid in sorted(active):
                if (shard.index, srid) in srid_to_gid:
                    continue
                if (shard.index, srid) in released_srids:
                    # The WAL acknowledged this tenant's release; the shard
                    # was down for its fragment — finish the release now.
                    try:
                        shard.release(srid)
                    except ServiceError:
                        logger.warning(
                            "recovery: released gid's fragment on shard %d "
                            "srid %d not releasable", shard.index, srid,
                        )
                    continue
                allocation = active[srid]
                gid = self._next_gid
                self._next_gid += 1
                global_allocation = shard.view.allocation_to_global(
                    allocation, request_id=gid
                )
                self._wal.append(
                    OP_RADMIT,
                    gid=gid,
                    shard=shard.index,
                    srid=srid,
                    idem=None,
                    allocation=allocation_to_dict(global_allocation),
                )
                remember_admit(gid, {shard.index: srid}, global_allocation, None)

        # Adopt the reconciled set: every fragment is live at its shard and
        # every shard is internally capacity-consistent, so the union fits
        # the replica by construction (machines and pod-internal links are
        # owned by exactly one shard each).
        for gid in sorted(recovered):
            srids, allocation = recovered[gid]
            self.replica.adopt(allocation)
            core = core_demands_of(allocation, self.partition.core_link_ids)
            if core:
                self.ledger.commit_direct(gid, core)
            self._gid_map[gid] = dict(srids)
            for shard_index, srid in srids.items():
                self._srid_map[(shard_index, srid)] = gid

    @staticmethod
    def _footprint(allocation: Allocation) -> Dict[str, Any]:
        """An allocation's capacity footprint, for shard reconciliation.

        ``host_node`` is excluded: a spilled tenant's fragment is rebuilt
        with the shard root as its host while the WAL keeps the replica's
        deeper pick — same links, same machines, not a size divergence.
        """
        payload = allocation_to_dict(allocation)
        payload.pop("host_node", None)
        return payload

    def _presume_abort(self, intent: Dict[str, Any], journal_abort: bool) -> None:
        """Release any adopted fragments of a round that never committed."""
        gid = int(intent["gid"])
        fragment_key = intent.get("fkey")
        if fragment_key is not None:
            for shard_text in intent.get("fragments", {}):
                shard_index = int(shard_text)
                found = self._shard_idem(shard_index, fragment_key)
                if (
                    found is not None
                    and found.get("outcome") == "admitted"
                    and found.get("request_id") is not None
                    and found.get("allocation") is not None
                ):
                    try:
                        self.shards[shard_index].release(int(found["request_id"]))
                    except ServiceError:
                        logger.warning(
                            "presumed abort: gid=%d fragment on shard %d not "
                            "releasable", gid, shard_index,
                        )
        self.ledger.abort(gid)
        if journal_abort and self._wal is not None:
            self._wal.append(OP_XABORT, gid=gid)

    def _shard_idem(self, shard_index: int, key: str) -> Optional[Dict[str, Any]]:
        try:
            return self.shards[shard_index].idem_lookup(key)
        except ServiceError:
            return None

    def _shard_active(self, shard_index: int) -> Dict[int, Allocation]:
        try:
            return self.shards[shard_index].active_allocations()
        except ServiceError:
            return {}

    # ------------------------------------------------------------------

    @staticmethod
    def _decision(
        gid: int,
        outcome: str,
        detail: Optional[str],
        route: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"outcome": outcome, "request_id": gid}
        if detail:
            payload["detail"] = detail
        if route is not None:
            payload["route"] = route
        return payload

    def _remember(self, key: Optional[str], payload: Dict[str, Any]) -> None:
        if key is not None:
            self._idem[key] = dict(payload)
