"""Cluster chaos: seeded kill/recover schedules over coordinator + shards.

The single-node harness (:mod:`repro.faults.harness`) proves the admission
service survives crashes; this module proves the *composition* does.  One
schedule (:func:`run_cluster_chaos_schedule`) drives a coordinator over K
journaled :class:`~repro.cluster.shard.LocalShard` instances through a
random admit/release workload while a seeded fault plan fires — the
single-node plan's journal faults hit the shard WALs unchanged (the hooks
are compiled into ``Journal``), and about half the crashing schedules move
the crash site into the coordinator's two-phase protocol
(``FP_COORD_*``: before the WAL append, after the ledger reserve, before
and after the commit record).

After the run everything is torn down and rebuilt from disk, and the
referee checks the cluster-level contract:

1. **per-shard truth**: every shard's recovered state equals its own
   journal's :func:`~repro.service.recovery.oracle_replay`, exactly — a
   shard inside a cluster inherits the single-node guarantee verbatim;
2. **coordinator coherence**: every fragment the coordinator accounts for
   is active on its shard, every shard tenancy is accounted for (no
   orphans after the recovery sweep), and the replica tenant count
   matches;
3. **no reservation leaks**: zero pending reservations after recovery and
   the ledger's committed totals equal the core footprint recomputed from
   the live global allocations — the ledger sums to committed tenants
   *exactly*;
4. **no acked admission lost, no acked release resurrected** — judged at
   the coordinator's global ids;
5. ``O_L < 1`` on every link of every shard, on the replica, and on the
   ledger (Eq. 4 survives recovery);
6. **retries converge without double-admits**: each in-flight (unacked)
   key is resubmitted twice against the recovered cluster; both calls
   must return the same decision and admit at most one new tenancy, then
   the referee re-runs to confirm the retried state is still coherent.

Failures are collected, not raised, so the CLI can report the seed —
every schedule is a pure function of it.
"""

from __future__ import annotations

import random
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.cluster.coordinator import ClusterCoordinator, CoordinatorError
from repro.cluster.ledger import core_demands_of
from repro.cluster.partition import ClusterPartition
from repro.cluster.shard import LocalShard
from repro.experiments.config import SCALES
from repro.faults.failpoints import (
    FAILPOINTS,
    FP_COORD_AFTER_COMMIT,
    FP_COORD_AFTER_RESERVE,
    FP_COORD_BEFORE_COMMIT,
    FP_COORD_BEFORE_WAL,
    MODE_CRASH,
    InjectedCrash,
)
from repro.faults.harness import random_request
from repro.faults.schedule import ChaosPlan
from repro.service.codec import network_state_to_dict
from repro.service.degrade import DegradationLadder
from repro.service.errors import DegradedError, ServiceError
from repro.service.recovery import oracle_replay

#: Crash sites inside the coordinator's two-phase protocol.
CLUSTER_CRASH_SITES = (
    FP_COORD_BEFORE_WAL,
    FP_COORD_AFTER_RESERVE,
    FP_COORD_BEFORE_COMMIT,
    FP_COORD_AFTER_COMMIT,
)

_DECISION_TIMEOUT_S = 5.0

#: Ledger totals are rebuilt by replaying per-tenant demands, so they must
#: agree with a fresh recomputation to float-sum noise only.
_SUM_TOLERANCE = 1e-6


def cluster_chaos_plan(seed: int, operations: int = 40) -> ChaosPlan:
    """The single-node plan, with ~half the crashes moved into the coordinator."""
    plan = ChaosPlan.generate(seed, operations=operations)
    rng = random.Random(seed ^ 0xC10C)
    if plan.crash_site is not None and rng.random() < 0.5:
        site = rng.choice(CLUSTER_CRASH_SITES)
        for arming in plan.armings:
            if arming.get("mode") == MODE_CRASH and arming.get("name") == plan.crash_site:
                arming["name"] = site
                break
        plan.crash_site = site
    return plan


@dataclass
class ClusterChaosResult:
    """Outcome of one cluster schedule: the ledger plus every violation."""

    seed: int
    plan: ChaosPlan
    shards: int = 2
    crashed: bool = False
    operations_run: int = 0
    acked_admits: int = 0
    acked_releases: int = 0
    cross_shard_admits: int = 0
    shed: int = 0
    degraded_hits: int = 0
    unacked_keys: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def fail(self, message: str) -> None:
        self.failures.append(message)

    def describe(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "shards": self.shards,
            "crashed": self.crashed,
            "operations_run": self.operations_run,
            "acked_admits": self.acked_admits,
            "acked_releases": self.acked_releases,
            "cross_shard_admits": self.cross_shard_admits,
            "shed": self.shed,
            "degraded_hits": self.degraded_hits,
            "unacked_keys": self.unacked_keys,
            "failures": list(self.failures),
            "plan": self.plan.describe(),
        }


def _workload_request(rng: random.Random, shard_slots: int):
    """Mostly single-shard-sized tenants, with a fat tail that cannot fit
    in one shard once the cluster warms up — those exercise the two-phase
    cross-shard path."""
    if rng.random() < 0.25:
        from repro.abstractions import HomogeneousSVC

        n_vms = rng.randint(max(4, shard_slots // 3), max(6, shard_slots // 2))
        return HomogeneousSVC(
            n_vms=n_vms, mean=rng.uniform(30, 120), std=rng.uniform(5, 40)
        )
    return random_request(rng)


def _build_cluster(
    partition: ClusterPartition,
    directory: Path,
    snapshot_every: int,
    fsync: bool,
):
    """Shards first (they recover themselves), then the coordinator."""
    shards = [
        LocalShard(
            view,
            directory / f"shard-{view.shard_index}",
            fsync=fsync,
            snapshot_every=snapshot_every,
            degradation=DegradationLadder(probe_interval=0.02),
            decision_timeout_s=_DECISION_TIMEOUT_S,
        )
        for view in partition.shards
    ]
    coordinator = ClusterCoordinator(
        partition,
        shards,
        directory=directory,
        fsync=fsync,
        decision_timeout_s=_DECISION_TIMEOUT_S,
    )
    return shards, coordinator


def _referee(
    result: ClusterChaosResult,
    partition: ClusterPartition,
    shards: List[LocalShard],
    coordinator: ClusterCoordinator,
    acked_active: Dict[str, int],
    acked_released: List[int],
    stage: str,
) -> None:
    """Check the cluster-level contract on a recovered (or retried) cluster."""
    # 1. Per-shard truth: recovered state == that shard's oracle replay.
    for shard in shards:
        try:
            oracle_state, oracle_active = oracle_replay(
                shard.store.wal_path, shard.view.tree
            )
        except Exception as exc:  # noqa: BLE001 — referee collects, never raises
            result.fail(
                f"[{stage}] shard {shard.index} oracle replay raised "
                f"{type(exc).__name__}: {exc}"
            )
            continue
        if network_state_to_dict(shard.manager.state) != network_state_to_dict(
            oracle_state
        ):
            result.fail(
                f"[{stage}] shard {shard.index} state differs from oracle replay"
            )
        live = sorted(t.request_id for t in shard.manager.tenancies())
        if live != sorted(oracle_active):
            result.fail(
                f"[{stage}] shard {shard.index} active set diverges: "
                f"live={live} oracle={sorted(oracle_active)}"
            )

    # 2. Coordinator coherence: fragments <-> shard tenancies, both ways.
    shard_active = {
        shard.index: set(shard.active_allocations()) for shard in shards
    }
    accounted = {shard.index: set() for shard in shards}
    for gid in list(coordinator._gid_map):
        for shard_index, srid in coordinator._gid_map[gid].items():
            if srid not in shard_active[shard_index]:
                result.fail(
                    f"[{stage}] gid {gid} fragment {srid} missing on "
                    f"shard {shard_index}"
                )
            accounted[shard_index].add(srid)
    for shard_index, active in shard_active.items():
        orphans = active - accounted[shard_index]
        if orphans:
            result.fail(
                f"[{stage}] shard {shard_index} holds unaccounted tenancies "
                f"{sorted(orphans)}"
            )
    if coordinator.replica.active_tenancies != len(coordinator._gid_map):
        result.fail(
            f"[{stage}] replica holds {coordinator.replica.active_tenancies} "
            f"tenancies, coordinator maps {len(coordinator._gid_map)}"
        )

    # 3. No reservation leaks; ledger sums to committed tenants exactly.
    if coordinator.ledger.pending_reservations != 0:
        result.fail(
            f"[{stage}] {coordinator.ledger.pending_reservations} reservations "
            "leaked past recovery"
        )
    expected: Dict[int, Dict[str, float]] = {
        link_id: {"mean": 0.0, "variance": 0.0, "deterministic": 0.0}
        for link_id in partition.core_link_ids
    }
    for tenancy in coordinator.replica.tenancies():
        for link_id, demand in core_demands_of(
            tenancy.allocation, partition.core_link_ids
        ).items():
            expected[link_id]["mean"] += demand.mean
            expected[link_id]["variance"] += demand.variance
            expected[link_id]["deterministic"] += demand.deterministic
    for link_id, totals in coordinator.ledger.committed_totals().items():
        for component, value in totals.items():
            want = expected[link_id][component]
            if abs(value - want) > _SUM_TOLERANCE:
                result.fail(
                    f"[{stage}] ledger {component} on core link {link_id} is "
                    f"{value}, committed tenants sum to {want}"
                )

    # 4. Acked admits survive; acked releases stay released.
    for key, gid in acked_active.items():
        if gid not in coordinator._gid_map:
            result.fail(f"[{stage}] acked admission lost: {key} (gid {gid})")
    for gid in acked_released:
        if gid in coordinator._gid_map:
            result.fail(f"[{stage}] acked release resurrected: gid {gid}")

    # 5. Eq. 4 everywhere.
    for shard in shards:
        occupancy = shard.manager.max_occupancy()
        if not occupancy < 1.0:
            result.fail(
                f"[{stage}] shard {shard.index} occupancy violates O_L < 1: "
                f"{occupancy}"
            )
    if not coordinator.replica.max_occupancy() < 1.0:
        result.fail(
            f"[{stage}] replica occupancy violates O_L < 1: "
            f"{coordinator.replica.max_occupancy()}"
        )
    if not coordinator.ledger.max_occupancy() < 1.0:
        result.fail(
            f"[{stage}] ledger occupancy violates O_L < 1: "
            f"{coordinator.ledger.max_occupancy()}"
        )


def run_cluster_chaos_schedule(
    seed: int,
    directory: Path,
    shards: int = 2,
    scale: str = "tiny",
    operations: int = 40,
    snapshot_every: int = 5,
) -> ClusterChaosResult:
    """Run one seeded cluster fault schedule end to end (module docstring)."""
    plan = cluster_chaos_plan(seed, operations=operations)
    result = ClusterChaosResult(seed=seed, plan=plan, shards=shards)
    rng = random.Random(seed ^ 0x5EED)
    spec = SCALES[scale].spec
    partition = ClusterPartition.build(spec, shards)
    shard_slots = partition.shards[0].total_slots
    directory = Path(directory)
    if directory.exists():
        shutil.rmtree(directory)

    # ---- phase 1: faulty workload -----------------------------------
    plan.arm(FAILPOINTS)
    shard_list, coordinator = _build_cluster(
        partition, directory, snapshot_every, plan.fsync
    )
    acked_active: Dict[str, int] = {}  # idempotency key -> global request id
    acked_released: List[int] = []
    unacked: Dict[str, Any] = {}
    try:
        for index in range(operations):
            result.operations_run = index + 1
            if acked_active and rng.random() < 0.3:
                key, gid = rng.choice(sorted(acked_active.items()))
                try:
                    if coordinator.release(gid):
                        del acked_active[key]
                        acked_released.append(gid)
                        result.acked_releases += 1
                except InjectedCrash:
                    # Indeterminate: some fragments may be gone, the WAL
                    # record may be missing.  Neither invariant may assert
                    # this tenancy; recovery must settle it either way.
                    del acked_active[key]
                    result.crashed = True
                    break
                except (CoordinatorError, ServiceError):
                    # The coordinator refused to ack (release not durable
                    # anywhere) — same indeterminate treatment, but the
                    # cluster is still up, so keep driving.
                    del acked_active[key]
                    continue
            else:
                key = f"cluster-{seed}-{index}"
                request = _workload_request(rng, shard_slots)
                try:
                    decision = coordinator.submit(request, idempotency_key=key)
                except InjectedCrash:
                    unacked[key] = request
                    result.crashed = True
                    break
                except DegradedError:
                    result.degraded_hits += 1
                    continue
                except (CoordinatorError, ServiceError):
                    # Shard died mid-decision, queue shed, or transport
                    # failure: the outcome is unknown -> retry material.
                    unacked[key] = request
                    result.shed += 1
                    if any(not shard.alive for shard in shard_list):
                        result.crashed = True
                        break
                    continue
                if decision["outcome"] == "admitted":
                    gid = decision["request_id"]
                    acked_active[key] = gid
                    result.acked_admits += 1
                    fragments = coordinator.fragments_of(gid)
                    if fragments is not None and len(fragments) > 1:
                        result.cross_shard_admits += 1
    finally:
        for shard in shard_list:
            try:
                shard.kill()
            except Exception:  # noqa: BLE001 — teardown must reach every shard
                pass
        coordinator.kill()
        FAILPOINTS.clear()
    result.unacked_keys = len(unacked)

    # ---- phase 2: recover everything and referee --------------------
    try:
        shard_list, coordinator = _build_cluster(
            partition, directory, snapshot_every, fsync=False
        )
    except Exception as exc:  # noqa: BLE001 — a recovery crash is the finding
        result.fail(f"cluster recovery raised {type(exc).__name__}: {exc}")
        return result
    try:
        _referee(
            result, partition, shard_list, coordinator,
            acked_active, acked_released, stage="recovered",
        )

        # ---- phase 3: retries converge, no double admits ------------
        for key, request in sorted(unacked.items()):
            journaled = dict(coordinator._idem.get(key) or {})
            active_before = coordinator.replica.active_tenancies
            try:
                first = coordinator.submit(request, idempotency_key=key)
                second = coordinator.submit(request, idempotency_key=key)
            except (CoordinatorError, ServiceError) as exc:
                result.fail(f"retry of {key} failed on a healthy cluster: {exc}")
                continue
            if (first["outcome"], first["request_id"]) != (
                second["outcome"], second["request_id"]
            ):
                result.fail(
                    f"retries of {key} diverged: "
                    f"{first['outcome']}/{first['request_id']} vs "
                    f"{second['outcome']}/{second['request_id']}"
                )
            delta = coordinator.replica.active_tenancies - active_before
            if journaled:
                if first["outcome"] != journaled.get("outcome"):
                    result.fail(
                        f"retry of journaled {key} returned {first['outcome']}, "
                        f"coordinator WAL says {journaled.get('outcome')}"
                    )
                if delta != 0:
                    result.fail(f"retry of journaled {key} double-admitted")
            elif first["outcome"] == "admitted" and delta != 1:
                result.fail(
                    f"fresh retry of {key} admitted {delta} tenancies"
                )
            if first["outcome"] == "admitted":
                acked_active[key] = first["request_id"]

        # ---- phase 4: the retried cluster must still referee clean --
        _referee(
            result, partition, shard_list, coordinator,
            acked_active, acked_released, stage="post-retry",
        )
    finally:
        for shard in shard_list:
            try:
                shard.stop()
            except Exception:  # noqa: BLE001
                pass
        coordinator.stop()
    return result


def run_cluster_chaos_suite(
    schedules: int,
    base_seed: int,
    workdir: Path,
    shards: int = 2,
    scale: str = "tiny",
    operations: int = 40,
    stop_on_failure: bool = False,
    progress=None,
) -> List[ClusterChaosResult]:
    """Run ``schedules`` consecutive seeds; returns every result."""
    results: List[ClusterChaosResult] = []
    workdir = Path(workdir)
    for index in range(schedules):
        seed = base_seed + index
        result = run_cluster_chaos_schedule(
            seed,
            workdir / f"schedule-{seed}",
            shards=shards,
            scale=scale,
            operations=operations,
        )
        results.append(result)
        if progress is not None:
            progress(result)
        if stop_on_failure and not result.ok:
            break
    return results
